#include "fpm/service/protocol.h"

#include <utility>

namespace fpm {

namespace {

Status FieldError(const std::string& where, const std::string& field,
                  const std::string& what) {
  return Status::InvalidArgument(where + ": field '" + field + "': " + what);
}

// Decodes the shared mine/query request body from `doc`. `where` labels
// errors ("op 'query'", "op 'batch': queries[3]", ...); `with_tasks`
// enables the v2 task-family fields, which the frozen v1 "mine" op does
// not know.
Status DecodeMineBody(const JsonValue& doc, const std::string& where,
                      bool with_tasks, MineRequest* out) {
  const JsonValue& dataset = doc["dataset"];
  if (!dataset.is_string() || dataset.string_value().empty()) {
    return FieldError(where, "dataset", "missing or not a string");
  }
  out->dataset_path = dataset.string_value();

  const JsonValue& minsup = doc["min_support"];
  if (!minsup.is_number() || minsup.number_value() < 1.0) {
    return FieldError(where, "min_support",
                      "missing or not a number >= 1");
  }
  out->query.min_support = static_cast<Support>(minsup.number_value());

  if (with_tasks) {
    const JsonValue& task = doc["task"];
    if (!task.is_null()) {
      if (!task.is_string()) {
        return FieldError(where, "task", "not a string");
      }
      Result<MiningTask> parsed = ParseTask(task.string_value());
      if (!parsed.ok()) {
        return FieldError(where, "task", parsed.status().message());
      }
      out->query.task = parsed.value();
    }

    const JsonValue& k = doc["k"];
    if (!k.is_null()) {
      if (!k.is_number() || k.number_value() < 1.0) {
        return FieldError(where, "k", "not a number >= 1");
      }
      out->query.k = static_cast<uint64_t>(k.number_value());
    }

    const JsonValue& confidence = doc["min_confidence"];
    if (!confidence.is_null()) {
      if (!confidence.is_number() || confidence.number_value() < 0.0 ||
          confidence.number_value() > 1.0) {
        return FieldError(where, "min_confidence",
                          "not a number in [0, 1]");
      }
      out->query.min_confidence = confidence.number_value();
    }

    const JsonValue& lift = doc["min_lift"];
    if (!lift.is_null()) {
      if (!lift.is_number() || lift.number_value() < 0.0) {
        return FieldError(where, "min_lift",
                          "not a non-negative number");
      }
      out->query.min_lift = lift.number_value();
    }

    const JsonValue& max_consequent = doc["max_consequent"];
    if (!max_consequent.is_null()) {
      if (!max_consequent.is_number() ||
          max_consequent.number_value() < 1.0) {
        return FieldError(where, "max_consequent", "not a number >= 1");
      }
      out->query.max_consequent =
          static_cast<uint32_t>(max_consequent.number_value());
    }

    const Status valid = out->query.Validate();
    if (!valid.ok()) {
      return Status::InvalidArgument(where + ": " + valid.message());
    }
  }

  const JsonValue& algorithm = doc["algorithm"];
  if (!algorithm.is_null()) {
    if (!algorithm.is_string()) {
      return FieldError(where, "algorithm", "not a string");
    }
    Result<Algorithm> parsed = ParseAlgorithm(algorithm.string_value());
    if (!parsed.ok()) {
      return FieldError(where, "algorithm", parsed.status().message());
    }
    out->algorithm = parsed.value();
  }

  const JsonValue& patterns = doc["patterns"];
  out->patterns = PatternSet::All();
  if (!patterns.is_null()) {
    if (!patterns.is_string()) {
      return FieldError(where, "patterns", "not a string");
    }
    const std::string& p = patterns.string_value();
    if (p == "all") {
      out->patterns = PatternSet::All();
    } else if (p == "none") {
      out->patterns = PatternSet::None();
    } else {
      return FieldError(where, "patterns", "expected 'all' or 'none'");
    }
  }

  const JsonValue& priority = doc["priority"];
  if (!priority.is_null()) {
    if (!priority.is_number()) {
      return FieldError(where, "priority", "not a number");
    }
    out->priority = static_cast<int>(priority.number_value());
  }

  const JsonValue& timeout = doc["timeout_s"];
  if (!timeout.is_null()) {
    if (!timeout.is_number() || timeout.number_value() < 0.0) {
      return FieldError(where, "timeout_s", "not a non-negative number");
    }
    out->timeout_seconds = timeout.number_value();
  }

  const JsonValue& count_only = doc["count_only"];
  if (!count_only.is_null()) {
    if (!count_only.is_bool()) {
      return FieldError(where, "count_only", "not a bool");
    }
    out->count_only = count_only.bool_value();
  }

  return Status::OK();
}

JsonValue EncodeItemsets(const std::vector<CollectingSink::Entry>& itemsets) {
  JsonValue array = JsonValue::Array();
  for (const CollectingSink::Entry& e : itemsets) {
    JsonValue items = JsonValue::Array();
    for (Item it : e.first) items.Append(JsonValue::Int(it));
    JsonValue entry = JsonValue::Object();
    entry.Set("items", std::move(items));
    entry.Set("support", JsonValue::Int(e.second));
    array.Append(std::move(entry));
  }
  return array;
}

JsonValue EncodeItemArray(const Itemset& set) {
  JsonValue array = JsonValue::Array();
  for (Item it : set) array.Append(JsonValue::Int(it));
  return array;
}

JsonValue BuildQueryResponse(const MineResponse& response) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("task", JsonValue::Str(TaskName(response.task)));
  doc.Set("num_results",
          JsonValue::Int(static_cast<int64_t>(response.num_frequent)));
  doc.Set("cache", JsonValue::Str(CacheOutcomeName(response.cache)));
  doc.Set("digest", JsonValue::Str(response.dataset_digest));
  doc.Set("queue_ms", JsonValue::Number(response.queue_seconds * 1000.0));
  doc.Set("mine_ms", JsonValue::Number(response.mine_seconds * 1000.0));
  if (!response.itemsets.empty()) {
    doc.Set("itemsets", EncodeItemsets(response.itemsets));
  }
  if (!response.rules.empty()) {
    JsonValue rules = JsonValue::Array();
    for (const AssociationRule& r : response.rules) {
      JsonValue rule = JsonValue::Object();
      rule.Set("antecedent", EncodeItemArray(r.antecedent));
      rule.Set("consequent", EncodeItemArray(r.consequent));
      rule.Set("support", JsonValue::Int(r.itemset_support));
      rule.Set("confidence", JsonValue::Number(r.confidence));
      rule.Set("lift", JsonValue::Number(r.lift));
      rules.Append(std::move(rule));
    }
    doc.Set("rules", std::move(rules));
  }
  return doc;
}

JsonValue BuildError(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::Str(status.message()));
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(false));
  doc.Set("error", std::move(error));
  return doc;
}

}  // namespace

Result<ServiceRequest> DecodeRequest(const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue& op = doc["op"];
  if (!op.is_string()) {
    return FieldError("request", "op", "missing or not a string");
  }

  ServiceRequest request;
  const std::string& name = op.string_value();
  const std::string where = "op '" + name + "'";
  if (name == "ping") {
    request.op = ServiceRequest::Op::kPing;
    return request;
  }
  if (name == "metrics") {
    request.op = ServiceRequest::Op::kMetrics;
    return request;
  }
  if (name == "shutdown") {
    request.op = ServiceRequest::Op::kShutdown;
    return request;
  }
  if (name == "mine") {
    // v1 compat shim: the frozen field set, always task "frequent".
    request.op = ServiceRequest::Op::kMine;
    request.version = 1;
    FPM_RETURN_IF_ERROR(DecodeMineBody(doc, where, /*with_tasks=*/false,
                                       &request.mine));
    return request;
  }
  if (name == "query") {
    request.op = ServiceRequest::Op::kQuery;
    request.version = 2;
    FPM_RETURN_IF_ERROR(DecodeMineBody(doc, where, /*with_tasks=*/true,
                                       &request.mine));
    return request;
  }
  if (name == "batch") {
    request.op = ServiceRequest::Op::kBatch;
    request.version = 2;
    const JsonValue& queries = doc["queries"];
    if (!queries.is_array()) {
      return FieldError(where, "queries", "missing or not an array");
    }
    const std::vector<JsonValue>& items = queries.array_items();
    if (items.empty()) {
      return FieldError(where, "queries", "must not be empty");
    }
    for (size_t i = 0; i < items.size(); ++i) {
      ServiceRequest::BatchEntry entry;
      const JsonValue& q = items[i];
      const std::string entry_where =
          where + ": queries[" + std::to_string(i) + "]";
      if (!q.is_object()) {
        entry.status =
            Status::InvalidArgument(entry_where + ": not an object");
      } else {
        entry.status = DecodeMineBody(q, entry_where, /*with_tasks=*/true,
                                      &entry.request);
      }
      request.batch.push_back(std::move(entry));
    }
    return request;
  }
  return FieldError("request", "op", "unknown op '" + name + "'");
}

std::string EncodeMineResponse(const MineResponse& response) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("num_frequent",
          JsonValue::Int(static_cast<int64_t>(response.num_frequent)));
  doc.Set("cache", JsonValue::Str(CacheOutcomeName(response.cache)));
  doc.Set("digest", JsonValue::Str(response.dataset_digest));
  doc.Set("queue_ms", JsonValue::Number(response.queue_seconds * 1000.0));
  doc.Set("mine_ms", JsonValue::Number(response.mine_seconds * 1000.0));
  if (!response.itemsets.empty()) {
    doc.Set("itemsets", EncodeItemsets(response.itemsets));
  }
  return doc.Dump();
}

std::string EncodeQueryResponse(const MineResponse& response) {
  return BuildQueryResponse(response).Dump();
}

std::string EncodeQueryResponseWithId(uint64_t id,
                                      const MineResponse& response) {
  JsonValue doc = BuildQueryResponse(response);
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(id)));
  return doc.Dump();
}

std::string EncodeError(const Status& status) {
  return BuildError(status).Dump();
}

std::string EncodeErrorWithId(uint64_t id, const Status& status) {
  JsonValue doc = BuildError(status);
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(id)));
  return doc.Dump();
}

std::string EncodeOk() {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  return doc.Dump();
}

}  // namespace fpm
