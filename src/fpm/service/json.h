// Minimal JSON value: parse + serialize, just enough for the service's
// newline-delimited protocol (fpm/service/protocol.h).
//
// Deliberately small rather than general: numbers are doubles (every
// value the protocol carries — supports, counts, byte sizes — is well
// inside the 2^53 exact-integer range), objects are ordered maps so
// serialization is deterministic, and parsing rejects anything outside
// the JSON grammar instead of guessing. No external dependency.

#ifndef FPM_SERVICE_JSON_H_
#define FPM_SERVICE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fpm/common/status.h"

namespace fpm {

/// A JSON document node. Value semantics; copying copies the subtree.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Int(int64_t i) { return Number(static_cast<double>(i)); }
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const { return static_cast<int64_t>(number_); }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>& mutable_array() { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Object member access; returns a shared null value for absent keys
  /// (and on non-objects), so lookups chain without checks.
  const JsonValue& operator[](const std::string& key) const;

  /// Sets an object member (the value must be an object).
  void Set(const std::string& key, JsonValue value);

  /// Appends to an array (the value must be an array).
  void Append(JsonValue value);

  /// Compact single-line serialization (no spaces, keys in map order —
  /// deterministic for a given value).
  std::string Dump() const;

  bool operator==(const JsonValue&) const = default;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document. Trailing non-whitespace is an error —
/// protocol messages are exactly one value per line.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace fpm

#endif  // FPM_SERVICE_JSON_H_
