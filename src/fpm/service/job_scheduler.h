// Priority job scheduler on top of the work-stealing ThreadPool.
//
// The pool itself has no priority or bounding concept — mining tasks
// are all equal there. The service needs both: interactive queries must
// overtake bulk ones, and a full queue must push back instead of
// buffering unboundedly. The scheduler keeps its own priority heap and
// feeds the pool *runner* tasks: a runner loops popping the highest-
// priority job and running it, exiting when the heap drains. At most
// `max_concurrency` runners exist, so the pool's workers are shared
// fairly between the scheduler and any parallel mining the jobs
// themselves do.
//
// Backpressure: Submit() fails with ResourceExhausted once
// `max_queue_depth` jobs are queued (not yet running) — the caller (the
// daemon) maps that to an error response rather than queueing blindly.

#ifndef FPM_SERVICE_JOB_SCHEDULER_H_
#define FPM_SERVICE_JOB_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/parallel/thread_pool.h"

namespace fpm {

class Counter;
class Gauge;

struct JobSchedulerOptions {
  ThreadPool* pool = nullptr;     ///< required; not owned
  size_t max_queue_depth = 64;    ///< Submit() backpressure bound
  uint32_t max_concurrency = 0;   ///< 0 = pool worker count
};

/// One job currently executing on a pool worker (stats() view).
struct InFlightJob {
  uint64_t query_id = 0;     ///< 0 for jobs submitted without an id
  double age_seconds = 0.0;  ///< since the job started running
};

struct JobSchedulerStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   ///< backpressure rejections
  uint64_t completed = 0;
  size_t queue_depth = 0;  ///< queued, not yet running
  size_t running = 0;
  std::vector<InFlightJob> in_flight;  ///< the `running` jobs, with ages
};

class JobScheduler {
 public:
  explicit JobScheduler(JobSchedulerOptions options);

  /// Drains: blocks until every accepted job has run.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues `job` at `priority` (higher runs first; FIFO within a
  /// priority). ResourceExhausted when the queue is full. The job runs
  /// on a pool worker; it must not block on other scheduler jobs.
  /// `query_id` labels the job in stats().in_flight (0 = unlabelled).
  Status Submit(int priority, uint64_t query_id, std::function<void()> job);
  Status Submit(int priority, std::function<void()> job) {
    return Submit(priority, /*query_id=*/0, std::move(job));
  }

  /// Blocks until the queue is empty and no job is running.
  void Drain();

  JobSchedulerStats stats() const;

 private:
  struct QueuedJob {
    int priority = 0;
    uint64_t seq = 0;       ///< FIFO tie-break
    uint64_t query_id = 0;  ///< stats()/watchdog label
    std::function<void()> fn;
  };
  struct RunningJob {
    uint64_t seq = 0;  ///< identifies the slot across start/finish
    uint64_t query_id = 0;
    std::chrono::steady_clock::time_point start;
  };
  struct JobOrder {
    bool operator()(const QueuedJob& a, const QueuedJob& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;  // earlier submission first
    }
  };

  /// Runner body: pops and runs jobs until the heap is empty.
  void RunnerLoop();

  JobSchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  std::priority_queue<QueuedJob, std::vector<QueuedJob>, JobOrder> queue_;
  uint64_t next_seq_ = 0;
  uint32_t active_runners_ = 0;
  size_t running_ = 0;
  std::vector<RunningJob> running_jobs_;
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;

  // fpm.service.jobs.* metrics.
  Counter* submitted_counter_;
  Counter* rejected_counter_;
  Counter* completed_counter_;
  Gauge* queue_depth_gauge_;
};

}  // namespace fpm

#endif  // FPM_SERVICE_JOB_SCHEDULER_H_
