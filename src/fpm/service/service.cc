#include "fpm/service/service.h"

#include <utility>

#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"
#include "fpm/service/cost_model.h"

namespace fpm {

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kExact:
      return "hit";
    case CacheOutcome::kDominated:
      return "dominated";
  }
  return "unknown";
}

bool MineJob::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

bool MineJob::WaitFor(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] { return done_; });
}

void MineJob::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
}

void MineJob::Cancel() { cancel_.RequestCancel(); }

Result<MineResponse> MineJob::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(result_);
}

uint32_t MiningService::ResolveThreads(uint32_t requested) {
  return requested != 0 ? requested : ThreadPool::HardwareThreads();
}

MiningService::MiningService(Options options)
    : options_(options),
      pool_(ResolveThreads(options.num_threads)),
      registry_(options.dataset_budget_bytes),
      cache_(options.cache_budget_bytes),
      scheduler_(JobSchedulerOptions{&pool_, options.max_queue_depth,
                                     /*max_concurrency=*/0}) {
  MetricsRegistry& m = MetricsRegistry::Default();
  requests_counter_ = m.GetCounter("fpm.service.requests");
  admission_rejects_counter_ =
      m.GetCounter("fpm.service.admission_rejects");
  cancelled_counter_ = m.GetCounter("fpm.service.jobs.cancelled");
  deadline_counter_ = m.GetCounter("fpm.service.jobs.deadline_exceeded");
  mine_ms_histogram_ = m.GetHistogram(
      "fpm.service.mine_ms", {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
                              2500, 5000, 10000, 30000, 60000});
}

MiningService::~MiningService() { scheduler_.Drain(); }

Result<std::shared_ptr<MineJob>> MiningService::Submit(
    const MineRequest& request) {
  requests_counter_->Increment();
  if (request.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (request.dataset_path.empty()) {
    return Status::InvalidArgument("dataset_path must be set");
  }

  // Pin the dataset for the whole job lifetime (load-once; concurrent
  // first requests for the same path coalesce inside the registry).
  FPM_ASSIGN_OR_RETURN(DatasetHandle dataset,
                       registry_.Get(request.dataset_path));

  // Admission: bound the answer before spending any mining time. The
  // bound costs one database pass — amortized by the registry across
  // the dataset's queries, and small against mining an inadmissibly
  // large one.
  if (options_.max_estimated_itemsets > 0.0) {
    const CostEstimate est =
        EstimateMiningCost(*dataset.database, request.min_support);
    if (est.max_frequent_itemsets > options_.max_estimated_itemsets) {
      admission_rejects_counter_->Increment();
      return Status::ResourceExhausted(
          "query rejected by admission control: itemset bound " +
          std::to_string(est.max_frequent_itemsets) + " exceeds " +
          std::to_string(options_.max_estimated_itemsets));
    }
  }

  // The handle owns the token; the job (and any kernel frames it
  // detaches) only borrow it, and the shared_ptr captured by the
  // closure keeps the handle alive past abandonment by the caller.
  auto job = std::shared_ptr<MineJob>(new MineJob());
  if (request.timeout_seconds > 0.0) {
    job->cancel_.SetTimeout(std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
        std::chrono::duration<double>(request.timeout_seconds)));
  }

  const auto submit_time = std::chrono::steady_clock::now();
  Status queued = scheduler_.Submit(
      request.priority, [this, request, dataset, job, submit_time] {
        const auto start_time = std::chrono::steady_clock::now();
        Result<MineResponse> result = RunJob(request, dataset, job->cancel_);
        if (result.ok()) {
          result.value().queue_seconds =
              std::chrono::duration<double>(start_time - submit_time)
                  .count();
          result.value().mine_seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_time)
                  .count();
          mine_ms_histogram_->Observe(static_cast<uint64_t>(
              result.value().mine_seconds * 1000.0));
        } else if (result.status().code() == StatusCode::kCancelled) {
          cancelled_counter_->Increment();
        } else if (result.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          deadline_counter_->Increment();
        }
        std::lock_guard<std::mutex> lock(job->mu_);
        job->result_ = std::move(result);
        job->done_ = true;
        job->cv_.notify_all();
      });
  FPM_RETURN_IF_ERROR(queued);
  return job;
}

Result<MineResponse> MiningService::RunJob(const MineRequest& request,
                                           const DatasetHandle& dataset,
                                           const CancelToken& cancel) {
  ScopedSpan span("service.mine");
  span.AddArg("min_support", request.min_support);

  // A job that sat in the queue past its deadline never starts mining.
  if (cancel.cancelled()) return cancel.ToStatus();

  ResultCacheKey key;
  key.digest = dataset.digest;
  key.algorithm = request.algorithm;
  key.pattern_bits =
      EffectivePatterns(request.algorithm, request.patterns).bits();
  key.min_support = request.min_support;

  MineResponse response;
  response.dataset_digest = dataset.digest;

  ResultCacheLookup cached = cache_.Lookup(key);
  std::shared_ptr<const CachedResult> result = cached.result;
  if (result != nullptr) {
    response.cache =
        cached.exact ? CacheOutcome::kExact : CacheOutcome::kDominated;
  } else {
    // Mine with the sequential kernel: deterministic emission order is
    // the cache's correctness contract, and cross-query parallelism
    // already saturates the pool.
    MineOptions mine_options;
    mine_options.algorithm = request.algorithm;
    mine_options.patterns = request.patterns;
    mine_options.min_support = request.min_support;
    mine_options.execution.num_threads = 1;
    mine_options.cancel = &cancel;

    CollectingSink sink;
    Result<MineStats> stats =
        Mine(*dataset.database, mine_options, &sink);
    FPM_RETURN_IF_ERROR(stats.status());

    auto fresh = std::make_shared<CachedResult>();
    fresh->itemsets = std::move(sink.mutable_results());
    fresh->num_frequent = stats.value().num_frequent;
    fresh->bytes = ResultCache::EstimateBytes(fresh->itemsets);
    cache_.Insert(key, fresh);
    result = std::move(fresh);
  }

  response.num_frequent = result->num_frequent;
  if (!request.count_only) response.itemsets = result->itemsets;
  span.AddArg("num_frequent", response.num_frequent);
  span.AddArg("cache_hit",
              response.cache == CacheOutcome::kMiss ? 0 : 1);
  return response;
}

Result<MineResponse> MiningService::Execute(const MineRequest& request) {
  FPM_ASSIGN_OR_RETURN(std::shared_ptr<MineJob> job, Submit(request));
  job->Wait();
  return job->Take();
}

}  // namespace fpm
