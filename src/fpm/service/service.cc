#include "fpm/service/service.h"

#include <utility>

#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"
#include "fpm/service/cost_model.h"

namespace fpm {

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kExact:
      return "hit";
    case CacheOutcome::kDominated:
      return "dominated";
    case CacheOutcome::kCrossTask:
      return "cross_task";
  }
  return "unknown";
}

bool MineJob::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

bool MineJob::WaitFor(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] { return done_; });
}

void MineJob::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
}

void MineJob::Cancel() { cancel_.RequestCancel(); }

Result<MineResponse> MineJob::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(result_);
}

uint32_t MiningService::ResolveThreads(uint32_t requested) {
  return requested != 0 ? requested : ThreadPool::HardwareThreads();
}

MiningService::MiningService(Options options)
    : options_(options),
      pool_(ResolveThreads(options.num_threads)),
      registry_(options.dataset_budget_bytes),
      cache_(options.cache_budget_bytes),
      scheduler_(JobSchedulerOptions{&pool_, options.max_queue_depth,
                                     /*max_concurrency=*/0}) {
  MetricsRegistry& m = MetricsRegistry::Default();
  requests_counter_ = m.GetCounter("fpm.service.requests");
  admission_rejects_counter_ =
      m.GetCounter("fpm.service.admission_rejects");
  cancelled_counter_ = m.GetCounter("fpm.service.jobs.cancelled");
  deadline_counter_ = m.GetCounter("fpm.service.jobs.deadline_exceeded");
  mine_ms_histogram_ = m.GetHistogram(
      "fpm.service.mine_ms", {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
                              2500, 5000, 10000, 30000, 60000});
  for (int t = 0; t < kNumMiningTasks; ++t) {
    task_counters_[t] = m.GetCounter(
        std::string("fpm.service.tasks.") +
        TaskName(static_cast<MiningTask>(t)));
  }
}

MiningService::~MiningService() { scheduler_.Drain(); }

Result<std::shared_ptr<MineJob>> MiningService::Submit(
    const MineRequest& request) {
  requests_counter_->Increment();
  FPM_RETURN_IF_ERROR(request.query.Validate());
  if (request.dataset_path.empty()) {
    return Status::InvalidArgument("dataset_path must be set");
  }
  task_counters_[static_cast<int>(request.query.task)]->Increment();

  // Pin the dataset for the whole job lifetime (load-once; concurrent
  // first requests for the same path coalesce inside the registry).
  FPM_ASSIGN_OR_RETURN(DatasetHandle dataset,
                       registry_.Get(request.dataset_path));

  // The job runs with a copy of the request: top-k queries get the
  // cost-model seed threshold planted here, where the bound pass is
  // already amortized by the registry.
  MineRequest queued = request;

  // Admission: bound the answer before spending any mining time. The
  // bound costs one database pass — amortized by the registry across
  // the dataset's queries, and small against mining an inadmissibly
  // large one. A top-k answer is at most k entries, so k is its own
  // bound; the threshold bound would wrongly reject a bounded query
  // over a dense dataset.
  if (request.query.task == MiningTask::kTopK) {
    if (options_.max_estimated_itemsets > 0.0 &&
        static_cast<double>(request.query.k) >
            options_.max_estimated_itemsets) {
      admission_rejects_counter_->Increment();
      return Status::ResourceExhausted(
          "query rejected by admission control: k " +
          std::to_string(request.query.k) + " exceeds " +
          std::to_string(options_.max_estimated_itemsets));
    }
  } else if (options_.max_estimated_itemsets > 0.0) {
    const CostEstimate est =
        EstimateMiningCost(*dataset.database, request.query.min_support);
    if (est.max_frequent_itemsets > options_.max_estimated_itemsets) {
      admission_rejects_counter_->Increment();
      return Status::ResourceExhausted(
          "query rejected by admission control: itemset bound " +
          std::to_string(est.max_frequent_itemsets) + " exceeds " +
          std::to_string(options_.max_estimated_itemsets));
    }
  }

  // The handle owns the token; the job (and any kernel frames it
  // detaches) only borrow it, and the shared_ptr captured by the
  // closure keeps the handle alive past abandonment by the caller.
  auto job = std::shared_ptr<MineJob>(new MineJob());
  if (request.timeout_seconds > 0.0) {
    job->cancel_.SetTimeout(std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
        std::chrono::duration<double>(request.timeout_seconds)));
  }

  const auto submit_time = std::chrono::steady_clock::now();
  Status enqueue_status = scheduler_.Submit(
      request.priority,
      [this, request = std::move(queued), dataset, job, submit_time] {
        const auto start_time = std::chrono::steady_clock::now();
        Result<MineResponse> result = RunJob(request, dataset, job->cancel_);
        if (result.ok()) {
          result.value().queue_seconds =
              std::chrono::duration<double>(start_time - submit_time)
                  .count();
          result.value().mine_seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_time)
                  .count();
          mine_ms_histogram_->Observe(static_cast<uint64_t>(
              result.value().mine_seconds * 1000.0));
        } else if (result.status().code() == StatusCode::kCancelled) {
          cancelled_counter_->Increment();
        } else if (result.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          deadline_counter_->Increment();
        }
        std::lock_guard<std::mutex> lock(job->mu_);
        job->result_ = std::move(result);
        job->done_ = true;
        job->cv_.notify_all();
      });
  FPM_RETURN_IF_ERROR(enqueue_status);
  return job;
}

Result<MineResponse> MiningService::RunJob(const MineRequest& request,
                                           const DatasetHandle& dataset,
                                           const CancelToken& cancel) {
  ScopedSpan span("service.mine");
  span.AddArg("task", static_cast<uint64_t>(request.query.task));
  span.AddArg("min_support", request.query.min_support);

  // A job that sat in the queue past its deadline never starts mining.
  if (cancel.cancelled()) return cancel.ToStatus();

  const ResultCacheKey key = ResultCacheKey::ForQuery(
      dataset.digest, request.algorithm,
      EffectivePatterns(request.algorithm, request.patterns).bits(),
      request.query);

  MineResponse response;
  response.task = request.query.task;
  response.dataset_digest = dataset.digest;

  ResultCacheLookup cached = cache_.Lookup(key);
  std::shared_ptr<const CachedResult> result = cached.result;
  if (result != nullptr) {
    response.cache = cached.exact        ? CacheOutcome::kExact
                     : cached.cross_task ? CacheOutcome::kCrossTask
                                         : CacheOutcome::kDominated;
  } else {
    // Mine with the sequential kernel: deterministic emission/output
    // order is the cache's correctness contract, and cross-query
    // parallelism already saturates the pool.
    FPM_ASSIGN_OR_RETURN(
        std::unique_ptr<Miner> miner,
        CreateMiner(request.algorithm, request.patterns, &cancel));

    // The seed threshold is planted here, not at Submit: it costs a
    // database pass, and a query the cache can answer never needs it.
    MiningQuery query = request.query;
    if (query.task == MiningTask::kTopK && query.topk_seed_support == 0) {
      query.topk_seed_support =
          TopKSeedThreshold(*dataset.database, query.k, query.min_support);
    }

    auto fresh = std::make_shared<CachedResult>();
    if (query.task == MiningTask::kRules) {
      FPM_ASSIGN_OR_RETURN(
          const MineStats stats,
          miner->MineRules(*dataset.database, query, &fresh->rules));
      fresh->num_results = stats.num_frequent;
    } else {
      CollectingSink sink;
      FPM_ASSIGN_OR_RETURN(
          const MineStats stats,
          miner->Mine(*dataset.database, query, &sink));
      fresh->itemsets = std::move(sink.mutable_results());
      fresh->num_results = stats.num_frequent;
    }
    fresh->total_weight = dataset.database->total_weight();
    fresh->bytes = ResultCache::EstimateResultBytes(*fresh);
    cache_.Insert(key, fresh);
    result = std::move(fresh);
  }

  response.num_frequent = result->num_results;
  if (!request.count_only) {
    response.itemsets = result->itemsets;
    response.rules = result->rules;
  }
  span.AddArg("num_results", response.num_frequent);
  span.AddArg("cache_hit",
              response.cache == CacheOutcome::kMiss ? 0 : 1);
  return response;
}

Result<MineResponse> MiningService::Execute(const MineRequest& request) {
  FPM_ASSIGN_OR_RETURN(std::shared_ptr<MineJob> job, Submit(request));
  job->Wait();
  return job->Take();
}

}  // namespace fpm
