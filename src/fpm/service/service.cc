#include "fpm/service/service.h"

#include <algorithm>
#include <utility>

#include "fpm/obs/metrics.h"
#include "fpm/obs/query_log.h"
#include "fpm/obs/trace.h"
#include "fpm/service/cost_model.h"

namespace fpm {

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kExact:
      return "hit";
    case CacheOutcome::kDominated:
      return "dominated";
    case CacheOutcome::kCrossTask:
      return "cross_task";
    case CacheOutcome::kReseeded:
      return "reseeded";
  }
  return "unknown";
}

Result<CacheOutcome> ParseCacheOutcome(const std::string& name) {
  if (name == "miss") return CacheOutcome::kMiss;
  if (name == "hit") return CacheOutcome::kExact;
  if (name == "dominated") return CacheOutcome::kDominated;
  if (name == "cross_task") return CacheOutcome::kCrossTask;
  if (name == "reseeded") return CacheOutcome::kReseeded;
  return Status::InvalidArgument("unknown cache outcome '" + name + "'");
}

bool MineJob::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

bool MineJob::WaitFor(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] { return done_; });
}

void MineJob::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
}

void MineJob::Cancel() { cancel_.RequestCancel(); }

Result<MineResponse> MineJob::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(result_);
}

uint32_t MiningService::ResolveThreads(uint32_t requested) {
  return requested != 0 ? requested : ThreadPool::HardwareThreads();
}

MiningService::MiningService(Options options)
    : options_(options),
      pool_(ResolveThreads(options.num_threads)),
      registry_(options.dataset_budget_bytes),
      cache_(options.cache_budget_bytes),
      scheduler_(JobSchedulerOptions{&pool_, options.max_queue_depth,
                                     /*max_concurrency=*/0}),
      watchdog_(WatchdogOptions{options.watchdog_deadline_factor,
                                options.watchdog_absolute_seconds,
                                options.watchdog_interval_seconds,
                                options.query_log}),
      query_log_(options.query_log),
      start_time_(std::chrono::steady_clock::now()) {
  watchdog_.Start();
  MetricsRegistry& m = MetricsRegistry::Default();
  requests_counter_ = m.GetCounter("fpm.service.requests");
  admission_rejects_counter_ =
      m.GetCounter("fpm.service.admission_rejects");
  cancelled_counter_ = m.GetCounter("fpm.service.jobs.cancelled");
  deadline_counter_ = m.GetCounter("fpm.service.jobs.deadline_exceeded");
  mine_ms_histogram_ = m.GetHistogram(
      "fpm.service.mine_ms", {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
                              2500, 5000, 10000, 30000, 60000});
  reseeds_counter_ = m.GetCounter("fpm.service.cache.reseeds");
  reseed_candidates_counter_ =
      m.GetCounter("fpm.service.cache.reseed_candidates");
  reseed_recounted_counter_ =
      m.GetCounter("fpm.service.cache.reseed_recounted");
  for (int t = 0; t < kNumMiningTasks; ++t) {
    task_counters_[t] = m.GetCounter(
        std::string("fpm.service.tasks.") +
        TaskName(static_cast<MiningTask>(t)));
  }
}

MiningService::~MiningService() { scheduler_.Drain(); }

Result<std::shared_ptr<MineJob>> MiningService::Submit(
    const MineRequest& request) {
  requests_counter_->Increment();

  // Every request — including one rejected below — runs under a unique
  // id so its query-log line is attributable. The daemon pre-allocates
  // (request.query_id != 0) to tag its own error responses.
  MineRequest queued = request;
  if (queued.query_id == 0) queued.query_id = AllocateQueryId();

  // Rejection helper: log the submit-path failure and pass it through.
  const auto reject = [this, &queued](Status status) -> Status {
    LogQuery(queued, /*dataset=*/nullptr, status, /*queue_seconds=*/0.0,
             /*mine_seconds=*/0.0);
    return status;
  };

  Status valid = request.query.Validate();
  if (!valid.ok()) return reject(std::move(valid));
  if (request.dataset_path.empty() && request.dataset_id.empty()) {
    return reject(Status::InvalidArgument("dataset_path must be set"));
  }
  task_counters_[static_cast<int>(request.query.task)]->Increment();

  // Pin the dataset version for the whole job lifetime. Handle
  // addressing resolves "latest" here, at submission; path addressing
  // is the legacy shim (load-once; concurrent first requests for the
  // same path coalesce inside the registry).
  DatasetHandle dataset;
  {
    Result<DatasetHandle> resolved =
        !request.dataset_id.empty()
            ? registry_.Resolve(request.dataset_id, request.dataset_version)
            : registry_.Get(request.dataset_path);
    if (!resolved.ok()) return reject(resolved.status());
    dataset = std::move(resolved).value();
  }

  // Admission: bound the answer before spending any mining time. The
  // bound costs one database pass — amortized by the registry across
  // the dataset's queries, and small against mining an inadmissibly
  // large one. A top-k answer is at most k entries, so k is its own
  // bound; the threshold bound would wrongly reject a bounded query
  // over a dense dataset.
  if (request.query.task == MiningTask::kTopK) {
    if (options_.max_estimated_itemsets > 0.0 &&
        static_cast<double>(request.query.k) >
            options_.max_estimated_itemsets) {
      admission_rejects_counter_->Increment();
      return reject(Status::ResourceExhausted(
          "query rejected by admission control: k " +
          std::to_string(request.query.k) + " exceeds " +
          std::to_string(options_.max_estimated_itemsets)));
    }
  } else if (options_.max_estimated_itemsets > 0.0) {
    const CostEstimate est =
        EstimateMiningCost(*dataset.database, request.query.min_support);
    if (est.max_frequent_itemsets > options_.max_estimated_itemsets) {
      admission_rejects_counter_->Increment();
      return reject(Status::ResourceExhausted(
          "query rejected by admission control: itemset bound " +
          std::to_string(est.max_frequent_itemsets) + " exceeds " +
          std::to_string(options_.max_estimated_itemsets)));
    }
  }

  // The handle owns the token; the job (and any kernel frames it
  // detaches) only borrow it, and the shared_ptr captured by the
  // closure keeps the handle alive past abandonment by the caller.
  auto job = std::shared_ptr<MineJob>(new MineJob());
  job->query_id_ = queued.query_id;
  if (request.timeout_seconds > 0.0) {
    job->cancel_.SetTimeout(std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
        std::chrono::duration<double>(request.timeout_seconds)));
  }

  // The watchdog tracks the job from submission: queue time counts
  // against the deadline exactly as CancelToken arms it.
  watchdog_.Register(queued.query_id, TaskName(request.query.task),
                     request.timeout_seconds);

  const auto submit_time = std::chrono::steady_clock::now();
  Status enqueue_status = scheduler_.Submit(
      request.priority, queued.query_id,
      [this, request = std::move(queued), dataset, job, submit_time] {
        const auto start_time = std::chrono::steady_clock::now();
        Result<MineResponse> result = RunJob(request, dataset, job->cancel_);
        const double queue_seconds =
            std::chrono::duration<double>(start_time - submit_time).count();
        const double mine_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_time)
                .count();
        if (result.ok()) {
          result.value().query_id = request.query_id;
          result.value().trace_id = request.trace_id;
          result.value().queue_seconds = queue_seconds;
          result.value().mine_seconds = mine_seconds;
          mine_ms_histogram_->Observe(
              static_cast<uint64_t>(mine_seconds * 1000.0));
        } else if (result.status().code() == StatusCode::kCancelled) {
          cancelled_counter_->Increment();
        } else if (result.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          deadline_counter_->Increment();
        }
        latency_window_.Record((queue_seconds + mine_seconds) * 1000.0);
        watchdog_.Unregister(request.query_id);
        LogQuery(request, &dataset, result, queue_seconds, mine_seconds);
        std::lock_guard<std::mutex> lock(job->mu_);
        job->result_ = std::move(result);
        job->done_ = true;
        job->cv_.notify_all();
      });
  if (!enqueue_status.ok()) {
    watchdog_.Unregister(job->query_id_);
    return reject(std::move(enqueue_status));
  }
  return job;
}

void MiningService::LogQuery(const MineRequest& request,
                             const DatasetHandle* dataset,
                             const Result<MineResponse>& result,
                             double queue_seconds, double mine_seconds) {
  if (query_log_ == nullptr || !query_log_->enabled()) return;
  QueryLogEntry entry;
  entry.query_id = request.query_id;
  entry.trace_id = request.trace_id;
  entry.op = request.op;
  entry.task = TaskName(request.query.task);
  entry.dataset = request.dataset_path;
  entry.min_support = request.query.min_support;
  entry.k = request.query.task == MiningTask::kTopK ? request.query.k : 0;
  entry.algorithm = AlgorithmName(request.algorithm);
  if (dataset != nullptr) {
    entry.dataset_id = dataset->id;
    entry.dataset_version = dataset->version;
    entry.digest = dataset->digest;
  } else {
    entry.dataset_id = request.dataset_id;
    entry.dataset_version = request.dataset_version;
  }
  entry.queue_ms = queue_seconds * 1000.0;
  entry.mine_ms = mine_seconds * 1000.0;
  if (result.ok()) {
    const MineResponse& response = result.value();
    entry.derive_ms = response.derive_seconds * 1000.0;
    entry.cache = CacheOutcomeName(response.cache);
    entry.num_results = response.num_frequent;
    entry.peak_bytes = response.peak_bytes;
    entry.status = "ok";
  } else {
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        entry.status = "cancelled";
        break;
      case StatusCode::kDeadlineExceeded:
        entry.status = "deadline";
        break;
      default:
        // Submit-path failures (validation, resolve, admission,
        // backpressure) never started a job.
        entry.status = dataset == nullptr ? "rejected" : "error";
    }
    entry.reason = result.status().message();
  }
  query_log_->Write(entry);
}

ServiceStats MiningService::Stats() const {
  ServiceStats s;
  s.uptime_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
  s.registry = registry_.stats();
  s.cache = cache_.stats();
  s.scheduler = scheduler_.stats();
  for (uint64_t window : {uint64_t{1}, uint64_t{10}, uint64_t{60}}) {
    const WindowedHistogram::Stats w = latency_window_.Query(window);
    s.windows.push_back(ServiceWindowStats{window, w.count, w.qps, w.p50_ms,
                                           w.p99_ms, w.max_ms});
  }
  s.watchdog = watchdog_.stats();
  return s;
}

std::shared_ptr<CachedResult> MiningService::TryReseed(
    const ResultCacheKey& frequent_key, const DatasetHandle& dataset) {
  const VersionDelta& delta = *dataset.delta;
  const Support threshold = frequent_key.min_support;
  // Soundness bound: s_child(X) <= s_parent(X) + appended_weight, so
  // every child-frequent X at S has s_parent(X) >= S - appended_weight.
  // A parent FREQUENT listing at S_p <= S - appended_weight therefore
  // contains every child-frequent itemset — a complete candidate
  // border. S <= appended_weight admits itemsets made of brand-new
  // items the parent never saw; no seed can cover those.
  if (threshold <= delta.appended_weight) return nullptr;
  if (dataset.parent_digest.empty()) return nullptr;
  const Support max_source = threshold - delta.appended_weight;
  ReseedSource seed =
      cache_.FindSeed(frequent_key, dataset.parent_digest, max_source);
  if (seed.result == nullptr) return nullptr;

  // Pre-sort the delta transactions so candidate containment is one
  // std::includes per (candidate, delta transaction) pair; cached
  // itemsets are already sorted (CollectingSink::Emit sorts on emit).
  const auto sorted_txns = [](const std::vector<Itemset>& txns) {
    std::vector<Itemset> out = txns;
    for (Itemset& t : out) std::sort(t.begin(), t.end());
    return out;
  };
  const std::vector<Itemset> appended = sorted_txns(delta.appended);
  const std::vector<Itemset> expired = sorted_txns(delta.expired);

  // Candidates entirely outside the delta item universe keep their
  // parent support verbatim — only delta-touched ones are recounted.
  Item universe_bound = 0;
  for (const Itemset& t : appended) {
    for (Item it : t) universe_bound = std::max(universe_bound, it);
  }
  for (const Itemset& t : expired) {
    for (Item it : t) universe_bound = std::max(universe_bound, it);
  }
  std::vector<bool> in_universe(static_cast<size_t>(universe_bound) + 1,
                                false);
  for (const Itemset& t : appended) {
    for (Item it : t) in_universe[it] = true;
  }
  for (const Itemset& t : expired) {
    for (Item it : t) in_universe[it] = true;
  }

  auto reseeded = std::make_shared<CachedResult>();
  uint64_t recounted = 0;
  for (const CollectingSink::Entry& entry : seed.result->itemsets) {
    const Itemset& candidate = entry.first;
    Support support = entry.second;
    bool touched = true;
    for (Item it : candidate) {
      if (static_cast<size_t>(it) >= in_universe.size() ||
          !in_universe[it]) {
        touched = false;
        break;
      }
    }
    if (touched) {
      ++recounted;
      for (size_t t = 0; t < appended.size(); ++t) {
        if (std::includes(appended[t].begin(), appended[t].end(),
                          candidate.begin(), candidate.end())) {
          support += delta.appended_weights[t];
        }
      }
      for (size_t t = 0; t < expired.size(); ++t) {
        if (std::includes(expired[t].begin(), expired[t].end(),
                          candidate.begin(), candidate.end())) {
          support -= delta.expired_weights[t];
        }
      }
    }
    if (support >= threshold) {
      reseeded->itemsets.emplace_back(candidate, support);
    }
  }
  reseed_candidates_counter_->Add(seed.result->itemsets.size());
  reseed_recounted_counter_->Add(recounted);

  // Canonical order: supports shifted across versions, so the parent's
  // kernel emission order is meaningless here. Reseeded FREQUENT
  // listings (and everything derived from them) are canonically sorted
  // — the one documented deviation from raw kernel order (DESIGN §16).
  std::sort(reseeded->itemsets.begin(), reseeded->itemsets.end());
  reseeded->num_results = reseeded->itemsets.size();
  reseeded->total_weight = dataset.database->total_weight();
  reseeded->bytes = ResultCache::EstimateResultBytes(*reseeded);
  return reseeded;
}

Result<MineResponse> MiningService::RunJob(const MineRequest& request,
                                           const DatasetHandle& dataset,
                                           const CancelToken& cancel) {
  // The span context tags every span this thread records while the job
  // runs — the service.mine span below and all nested kernel/task
  // spans — with the owning request's query_id.
  SpanContextScope span_context(request.query_id);
  ScopedSpan span("service.mine");
  span.AddArg("task", static_cast<uint64_t>(request.query.task));
  span.AddArg("min_support", request.query.min_support);

  // A job that sat in the queue past its deadline never starts mining.
  if (cancel.cancelled()) return cancel.ToStatus();

  if (mine_hook_for_test_) mine_hook_for_test_();

  const auto derive_start = std::chrono::steady_clock::now();
  const ResultCacheKey key = ResultCacheKey::ForQuery(
      dataset.digest, request.algorithm,
      EffectivePatterns(request.algorithm, request.patterns).bits(),
      request.query);

  MineResponse response;
  response.task = request.query.task;
  response.dataset_digest = dataset.digest;

  ResultCacheLookup cached = cache_.Lookup(key);
  std::shared_ptr<const CachedResult> result = cached.result;
  if (result != nullptr) {
    response.cache = cached.exact        ? CacheOutcome::kExact
                     : cached.cross_task ? CacheOutcome::kCrossTask
                                         : CacheOutcome::kDominated;
  }

  // Incremental warm path: this version was produced by append/expire
  // and the parent version's FREQUENT listing is cached — recount it
  // over the delta instead of mining the whole window. The reseeded
  // listing lands in the cache under this version's FREQUENT key; a
  // non-FREQUENT query then derives its answer from it cross-task.
  if (result == nullptr && dataset.delta != nullptr) {
    ResultCacheKey frequent_key = key;
    frequent_key.task = MiningTask::kFrequent;
    frequent_key.k = 0;
    frequent_key.max_consequent = 0;
    frequent_key.min_confidence = 0.0;
    frequent_key.min_lift = 0.0;
    std::shared_ptr<CachedResult> reseeded =
        TryReseed(frequent_key, dataset);
    if (reseeded != nullptr) {
      cache_.Insert(frequent_key, reseeded);
      if (request.query.task == MiningTask::kFrequent) {
        result = std::move(reseeded);
      } else {
        result = cache_.Lookup(key).result;  // derive from the reseed
      }
      if (result != nullptr) {
        response.cache = CacheOutcome::kReseeded;
        reseeds_counter_->Increment();
      }
    }
  }

  if (result != nullptr) {
    // Served without mining: the elapsed time is cache derivation.
    response.derive_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      derive_start)
            .count();
  } else {
    // Mine with the sequential kernel: deterministic emission/output
    // order is the cache's correctness contract, and cross-query
    // parallelism already saturates the pool.
    FPM_ASSIGN_OR_RETURN(
        std::unique_ptr<Miner> miner,
        CreateMiner(request.algorithm, request.patterns, &cancel));

    // The seed threshold is planted here, not at Submit: it costs a
    // database pass, and a query the cache can answer never needs it.
    MiningQuery query = request.query;
    if (query.task == MiningTask::kTopK && query.topk_seed_support == 0) {
      query.topk_seed_support =
          TopKSeedThreshold(*dataset.database, query.k, query.min_support);
    }

    auto fresh = std::make_shared<CachedResult>();
    if (query.task == MiningTask::kRules) {
      FPM_ASSIGN_OR_RETURN(
          const MineStats stats,
          miner->MineRules(*dataset.database, query, &fresh->rules));
      fresh->num_results = stats.num_frequent;
      response.peak_bytes = stats.peak_structure_bytes;
    } else {
      CollectingSink sink;
      FPM_ASSIGN_OR_RETURN(
          const MineStats stats,
          miner->Mine(*dataset.database, query, &sink));
      fresh->itemsets = std::move(sink.mutable_results());
      fresh->num_results = stats.num_frequent;
      response.peak_bytes = stats.peak_structure_bytes;
    }
    fresh->total_weight = dataset.database->total_weight();
    fresh->bytes = ResultCache::EstimateResultBytes(*fresh);
    cache_.Insert(key, fresh);
    result = std::move(fresh);
  }

  response.num_frequent = result->num_results;
  if (!request.count_only) {
    response.itemsets = result->itemsets;
    response.rules = result->rules;
  }
  span.AddArg("num_results", response.num_frequent);
  span.AddArg("cache_hit",
              response.cache == CacheOutcome::kMiss ? 0 : 1);
  return response;
}

Result<MineResponse> MiningService::Execute(const MineRequest& request) {
  FPM_ASSIGN_OR_RETURN(std::shared_ptr<MineJob> job, Submit(request));
  job->Wait();
  return job->Take();
}

}  // namespace fpm
