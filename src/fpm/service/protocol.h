// Wire protocol of the fpmd daemon: newline-delimited JSON over a
// stream socket. One request object per line in; responses are one
// object per line, in request order — except "batch", which streams one
// tagged line per query in completion order.
//
// Protocol v2 requests:
//   {"op":"ping"}
//   {"op":"metrics"}                       -> the metrics snapshot
//   {"op":"metrics_text"}                  -> {"ok":true,"text":"..."}:
//       the metrics snapshot rendered in Prometheus text exposition
//       format (scrape via `fpm_client metrics-text`)
//   {"op":"stats"}                         -> live service state:
//       {"ok":true,"uptime_seconds":X,"registry":{...,"datasets":[...]},
//       "cache":{...},"scheduler":{...,"in_flight":[{"query_id":N,
//       "age_seconds":X},...]},"windows":[{"window_s":1,...},...],
//       "watchdog":{...}}
//   {"op":"shutdown"}                      -> daemon exits after reply
//   {"op":"open","dataset":"<path>"}       -> load (or hit) and return a
//       dataset handle: {"ok":true,"id":"ds-1","version":1,
//       "latest_version":1,"digest":"...","num_transactions":N,
//       "total_weight":N}. The id addresses the dataset in every other
//       op; reopening the same path returns the same id.
//   {"op":"append","id":"ds-1",
//    "transactions":[[1,2,5],...],         (required, non-empty)
//    "timestamps":[t0,...]}                (optional; len == transactions)
//       appends transactions as a new immutable dataset version (window
//       policy overflow expires in the same version) -> handle response
//       for the new version.
//   {"op":"expire","id":"ds-1","count":N}  -> expire the N oldest live
//       transactions as a new version; handle response.
//   {"op":"window","id":"ds-1",
//    "last_n":N,"last_seconds":X}          (>=1 of the two, 0 = unbounded)
//       installs a sliding-window policy; overflow expires immediately.
//       Handle response for the resulting latest version.
//   {"op":"dataset_info","id":"ds-1"}      -> {"ok":true,"id":...,
//       "path":...,"live_transactions":N,"window":{...},
//       "versions":[{"version":N,"digest":...,"num_transactions":N,
//       "appended_weight":N,"expired_weight":N},...]}
//   {"op":"query","dataset":"<path>","min_support":N,
//    "id":"ds-1",                           (alternative to "dataset")
//    "version":N,                           (with "id"; default latest)
//    "task":"frequent|closed|maximal|top_k|rules",  (default "frequent")
//    "k":N,                                 (top_k: required >= 1)
//    "min_confidence":X,                    (rules; default 0.5)
//    "min_lift":X,                          (rules; default 0)
//    "max_consequent":N,                    (rules; default 1)
//    "algorithm":"lcm|eclat|fpgrowth|apriori|hmine|bruteforce",
//    "patterns":"all|none",                 (default "all")
//    "priority":N,                          (default 0)
//    "timeout_s":X,                         (default none)
//    "count_only":bool,                     (default false)
//    "trace_id":"..."}                      (optional passthrough,
//                                            echoed in the response and
//                                            the query log)
//   {"op":"batch","queries":[{<query fields>},...]}
//       multiplexes N queries on one connection; each runs as its own
//       scheduler job and its response line streams back as soon as it
//       completes (no head-of-line blocking), tagged with "id" = the
//       query's index in the array. A malformed or rejected entry
//       yields an error line for that id only — the rest of the batch
//       proceeds (per-query error isolation). Exactly one line per
//       query, in completion order; the client counts lines.
//
// Cluster ops (fpmd --cluster; see DESIGN.md §19):
//   {"op":"query",...,"scatter":true}       opts the query into the
//       partitioned (SON) fan-out across replica owners instead of
//       route-to-owner; results come back canonically sorted. Ignored
//       by a non-clustered daemon.
//   {"op":"cluster_info","dataset":"<path>"} ("dataset" optional) ->
//       {"ok":true,"cluster":{"enabled":true,"self":...,"replicas":N,
//       "virtual_nodes":N,"peers":[{"endpoint":...,"healthy":...,
//       "self":...,"failures":N,"rtt_last_ms":X,"rtt_p50_ms":X,
//       "rtt_p99_ms":X,"datasets_owned":N},...],"counters":{...},
//       "placement":{"digest":...,"owners":[...]}}}; placement present
//       only when "dataset" was given. A non-clustered daemon answers
//       {"cluster":{"enabled":false},"ok":true}.
//   {"op":"cache_probe","digest":"...",<query fields minus dataset>}
//       asks whether this node's ResultCache can answer the query for
//       the given content digest without mining. Reply: miss ->
//       {"hit":false,"ok":true}; hit -> the full query response plus
//       "hit":true (query_id is 0 — probes are not scheduled queries).
//   {"op":"shard_query","mode":"execute|mine|count",<query fields>,
//    "partition":{"index":I,"count":K},      (mine/count)
//    "candidates":[[...],...]}               (count)
//       peer-to-peer sub-query op. "execute" runs the whole query
//       locally at boosted priority (route-to-owner forward); "mine"
//       runs SON phase 1 on partition I of K and replies
//       {"ok":true,"phase":"mine","candidates":[{"items":[...],
//       "support":N},...]}; "count" counts the candidate list over the
//       partition and replies {"counts":[...],"ok":true,
//       "phase":"count"}.
//
// v1 compatibility: {"op":"mine",...} (every field of "query" except
// the task family) still decodes, runs as task "frequent", and its
// response is byte-identical to protocol v1 — same keys, no "task".
//
// Responses always carry "ok". Success:
//   {"ok":true,...}   v1 mine adds: num_frequent, cache ("miss|hit|
//                     dominated"), digest, queue_ms, mine_ms, and —
//                     unless count_only — "itemsets":[{"items":[...],
//                     "support":N},...] in deterministic emission order.
//                     v2 query adds: task, num_results, cache (also
//                     "cross_task"), digest, queue_ms, mine_ms,
//                     query_id (the service-assigned request id, also
//                     on the query-log line and the service.mine span),
//                     trace_id (echoed when the request sent one), and
//                     "itemsets" as above or — for task "rules" —
//                     "rules":[{"antecedent":[...],"consequent":[...],
//                     "support":N,"confidence":X,"lift":X},...].
//                     Batch lines additionally carry "id".
// Failure:
//   {"ok":false,"error":{"code":"CANCELLED","message":"..."}}
//       (plus "id" inside a batch)
//
// Decode errors name the op and field being parsed, e.g.
//   op 'query': field 'min_support': missing or not a number >= 1
//   op 'batch': queries[2]: field 'dataset': missing or not a string
//
// The encode/decode layer lives here, separate from socket handling, so
// tests exercise it without a daemon.

#ifndef FPM_SERVICE_PROTOCOL_H_
#define FPM_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/dataset/versioned.h"
#include "fpm/service/json.h"
#include "fpm/service/service.h"

namespace fpm {

/// The decoded payload of a dataset op (open/append/expire/window/
/// dataset_info). Only the fields the op uses are populated.
struct DatasetOpRequest {
  std::string path;                     ///< open
  std::string id;                       ///< every op but open
  std::vector<Itemset> transactions;    ///< append
  std::vector<double> timestamps;       ///< append (optional)
  uint64_t count = 0;                   ///< expire
  WindowPolicy window;                  ///< window
};

/// The decoded payload of a cluster op (cluster_info/cache_probe/
/// shard_query). The query body itself rides in ServiceRequest::mine.
struct ClusterOpRequest {
  /// What a shard_query asks the peer to run.
  enum class ShardMode {
    kExecute,  ///< whole query, locally, at boosted priority
    kMine,     ///< SON phase 1 over one partition
    kCount,    ///< SON phase 2: count candidates over one partition
  };

  std::string path;                ///< cluster_info placement lookup
  std::string digest;              ///< cache_probe content digest
  ShardMode shard_mode = ShardMode::kExecute;
  uint32_t partition_index = 0;    ///< shard_query mine/count
  uint32_t partition_count = 1;    ///< shard_query mine/count
  std::vector<Itemset> candidates; ///< shard_query count
};

/// A decoded protocol request.
struct ServiceRequest {
  enum class Op {
    kPing,
    kMetrics,
    kMetricsText,
    kStats,
    kShutdown,
    kMine,
    kQuery,
    kBatch,
    kOpen,
    kAppend,
    kExpire,
    kWindow,
    kDatasetInfo,
    kClusterInfo,
    kCacheProbe,
    kShardQuery,
  };

  /// One entry of a batch. Entries that fail to decode carry the error
  /// in `status` and are answered with a per-id error line; the rest of
  /// the batch is unaffected.
  struct BatchEntry {
    Status status;
    MineRequest request;
  };

  Op op = Op::kPing;
  /// 1 for the "mine" compat shim, 2 for "query"/"batch" — selects the
  /// response encoding.
  int version = 1;
  MineRequest mine;               ///< kMine, kQuery, kCacheProbe, kShardQuery
  std::vector<BatchEntry> batch;  ///< populated for kBatch
  DatasetOpRequest dataset_op;    ///< populated for the dataset ops
  ClusterOpRequest cluster;       ///< populated for the cluster ops
};

/// A decoded cache_probe reply: `hit` says whether `response` is
/// populated (task/cache/itemsets/rules of the remote cache's answer).
struct CacheProbeReply {
  bool hit = false;
  MineResponse response;
};

/// Decodes one request line. InvalidArgument on malformed JSON, unknown
/// op, or bad field types; errors name the op and field. Algorithm
/// names follow ParseAlgorithm() (fpm/core/patterns.h), task names
/// ParseTask() (fpm/algo/query.h).
Result<ServiceRequest> DecodeRequest(const std::string& line);

/// Encodes a v1 mine success response (one line, no trailing newline).
/// Byte-identical to protocol v1 output for any v1-reachable response.
std::string EncodeMineResponse(const MineResponse& response);

/// Encodes a v2 query success response ("task", "num_results", and
/// "rules" for rules tasks).
std::string EncodeQueryResponse(const MineResponse& response);

/// v2 query response tagged with a batch query id.
std::string EncodeQueryResponseWithId(uint64_t id,
                                      const MineResponse& response);

/// Encodes a dataset handle response (open/append/expire/window):
/// id, version, latest_version, digest, parent_digest (non-base
/// versions only), num_transactions and total_weight of the version's
/// materialized database.
std::string EncodeHandleResponse(const DatasetHandle& handle);

/// Encodes a dataset_info response: id, path, live_transactions, the
/// window policy and the full version chain.
std::string EncodeDatasetInfoResponse(const DatasetInfo& info);

/// Encodes the "stats" response: uptime, registry (with per-dataset
/// rows), cache, scheduler (with in-flight jobs), the 1s/10s/60s
/// latency windows and the watchdog counters.
std::string EncodeStatsResponse(const ServiceStats& stats);

/// Stats response with an optional "cluster" section (the coordinator's
/// InfoJson); `cluster` may be nullptr for the non-clustered encoding.
std::string EncodeStatsResponse(const ServiceStats& stats,
                                const JsonValue* cluster);

// --- Cluster wire helpers (coordinator <-> peer) -------------------

/// Encodes a cache_probe request line for a peer: the query body of
/// `request` (task family, algorithm, patterns, ...) addressed by
/// content digest instead of a dataset path — the peer consults its
/// ResultCache without loading anything.
std::string EncodeCacheProbeRequest(const std::string& digest,
                                    const MineRequest& request);

/// Encodes a shard_query request line. `mode` "execute" forwards the
/// whole query; "mine"/"count" carry partition {index, count} and —
/// for count — the candidate itemsets.
std::string EncodeShardQueryRequest(const MineRequest& request,
                                    ClusterOpRequest::ShardMode mode,
                                    uint32_t partition_index,
                                    uint32_t partition_count,
                                    const std::vector<Itemset>& candidates);

/// Encodes a cache_probe reply: {"hit":false,"ok":true} on miss, the
/// full query response plus "hit":true on hit.
std::string EncodeCacheProbeResponse(bool hit, const MineResponse& response);

/// Encodes a shard_query mode "mine" reply (the shard's local frequent
/// itemsets, i.e. its candidate contributions).
std::string EncodeShardMineResponse(
    const std::vector<CollectingSink::Entry>& entries);

/// Encodes a shard_query mode "count" reply (per-candidate supports in
/// request candidate order).
std::string EncodeShardCountResponse(const std::vector<Support>& counts);

/// Decodes a peer's v2 query (or shard_query "execute") response line
/// back into a MineResponse. An {"ok":false,...} envelope becomes the
/// carried status (code parsed from the error's "code").
Result<MineResponse> DecodeQueryResponse(const std::string& line);

/// Decodes a peer's cache_probe reply.
Result<CacheProbeReply> DecodeCacheProbeResponse(const std::string& line);

/// Decodes a peer's shard_query "mine" reply.
Result<std::vector<CollectingSink::Entry>> DecodeShardMineResponse(
    const std::string& line);

/// Decodes a peer's shard_query "count" reply.
Result<std::vector<Support>> DecodeShardCountResponse(const std::string& line);

/// Encodes the "metrics_text" response: the Prometheus exposition text
/// as a JSON string field ({"ok":true,"text":"..."}).
std::string EncodeMetricsTextResponse(const std::string& text);

/// Encodes an error response from a non-OK status.
std::string EncodeError(const Status& status);

/// Error response tagged with a batch query id.
std::string EncodeErrorWithId(uint64_t id, const Status& status);

/// Encodes a bare {"ok":true} (ping/shutdown acknowledgements).
std::string EncodeOk();

}  // namespace fpm

#endif  // FPM_SERVICE_PROTOCOL_H_
