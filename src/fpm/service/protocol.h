// Wire protocol of the fpmd daemon: newline-delimited JSON over a
// stream socket. One request object per line in, one response object
// per line out, strictly in order.
//
// Requests:
//   {"op":"ping"}
//   {"op":"metrics"}                       -> the metrics snapshot
//   {"op":"shutdown"}                      -> daemon exits after reply
//   {"op":"mine","dataset":"<path>","min_support":N,
//    "algorithm":"lcm|eclat|fpgrowth|apriori|hmine|bruteforce",
//    "patterns":"all|none",                 (default "all")
//    "priority":N,                          (default 0)
//    "timeout_s":X,                         (default none)
//    "count_only":bool}                     (default false)
//
// Responses always carry "ok". Success:
//   {"ok":true,...}   mine adds: num_frequent, cache ("miss|hit|
//                     dominated"), digest, queue_ms, mine_ms, and —
//                     unless count_only — "itemsets":[{"items":[...],
//                     "support":N},...] in deterministic emission order.
// Failure:
//   {"ok":false,"error":{"code":"CANCELLED","message":"..."}}
//
// The encode/decode layer lives here, separate from socket handling, so
// tests exercise it without a daemon.

#ifndef FPM_SERVICE_PROTOCOL_H_
#define FPM_SERVICE_PROTOCOL_H_

#include <string>

#include "fpm/common/status.h"
#include "fpm/service/json.h"
#include "fpm/service/service.h"

namespace fpm {

/// A decoded protocol request.
struct ServiceRequest {
  enum class Op { kPing, kMetrics, kShutdown, kMine };
  Op op = Op::kPing;
  MineRequest mine;  ///< populated when op == kMine
};

/// Decodes one request line. InvalidArgument on malformed JSON, unknown
/// op, or bad field types. Algorithm names follow ParseAlgorithm()
/// (fpm/core/patterns.h).
Result<ServiceRequest> DecodeRequest(const std::string& line);

/// Encodes a mine success response (one line, no trailing newline).
std::string EncodeMineResponse(const MineResponse& response);

/// Encodes an error response from a non-OK status.
std::string EncodeError(const Status& status);

/// Encodes a bare {"ok":true} (ping/shutdown acknowledgements).
std::string EncodeOk();

}  // namespace fpm

#endif  // FPM_SERVICE_PROTOCOL_H_
