// Refcounted load-once dataset registry with an LRU byte budget.
//
// The service answers many queries against few datasets, so datasets
// are loaded once, held immutable behind shared_ptr<const Database>,
// and shared by every concurrent job that mines them. Entries are keyed
// by path; each carries a content digest (FNV-1a over the raw file
// bytes) that keys the result cache — two paths with identical bytes
// share cached results, and a file edited in place invalidates them.
//
// Concurrency: the first Get() for a path parses the file while holding
// a per-entry "loading" state (not the registry mutex), so concurrent
// Get()s for the same path wait on a condition variable instead of
// loading twice, and Get()s for other paths proceed unblocked.
//
// Eviction: when the resident bytes exceed the budget, least-recently-
// used entries are dropped — but only entries no job currently holds
// (use_count() == 1 under the registry mutex; jobs pin datasets by
// holding the shared_ptr in their handle). A pinned over-budget
// registry stays over budget until jobs release; eviction never yanks a
// database out from under a running mine.

#ifndef FPM_SERVICE_DATASET_REGISTRY_H_
#define FPM_SERVICE_DATASET_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

class Counter;
class Gauge;

/// A pinned dataset: holding the handle keeps the database resident.
struct DatasetHandle {
  std::shared_ptr<const Database> database;
  /// FNV-1a 64 of the file bytes, as 16 lowercase hex digits.
  std::string digest;
  size_t bytes = 0;  ///< resident heap bytes of the database
};

/// Registry statistics (a point-in-time copy).
struct DatasetRegistryStats {
  uint64_t loads = 0;      ///< files read and parsed
  uint64_t hits = 0;       ///< Get()s answered by a resident entry
  uint64_t evictions = 0;  ///< entries dropped by the LRU budget
  size_t resident_bytes = 0;
  size_t resident_entries = 0;
};

class DatasetRegistry {
 public:
  /// `budget_bytes` bounds resident database bytes (0 = unlimited).
  explicit DatasetRegistry(size_t budget_bytes = 0);

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Returns the dataset at `path`, loading it on first use. Blocks if
  /// another thread is currently loading the same path. IOError /
  /// InvalidArgument from the reader pass through (and are not cached:
  /// a later Get() retries).
  Result<DatasetHandle> Get(const std::string& path);

  DatasetRegistryStats stats() const;

  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    // Loading protocol: the loader inserts an Entry with loading=true,
    // releases the registry mutex, loads, then re-locks and publishes.
    bool loading = true;
    std::shared_ptr<const Database> database;
    std::string digest;
    size_t bytes = 0;
    uint64_t lru_seq = 0;
  };

  /// Drops LRU unpinned entries until under budget. Caller holds mu_.
  void EvictLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::map<std::string, Entry> entries_;
  uint64_t next_seq_ = 1;
  size_t resident_bytes_ = 0;
  uint64_t loads_ = 0;
  uint64_t hits_ = 0;
  uint64_t evictions_ = 0;

  // fpm.service.registry.* metrics (resolved once; no-ops when the
  // default registry is disabled).
  Counter* loads_counter_;
  Counter* hits_counter_;
  Counter* evictions_counter_;
  Gauge* bytes_gauge_;
};

/// FNV-1a 64 over `bytes`, rendered as 16 lowercase hex digits.
std::string ContentDigest(const std::string& bytes);

}  // namespace fpm

#endif  // FPM_SERVICE_DATASET_REGISTRY_H_
