// Refcounted load-once dataset registry with an LRU byte budget,
// versioned datasets and opaque handles.
//
// The service answers many queries against few datasets, so datasets
// are loaded once, wrapped in a VersionedDataset chain, and shared by
// every concurrent job that mines them. Every lookup mints an opaque
// DatasetHandle{id, version}: the id ("ds-<n>") is stable for the
// registry's lifetime, the version pins one immutable snapshot. Jobs
// address data only through handles — a job holding version v is
// untouched by appends that advance the chain to v+1 (the snapshot's
// shared_ptr keeps it resident).
//
// Addressing:
//   Open(path)        — load-or-hit by path; returns the latest handle.
//   Resolve(id, ver)  — by id; ver 0 = latest, else explicit pin
//                       (reproducible replays).
//   Get(path)         — the legacy path shim: identical to Open. v1
//                       wire responses and goldens depend on its digest
//                       being the FNV-1a of the raw file bytes; chained
//                       versions extend that digest space (versioned.h).
//
// Mutations (Append / Expire / SetWindow) are serialized under the
// registry mutex: ingestion batches are rare next to queries, and
// readers never wait on them for data — they hold snapshots.
//
// Eviction: when the resident bytes exceed the budget, least-recently-
// used entries are dropped — but only entries no job currently pins
// (use_count() == 1 for every version under the registry mutex) and
// only entries never mutated: an appended dataset's state exists
// nowhere else, so dropping it would lose data, while a pristine one
// reloads from its file. Evicting an entry retires its id — a later
// Open() of the path mints a fresh id, and stale ids resolve NotFound.
//
// Storage backends: Open() sniffs the file magic — packed files
// (fpm/dataset/packed.h) are memory-mapped instead of parsed, with the
// content digest taken from the packed header (identical to the FIMI
// digest the file was packed from, so caches are storage-agnostic).
// Only resident (malloc'd) bytes count against the eviction budget;
// mapped bytes are page-cache pages the OS already reclaims under
// pressure, so a pinned mapped dataset far larger than the budget is
// legal and never forces other entries out.

#ifndef FPM_SERVICE_DATASET_REGISTRY_H_
#define FPM_SERVICE_DATASET_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"
#include "fpm/dataset/versioned.h"

namespace fpm {

class Counter;
class Gauge;

/// A pinned dataset version: holding the handle keeps the snapshot
/// resident.
struct DatasetHandle {
  /// Opaque registry-scoped dataset id ("ds-<n>").
  std::string id;
  /// The pinned version (1-based).
  uint64_t version = 1;
  /// The chain head at mint time (== version when latest was asked).
  uint64_t latest_version = 1;
  std::shared_ptr<const Database> database;
  /// Version digest: FNV-1a of the file bytes for version 1, chained
  /// delta digest beyond (keys the result cache).
  std::string digest;
  /// Parent version's digest; empty for version 1.
  std::string parent_digest;
  /// Delta against the parent (null for version 1) — what incremental
  /// maintenance and cache reseeding consume.
  std::shared_ptr<const VersionDelta> delta;
  /// Total footprint (resident + mapped) of this version's database.
  size_t bytes = 0;
};

/// Point-in-time description of one dataset chain (dataset_info op).
struct DatasetInfo {
  std::string id;
  std::string path;
  /// Backend of the base database: "memory" | "packed".
  std::string storage = "memory";
  WindowPolicy window;
  uint64_t live_transactions = 0;
  struct Version {
    uint64_t number = 1;
    std::string digest;
    uint64_t num_transactions = 0;
    Support appended_weight = 0;
    Support expired_weight = 0;
  };
  std::vector<Version> versions;
};

/// Registry statistics (a point-in-time copy).
struct DatasetRegistryStats {
  uint64_t loads = 0;      ///< files read and parsed
  uint64_t hits = 0;       ///< lookups answered by a resident entry
  uint64_t appends = 0;    ///< mutation ops applied (append/expire/window)
  uint64_t evictions = 0;  ///< entries dropped by the LRU budget
  size_t resident_bytes = 0;
  /// File-mapping bytes across mapped (packed) entries; never counted
  /// against the eviction budget.
  size_t mapped_bytes = 0;
  size_t resident_entries = 0;
  /// One row per resident dataset (the stats op's registry listing).
  struct Dataset {
    std::string id;
    std::string path;
    /// Backend of the base database: "memory" | "packed".
    std::string storage = "memory";
    uint64_t versions = 0;
    uint64_t live_transactions = 0;
    size_t bytes = 0;        ///< resident heap bytes
    size_t mapped_bytes = 0; ///< file-mapping bytes (0 for heap entries)
    /// Versions some job currently holds a handle to (their snapshot
    /// shared_ptr has owners beyond the registry).
    uint64_t pinned_versions = 0;
    /// Content digest of the base version — what the cluster hash ring
    /// keys placement on.
    std::string digest;
  };
  std::vector<Dataset> datasets;
};

class DatasetRegistry {
 public:
  /// `budget_bytes` bounds resident database bytes (0 = unlimited).
  explicit DatasetRegistry(size_t budget_bytes = 0);

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Opens the dataset at `path`, loading it on first use, and returns
  /// a handle to the latest version. Blocks if another thread is
  /// currently loading the same path. IOError / InvalidArgument from
  /// the reader pass through (and are not cached: a later call
  /// retries).
  Result<DatasetHandle> Open(const std::string& path);

  /// Legacy path-addressed lookup — identical to Open().
  Result<DatasetHandle> Get(const std::string& path) { return Open(path); }

  /// Resolves a handle by id. `version` 0 pins the latest version; any
  /// other value pins that exact version (NotFound when the id is
  /// unknown or the version out of range).
  Result<DatasetHandle> Resolve(const std::string& id,
                                uint64_t version = 0);

  /// Appends transactions to the chain (see VersionedDataset::Append);
  /// returns the new latest handle.
  Result<DatasetHandle> Append(const std::string& id,
                               const std::vector<Itemset>& transactions,
                               const std::vector<double>& timestamps = {});

  /// Expires the `count` oldest live transactions; returns the new
  /// latest handle.
  Result<DatasetHandle> Expire(const std::string& id, uint64_t count);

  /// Installs a sliding-window policy (applies immediately if the live
  /// window already overflows it); returns the latest handle.
  Result<DatasetHandle> SetWindow(const std::string& id,
                                  const WindowPolicy& policy);

  /// Describes the chain: versions, window policy, per-version counts.
  Result<DatasetInfo> Info(const std::string& id) const;

  DatasetRegistryStats stats() const;

  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    // Loading protocol: the loader inserts an Entry with loading=true,
    // releases the registry mutex, loads, then re-locks and publishes.
    bool loading = true;
    std::string id;
    std::unique_ptr<VersionedDataset> dataset;
    bool mutated = false;  ///< ever appended/expired — eviction-exempt
    size_t bytes = 0;   ///< dataset->resident_bytes() at last update
    size_t mapped = 0;  ///< dataset->mapped_bytes() at last update
    uint64_t lru_seq = 0;
  };

  /// Mints a handle for `version` of `entry`'s chain. Caller holds mu_.
  DatasetHandle MakeHandleLocked(const Entry& entry,
                                 const DatasetVersion& version) const;

  /// Re-accounts `entry`'s bytes after a mutation. Caller holds mu_.
  void UpdateBytesLocked(Entry& entry);

  /// Finds the entry owning `id`, or null. Caller holds mu_.
  Entry* FindByIdLocked(const std::string& id);
  const Entry* FindByIdLocked(const std::string& id) const;

  /// Drops LRU unpinned, unmutated entries until under budget. Caller
  /// holds mu_.
  void EvictLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::map<std::string, Entry> entries_;      // by path
  std::map<std::string, std::string> id_to_path_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  size_t resident_bytes_ = 0;
  size_t mapped_bytes_ = 0;
  uint64_t loads_ = 0;
  uint64_t hits_ = 0;
  uint64_t appends_ = 0;
  uint64_t evictions_ = 0;

  // fpm.service.registry.* metrics (resolved once; no-ops when the
  // default registry is disabled).
  Counter* loads_counter_;
  Counter* hits_counter_;
  Counter* appends_counter_;
  Counter* evictions_counter_;
  Gauge* bytes_gauge_;
};

}  // namespace fpm

#endif  // FPM_SERVICE_DATASET_REGISTRY_H_
