// Stuck-job watchdog: a monitor that proves cooperative cancellation is
// actually draining.
//
// Every kernel checks its CancelToken at frame boundaries, so a
// deadline-armed job should finish (with DEADLINE_EXCEEDED) shortly
// after its deadline. A job still alive at `deadline_factor` times its
// deadline — or past the absolute bound, whichever applies — means the
// cooperative machinery is wedged (a kernel frame that never yields, a
// sink blocking on a dead client). The watchdog flags such jobs: once
// per job it writes an "event":"watchdog_stuck" line to the query log,
// bumps fpm.service.watchdog.flagged, and keeps the job counted in the
// fpm.service.watchdog.stuck gauge until it finally exits.
//
// The MiningService registers each job at submission (queue time counts
// against the deadline, exactly as CancelToken arms it) and unregisters
// it at completion. Sweeps run on a dedicated monitor thread started by
// Start(); Sweep() is public so tests can drive the clockless path
// deterministically.

#ifndef FPM_SERVICE_WATCHDOG_H_
#define FPM_SERVICE_WATCHDOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace fpm {

class Counter;
class Gauge;
class QueryLog;

struct WatchdogOptions {
  /// Flag a deadline-armed job once it has run `deadline_factor` times
  /// its deadline. <= 0 disables the relative bound.
  double deadline_factor = 3.0;
  /// Flag any job older than this many seconds, deadline or not.
  /// 0 disables the absolute bound.
  double absolute_seconds = 0.0;
  /// Monitor thread sweep period. <= 0 means Start() is a no-op (tests
  /// call Sweep() directly).
  double interval_seconds = 1.0;
  /// Stuck events are appended here (optional, not owned).
  QueryLog* query_log = nullptr;
};

struct WatchdogStats {
  uint64_t sweeps = 0;
  uint64_t flagged = 0;  ///< jobs ever flagged stuck
  size_t stuck_now = 0;  ///< flagged jobs still running
};

class StuckJobWatchdog {
 public:
  explicit StuckJobWatchdog(WatchdogOptions options);
  /// Stops the monitor thread (if started) and joins it.
  ~StuckJobWatchdog();

  StuckJobWatchdog(const StuckJobWatchdog&) = delete;
  StuckJobWatchdog& operator=(const StuckJobWatchdog&) = delete;

  /// Starts the monitor thread. Idempotent; a no-op when
  /// interval_seconds <= 0.
  void Start();

  /// Tracks a job from submission. `deadline_seconds` 0 = no deadline
  /// (only the absolute bound applies).
  void Register(uint64_t query_id, const std::string& task,
                double deadline_seconds);
  void Unregister(uint64_t query_id);

  /// One monitor pass over the active jobs; returns how many jobs were
  /// newly flagged. Called by the monitor thread and by tests.
  size_t Sweep();

  WatchdogStats stats() const;

 private:
  struct ActiveJob {
    std::string task;
    std::chrono::steady_clock::time_point start;
    double deadline_seconds = 0.0;
    bool flagged = false;
  };

  void MonitorLoop();

  const WatchdogOptions options_;
  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread monitor_;
  std::map<uint64_t, ActiveJob> active_;  // by query_id
  uint64_t sweeps_ = 0;
  uint64_t flagged_ = 0;

  // fpm.service.watchdog.* metrics.
  Counter* checks_counter_;
  Counter* flagged_counter_;
  Gauge* stuck_gauge_;
};

}  // namespace fpm

#endif  // FPM_SERVICE_WATCHDOG_H_
