#include "fpm/service/cost_model.h"

#include <algorithm>
#include <vector>

namespace fpm {

CostEstimate EstimateMiningCost(const Database& db, Support min_support) {
  CostEstimate est;
  const std::vector<Support>& freq = db.item_frequencies();
  for (Support f : freq) {
    if (f >= min_support) ++est.num_frequent_items;
  }
  if (est.num_frequent_items == 0) return est;

  // Weighted histogram over per-transaction frequent-item counts n_t.
  // hist[n] = total weight of transactions with exactly n frequent items.
  std::vector<double> hist;
  size_t max_n = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    size_t n = 0;
    for (Item it : db.transaction(t)) {
      if (freq[it] >= min_support) ++n;
    }
    if (n == 0) continue;
    if (n >= hist.size()) hist.resize(n + 1, 0.0);
    hist[n] += static_cast<double>(db.weight(t));
    max_n = std::max(max_n, n);
  }
  if (max_n == 0) return est;

  // L: largest k with >= min_support transaction weight having n_t >= k.
  // Walk the histogram from long transactions down, accumulating the
  // suffix weight.
  double suffix_weight = 0.0;
  uint32_t depth_bound = 0;
  for (size_t n = max_n; n >= 1; --n) {
    if (n < hist.size()) suffix_weight += hist[n];
    if (suffix_weight >= static_cast<double>(min_support)) {
      depth_bound = static_cast<uint32_t>(n);
      break;
    }
  }
  est.max_itemset_size = depth_bound;
  if (depth_bound == 0) return est;

  // sum_{k=1..L} sum_n hist[n] * C(n, k) / min_support. Binomials are
  // built per transaction length by the multiplicative recurrence
  // C(n, k) = C(n, k-1) * (n-k+1)/k, saturating once the total is
  // already unbounded — minsup 1 on a wide transaction overflows any
  // fixed-width integer, which is exactly the query this must flag.
  double total = 0.0;
  for (size_t n = 1; n < hist.size(); ++n) {
    if (hist[n] == 0.0) continue;
    double binom = 1.0;  // C(n, 0)
    double row_sum = 0.0;
    const uint32_t k_max = std::min<uint32_t>(depth_bound,
                                              static_cast<uint32_t>(n));
    for (uint32_t k = 1; k <= k_max; ++k) {
      binom *= static_cast<double>(n - k + 1) / static_cast<double>(k);
      row_sum += binom;
      if (row_sum >= CostEstimate::kUnbounded) break;
    }
    total += hist[n] * row_sum;
    if (total >= CostEstimate::kUnbounded) {
      est.max_frequent_itemsets = CostEstimate::kUnbounded;
      return est;
    }
  }
  est.max_frequent_itemsets = total / static_cast<double>(min_support);
  return est;
}

}  // namespace fpm
