#include "fpm/service/cost_model.h"

#include <algorithm>
#include <span>
#include <vector>

namespace fpm {
namespace {

/// Weighted histogram over per-transaction frequent-item counts n_t at
/// `min_support`: hist[n] = total weight of transactions with exactly
/// n frequent items. One full database pass.
std::vector<double> FrequentLengthHistogram(const Database& db,
                                            Support min_support) {
  const std::span<const Support> freq = db.item_frequencies();
  std::vector<double> hist;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    size_t n = 0;
    for (Item it : db.transaction(t)) {
      if (freq[it] >= min_support) ++n;
    }
    if (n == 0) continue;
    if (n >= hist.size()) hist.resize(n + 1, 0.0);
    hist[n] += static_cast<double>(db.weight(t));
  }
  return hist;
}

/// L: largest k with >= min_support transaction weight having n_t >= k.
/// Walk the histogram from long transactions down, accumulating the
/// suffix weight.
uint32_t DepthBound(const std::vector<double>& hist, Support min_support) {
  if (hist.empty()) return 0;
  double suffix_weight = 0.0;
  for (size_t n = hist.size() - 1; n >= 1; --n) {
    suffix_weight += hist[n];
    if (suffix_weight >= static_cast<double>(min_support)) {
      return static_cast<uint32_t>(n);
    }
  }
  return 0;
}

/// sum_{k=1..L} sum_n hist[n] * C(n, k) / min_support. Binomials are
/// built per transaction length by the multiplicative recurrence
/// C(n, k) = C(n, k-1) * (n-k+1)/k, saturating once the total is
/// already unbounded — minsup 1 on a wide transaction overflows any
/// fixed-width integer, which is exactly the query this must flag.
double ItemsetCountBound(const std::vector<double>& hist,
                         Support min_support) {
  const uint32_t depth_bound = DepthBound(hist, min_support);
  if (depth_bound == 0) return 0.0;
  double total = 0.0;
  for (size_t n = 1; n < hist.size(); ++n) {
    if (hist[n] == 0.0) continue;
    double binom = 1.0;  // C(n, 0)
    double row_sum = 0.0;
    const uint32_t k_max = std::min<uint32_t>(depth_bound,
                                              static_cast<uint32_t>(n));
    for (uint32_t k = 1; k <= k_max; ++k) {
      binom *= static_cast<double>(n - k + 1) / static_cast<double>(k);
      row_sum += binom;
      if (row_sum >= CostEstimate::kUnbounded) break;
    }
    total += hist[n] * row_sum;
    if (total >= CostEstimate::kUnbounded) return CostEstimate::kUnbounded;
  }
  return total / static_cast<double>(min_support);
}

}  // namespace

CostEstimate EstimateMiningCost(const Database& db, Support min_support) {
  CostEstimate est;
  const std::span<const Support> freq = db.item_frequencies();
  for (Support f : freq) {
    if (f >= min_support) ++est.num_frequent_items;
  }
  if (est.num_frequent_items == 0) return est;

  const std::vector<double> hist = FrequentLengthHistogram(db, min_support);
  est.max_itemset_size = DepthBound(hist, min_support);
  if (est.max_itemset_size == 0) return est;
  est.max_frequent_itemsets = ItemsetCountBound(hist, min_support);
  return est;
}

Support TopKSeedThreshold(const Database& db, uint64_t k, Support floor) {
  if (floor < 1) floor = 1;
  const double want = static_cast<double>(k);
  // The histogram is built once, at the floor. Probing a threshold
  // t > floor against it over-counts (items frequent at the floor but
  // not at t stay in), so the probe is a looser-but-still-valid upper
  // bound, monotone non-increasing in t — the binary search stays
  // correct and the seed errs high, which the top-k driver repairs by
  // halving. One database pass instead of one per probe.
  const std::vector<double> hist = FrequentLengthHistogram(db, floor);
  if (ItemsetCountBound(hist, floor) < want) {
    return floor;
  }
  // The bound is monotone non-increasing in the threshold: binary
  // search for the largest t whose bound still reaches k. total_weight
  // caps any useful threshold (no itemset's support exceeds it).
  Support lo = floor;                 // bound(lo) >= k, invariant
  Support hi = db.total_weight() + 1; // bound(hi) == 0 < k
  while (hi - lo > 1) {
    const Support mid = lo + (hi - lo) / 2;
    if (ItemsetCountBound(hist, mid) >= want) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace fpm
