// Long-lived mining query service: the embedding layer the fpmd daemon
// (examples/fpmd.cpp) and in-process callers sit on.
//
// A MiningService owns a ThreadPool, a DatasetRegistry (load-once
// refcounted datasets under an LRU byte budget), a ResultCache (exact
// and support-dominance reuse) and a JobScheduler (priorities,
// admission control, backpressure, deadlines). One request flows:
//
//   Submit(request)
//     -> registry.Get(path)            pin the dataset (load once)
//     -> cost model admission check    reject provably enormous answers
//     -> scheduler.Submit              backpressure at max_queue_depth
//   ...job runs on a pool worker...
//     -> cache.Lookup                  exact or dominance hit: no mining
//     -> Mine() with the job's CancelToken (deadline / explicit cancel)
//     -> cache.Insert
//
// Every request carries a CancelToken. The deadline is armed at
// submission (queue time counts against it); RequestCancel() — e.g. on
// client disconnect — stops an in-flight mine at the next kernel frame
// boundary. Results are deterministic and byte-identical to a direct
// sequential Mine() with a CollectingSink: the service mines each job
// with the sequential kernel (cross-query parallelism comes from the
// scheduler) and caches the exact emission order.
//
// Instrumentation: fpm.service.* counters/gauges via the default
// MetricsRegistry and a "service.mine" span per request via the default
// Tracer (both off unless enabled by the embedder).

#ifndef FPM_SERVICE_SERVICE_H_
#define FPM_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/common/cancel.h"
#include "fpm/common/status.h"
#include "fpm/core/mine.h"
#include "fpm/obs/windowed.h"
#include "fpm/parallel/thread_pool.h"
#include "fpm/service/dataset_registry.h"
#include "fpm/service/job_scheduler.h"
#include "fpm/service/result_cache.h"
#include "fpm/service/watchdog.h"

namespace fpm {

class Counter;
class Histogram;
class QueryLog;

/// One mining request: the MiningQuery (task + thresholds) plus the
/// service-level envelope (dataset, algorithm, scheduling).
struct MineRequest {
  std::string dataset_path;  ///< registry key; loaded on first use
  /// Handle addressing (preferred): when set, the dataset is resolved
  /// by registry id instead of path. `dataset_version` 0 = latest at
  /// submission; nonzero pins an exact version for reproducible
  /// replays.
  std::string dataset_id;
  uint64_t dataset_version = 0;
  Algorithm algorithm = Algorithm::kLcm;
  /// Requested patterns; the effective subset (Table 4) is applied and
  /// used for cache keying.
  PatternSet patterns;
  /// What to mine: task, min_support and per-task parameters.
  MiningQuery query;
  /// Higher runs first; FIFO within a priority.
  int priority = 0;
  /// Seconds until the job's deadline, counted from submission
  /// (queueing included). 0 = no deadline.
  double timeout_seconds = 0.0;
  /// When true the response carries counts only, no itemsets/rules —
  /// cheaper to transport; the result is still cached in full.
  bool count_only = false;
  /// Cluster-mode opt-in (v2 "query" only): fan the mine out across the
  /// dataset's replica owners with the partitioned (SON) merge instead
  /// of routing to one owner. Results come back in canonical sorted
  /// order (a documented deviation from kernel emission order — see
  /// fpm/cluster/shard_exec.h). Ignored by a non-clustered daemon.
  bool scatter = false;
  /// Request-scoped observability. `query_id` 0 (the norm) lets Submit
  /// assign the next monotonic id; the daemon pre-allocates via
  /// AllocateQueryId() so even rejected requests are logged under a
  /// unique id. `trace_id` is an opaque client-supplied passthrough for
  /// cross-system correlation; `op` labels the protocol verb in the
  /// query log ("mine" | "query" | "batch" | ...).
  uint64_t query_id = 0;
  std::string trace_id;
  std::string op;
};

/// How a response was produced.
enum class CacheOutcome {
  kMiss,       ///< mined fresh
  kExact,      ///< replayed an exact cache entry
  kDominated,  ///< derived from a same-task lower-threshold entry
  kCrossTask,  ///< derived from another task's cache entry
  kReseeded,   ///< recounted a parent version's listing over the delta
};

const char* CacheOutcomeName(CacheOutcome outcome);

/// Inverse of CacheOutcomeName — what the cluster coordinator uses to
/// interpret a peer's response. InvalidArgument on unknown names.
Result<CacheOutcome> ParseCacheOutcome(const std::string& name);

struct MineResponse {
  MiningTask task = MiningTask::kFrequent;
  /// Number of result entries: itemsets for the itemset tasks, rules
  /// for kRules. (The name predates the task family; wire compat keeps
  /// it.)
  uint64_t num_frequent = 0;
  /// Itemset-task results, in the task's deterministic order (kFrequent:
  /// kernel emission order; kClosed/kMaximal: canonical; kTopK: support
  /// descending). Empty when count_only was requested or task == kRules.
  std::vector<CollectingSink::Entry> itemsets;
  /// kRules results in RuleOutranks order; empty when count_only.
  std::vector<AssociationRule> rules;
  CacheOutcome cache = CacheOutcome::kMiss;
  std::string dataset_digest;
  double queue_seconds = 0.0;   ///< submission -> job start
  double mine_seconds = 0.0;    ///< job start -> completion
  double derive_seconds = 0.0;  ///< cache lookup/derivation/reseed time
  uint64_t peak_bytes = 0;      ///< kernel peak structure bytes (miss only)
  uint64_t query_id = 0;        ///< the request's service-assigned id
  std::string trace_id;         ///< echoed client passthrough
  /// Cluster mode: the peer endpoint(s) that produced the result —
  /// empty when served locally. Encoded as "peer" in v2 responses.
  std::string served_by;
  /// Cluster scatter: number of shard owners that participated (0 for
  /// every non-scatter response). Encoded as "shards" when nonzero.
  uint32_t shard_count = 0;
};

/// Handle to a submitted job. Thread-safe; holding it keeps the result
/// (and the job's CancelToken) alive.
class MineJob {
 public:
  /// True once the job finished (any outcome).
  bool done() const;

  /// Blocks until done or `timeout` elapses; returns done().
  bool WaitFor(std::chrono::milliseconds timeout) const;

  /// Blocks until done.
  void Wait() const;

  /// Requests cooperative cancellation (client went away, operator
  /// abort). The job finishes with CANCELLED unless it already
  /// completed.
  void Cancel();

  /// The job's outcome. Must only be called after done(); moves the
  /// response out on first call.
  Result<MineResponse> Take();

  /// The service-assigned query id (also in the response and the query
  /// log).
  uint64_t query_id() const { return query_id_; }

 private:
  friend class MiningService;
  MineJob() = default;

  uint64_t query_id_ = 0;
  CancelToken cancel_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  Result<MineResponse> result_{Status::Internal("job not finished")};
};

/// One sliding window's latency/QPS aggregate (stats op).
struct ServiceWindowStats {
  uint64_t window_seconds = 0;
  uint64_t count = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Point-in-time view of the whole service (the "stats" protocol op).
struct ServiceStats {
  double uptime_seconds = 0.0;
  DatasetRegistryStats registry;
  ResultCacheStats cache;
  JobSchedulerStats scheduler;
  std::vector<ServiceWindowStats> windows;  ///< 1s / 10s / 60s
  WatchdogStats watchdog;
};

class MiningService {
 public:
  struct Options {
    /// Pool worker count; 0 = hardware concurrency.
    uint32_t num_threads = 0;
    /// DatasetRegistry byte budget (0 = unlimited).
    size_t dataset_budget_bytes = 0;
    /// ResultCache byte budget (0 = unlimited).
    size_t cache_budget_bytes = 0;
    /// JobScheduler backpressure bound.
    size_t max_queue_depth = 64;
    /// Admission bound: reject queries whose Geerts-style itemset upper
    /// bound (fpm/service/cost_model.h) exceeds this. 0 = no admission
    /// check.
    double max_estimated_itemsets = 0.0;
    /// Structured query log sink (optional, not owned; must outlive the
    /// service). Completion, rejection and watchdog entries land here.
    QueryLog* query_log = nullptr;
    /// Stuck-job watchdog tuning (see fpm/service/watchdog.h). The
    /// monitor thread starts with the service; interval <= 0 disables
    /// it (stats()/Sweep() still work).
    double watchdog_deadline_factor = 3.0;
    double watchdog_absolute_seconds = 0.0;
    double watchdog_interval_seconds = 1.0;
  };

  explicit MiningService(Options options);

  /// Drains in-flight jobs.
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  /// Validates, pins the dataset, checks admission, and queues the job.
  /// Errors surfaced here (NotFound/IOError dataset, InvalidArgument,
  /// ResourceExhausted from admission or backpressure) mean the job was
  /// never queued.
  Result<std::shared_ptr<MineJob>> Submit(const MineRequest& request);

  /// Blocking convenience: Submit + Wait + Take.
  Result<MineResponse> Execute(const MineRequest& request);

  /// Reserves the next monotonic query id. Submit() calls this when the
  /// request carries none; the daemon pre-allocates so error responses
  /// and log lines share the id.
  uint64_t AllocateQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Everything the "stats" protocol op reports: uptime, registry,
  /// cache, scheduler (with in-flight jobs), 1s/10s/60s latency
  /// windows, watchdog.
  ServiceStats Stats() const;

  /// Test hook: runs inside every job, after the watchdog considers it
  /// running and before any mining — a blocking hook simulates a stuck
  /// job (the "slow sink" failure the watchdog exists for).
  void set_mine_hook_for_test(std::function<void()> hook) {
    mine_hook_for_test_ = std::move(hook);
  }

  const DatasetRegistry& registry() const { return registry_; }
  /// Mutable registry access for the dataset ops (open / append /
  /// expire / window / dataset_info) the daemon forwards.
  DatasetRegistry& registry() { return registry_; }
  const ResultCache& cache() const { return cache_; }
  /// Mutable cache access for the cluster "cache_probe" op: a remote
  /// coordinator's lookup walks the same dominance/cross-task
  /// derivation matrix a local query would (Lookup mutates LRU state
  /// and memoizes derivations, hence non-const).
  ResultCache& cache() { return cache_; }
  const JobScheduler& scheduler() const { return scheduler_; }
  const StuckJobWatchdog& watchdog() const { return watchdog_; }
  StuckJobWatchdog& watchdog() { return watchdog_; }

 private:
  /// The job body: cache lookup, mine, cache fill.
  Result<MineResponse> RunJob(const MineRequest& request,
                              const DatasetHandle& dataset,
                              const CancelToken& cancel);

  /// Appends the request's query-log line (completion or rejection).
  void LogQuery(const MineRequest& request, const DatasetHandle* dataset,
                const Result<MineResponse>& result, double queue_seconds,
                double mine_seconds);

  /// The incremental warm path for a non-base dataset version: finds a
  /// FREQUENT listing cached for the parent version at a threshold
  /// <= S - appended_weight (a complete candidate border for the child
  /// at S), recounts only delta-touched candidates, filters to S and
  /// canonicalizes. Returns null when no eligible seed exists. The
  /// result is inserted under the child's FREQUENT key by the caller.
  std::shared_ptr<CachedResult> TryReseed(const ResultCacheKey& frequent_key,
                                          const DatasetHandle& dataset);

  static uint32_t ResolveThreads(uint32_t requested);

  Options options_;
  ThreadPool pool_;
  DatasetRegistry registry_;
  ResultCache cache_;
  JobScheduler scheduler_;
  StuckJobWatchdog watchdog_;
  QueryLog* query_log_;  // may be null
  WindowedHistogram latency_window_;
  std::atomic<uint64_t> next_query_id_{1};
  const std::chrono::steady_clock::time_point start_time_;
  std::function<void()> mine_hook_for_test_;

  // fpm.service.* request metrics.
  Counter* requests_counter_;
  Counter* admission_rejects_counter_;
  Counter* cancelled_counter_;
  Counter* deadline_counter_;
  Histogram* mine_ms_histogram_;
  // fpm.service.cache.reseed* — the incremental warm path.
  Counter* reseeds_counter_;
  Counter* reseed_candidates_counter_;
  Counter* reseed_recounted_counter_;
  // fpm.service.tasks.<task>, indexed by MiningTask.
  Counter* task_counters_[kNumMiningTasks];
};

}  // namespace fpm

#endif  // FPM_SERVICE_SERVICE_H_
