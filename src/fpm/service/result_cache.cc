#include "fpm/service/result_cache.h"

#include <algorithm>
#include <utility>

#include "fpm/algo/postprocess.h"
#include "fpm/algo/rules.h"
#include "fpm/obs/metrics.h"

namespace fpm {
namespace {

// Entries of `source` with support >= min_support, order preserved.
std::vector<CollectingSink::Entry> FilterBySupport(
    const std::vector<CollectingSink::Entry>& source, Support min_support) {
  std::vector<CollectingSink::Entry> kept;
  for (const CollectingSink::Entry& e : source) {
    if (e.second >= min_support) kept.push_back(e);
  }
  return kept;
}

// The kTopK answer ordering (matches topk.cc): support descending,
// canonical itemset ascending within equal support.
bool TopKOutranks(const CollectingSink::Entry& a,
                  const CollectingSink::Entry& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

// A FREQUENT listing is kernel emission order; the closed/maximal
// post-filters need canonical order.
std::vector<CollectingSink::Entry> Canonicalized(
    std::vector<CollectingSink::Entry> entries) {
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace

bool SupportsDominanceReuse(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLcm:
    case Algorithm::kEclat:
      return true;
    default:
      return false;
  }
}

ResultCacheKey ResultCacheKey::ForQuery(std::string digest,
                                        Algorithm algorithm,
                                        uint8_t pattern_bits,
                                        const MiningQuery& query) {
  ResultCacheKey key;
  key.digest = std::move(digest);
  key.algorithm = algorithm;
  key.pattern_bits = pattern_bits;
  key.task = query.task;
  key.min_support = query.min_support;
  if (query.task == MiningTask::kTopK) key.k = query.k;
  if (query.task == MiningTask::kRules) {
    key.max_consequent = query.max_consequent;
    key.min_confidence = query.min_confidence;
    key.min_lift = query.min_lift;
  }
  return key;
}

ResultCache::ResultCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {
  MetricsRegistry& m = MetricsRegistry::Default();
  hits_counter_ = m.GetCounter("fpm.service.cache.hits");
  dominated_counter_ = m.GetCounter("fpm.service.cache.dominated_hits");
  cross_task_counter_ = m.GetCounter("fpm.service.cache.cross_task_hits");
  misses_counter_ = m.GetCounter("fpm.service.cache.misses");
  evictions_counter_ = m.GetCounter("fpm.service.cache.evictions");
  bytes_gauge_ = m.GetGauge("fpm.service.cache.bytes");
}

size_t ResultCache::EstimateBytes(
    const std::vector<CollectingSink::Entry>& v) {
  size_t bytes = sizeof(CachedResult) + v.capacity() * sizeof(v[0]);
  for (const CollectingSink::Entry& e : v) {
    bytes += e.first.capacity() * sizeof(Item);
  }
  return bytes;
}

size_t ResultCache::EstimateResultBytes(const CachedResult& result) {
  size_t bytes = EstimateBytes(result.itemsets);
  bytes += result.rules.capacity() * sizeof(AssociationRule);
  for (const AssociationRule& r : result.rules) {
    bytes += (r.antecedent.capacity() + r.consequent.capacity()) *
             sizeof(Item);
  }
  return bytes;
}

ResultCache::EntryMap::iterator ResultCache::FindBestAtOrBelowLocked(
    const ResultCacheKey& probe) {
  // Same-configuration entries sort adjacently with min_support
  // ascending last, so the entry just before upper_bound(probe) is the
  // highest threshold <= probe's — the closest dominating source, with
  // the fewest surplus entries to filter.
  auto ub = entries_.upper_bound(probe);
  if (ub == entries_.begin()) return entries_.end();
  auto prev = std::prev(ub);
  if (!prev->first.SameConfig(probe)) return entries_.end();
  return prev;
}

std::shared_ptr<CachedResult> ResultCache::DeriveLocked(
    const ResultCacheKey& key, MiningTask* source_task) {
  // Probe key for a potential source entry of task `t` in the same
  // (digest, algorithm, patterns) configuration, with the parameters
  // that task ignores zeroed — mirroring ForQuery.
  const auto probe = [&key](MiningTask t) {
    ResultCacheKey p = key;
    p.task = t;
    if (t != MiningTask::kTopK) p.k = 0;
    if (t != MiningTask::kRules) {
      p.max_consequent = 0;
      p.min_confidence = 0.0;
      p.min_lift = 0.0;
    }
    return p;
  };
  const auto touch = [this](EntryMap::iterator it) {
    it->second.lru_seq = next_seq_++;
    return it->second.result;
  };
  const Support m = key.min_support;

  auto derived = std::make_shared<CachedResult>();
  switch (key.task) {
    case MiningTask::kFrequent: {
      // Emission order must survive the filter — algorithm-gated.
      if (!SupportsDominanceReuse(key.algorithm)) return nullptr;
      auto it = FindBestAtOrBelowLocked(key);
      if (it == entries_.end()) return nullptr;
      auto source = touch(it);
      derived->itemsets = FilterBySupport(source->itemsets, m);
      derived->total_weight = source->total_weight;
      *source_task = MiningTask::kFrequent;
      break;
    }
    case MiningTask::kClosed: {
      // Closedness is threshold-independent: closed@s filtered to
      // support >= m is exactly closed@m, still canonical.
      if (auto it = FindBestAtOrBelowLocked(probe(MiningTask::kClosed));
          it != entries_.end()) {
        auto source = touch(it);
        derived->itemsets = FilterBySupport(source->itemsets, m);
        derived->total_weight = source->total_weight;
        *source_task = MiningTask::kClosed;
        break;
      }
      auto it = FindBestAtOrBelowLocked(probe(MiningTask::kFrequent));
      if (it == entries_.end()) return nullptr;
      auto source = touch(it);
      derived->itemsets =
          FilterClosed(Canonicalized(FilterBySupport(source->itemsets, m)));
      derived->total_weight = source->total_weight;
      *source_task = MiningTask::kFrequent;
      break;
    }
    case MiningTask::kMaximal: {
      // Never maximal <- maximal: maximality depends on the threshold.
      if (auto it = FindBestAtOrBelowLocked(probe(MiningTask::kClosed));
          it != entries_.end()) {
        auto source = touch(it);
        derived->itemsets = FilterMaximalFromClosed(
            FilterBySupport(source->itemsets, m));
        derived->total_weight = source->total_weight;
        *source_task = MiningTask::kClosed;
        break;
      }
      auto it = FindBestAtOrBelowLocked(probe(MiningTask::kFrequent));
      if (it == entries_.end()) return nullptr;
      auto source = touch(it);
      derived->itemsets =
          FilterMaximal(Canonicalized(FilterBySupport(source->itemsets, m)));
      derived->total_weight = source->total_weight;
      *source_task = MiningTask::kFrequent;
      break;
    }
    case MiningTask::kTopK: {
      // Any FREQUENT listing at s <= floor answers (complete at the
      // floor after filtering). One at s > floor also does when it
      // holds >= k entries: everything it misses has support < s <= the
      // k-th best. Walk the frequent configuration ascending and keep
      // the highest valid threshold — the smallest listing to rank.
      const ResultCacheKey freq = probe(MiningTask::kFrequent);
      ResultCacheKey range_start = freq;
      range_start.min_support = 0;
      EntryMap::iterator best = entries_.end();
      for (auto it = entries_.lower_bound(range_start);
           it != entries_.end() && it->first.SameConfig(freq); ++it) {
        if (it->first.min_support <= m ||
            it->second.result->itemsets.size() >= key.k) {
          best = it;
        }
      }
      if (best == entries_.end()) return nullptr;
      auto source = touch(best);
      derived->itemsets = FilterBySupport(source->itemsets, m);
      std::sort(derived->itemsets.begin(), derived->itemsets.end(),
                TopKOutranks);
      if (derived->itemsets.size() > key.k) {
        derived->itemsets.resize(static_cast<size_t>(key.k));
      }
      derived->total_weight = source->total_weight;
      *source_task = MiningTask::kFrequent;
      break;
    }
    case MiningTask::kRules: {
      // Subset supports never depend on the threshold, so rules@m is
      // exactly rules@s restricted to itemset_support >= m.
      if (auto it = FindBestAtOrBelowLocked(key); it != entries_.end()) {
        auto source = touch(it);
        for (const AssociationRule& r : source->rules) {
          if (r.itemset_support >= m) derived->rules.push_back(r);
        }
        derived->total_weight = source->total_weight;
        *source_task = MiningTask::kRules;
        break;
      }
      RuleOptions options;
      options.min_confidence = key.min_confidence;
      options.min_lift = key.min_lift;
      options.max_consequent = key.max_consequent;
      std::vector<CollectingSink::Entry> closed;
      Support total_weight = 0;
      MiningTask from = MiningTask::kClosed;
      if (auto it = FindBestAtOrBelowLocked(probe(MiningTask::kClosed));
          it != entries_.end()) {
        auto source = touch(it);
        closed = FilterBySupport(source->itemsets, m);
        total_weight = source->total_weight;
        from = MiningTask::kClosed;
      } else if (auto fit =
                     FindBestAtOrBelowLocked(probe(MiningTask::kFrequent));
                 fit != entries_.end()) {
        auto source = touch(fit);
        closed = FilterClosed(
            Canonicalized(FilterBySupport(source->itemsets, m)));
        total_weight = source->total_weight;
        from = MiningTask::kFrequent;
      } else {
        return nullptr;
      }
      Result<std::vector<AssociationRule>> rules =
          GenerateRulesFromClosed(closed, total_weight, options);
      // A derivation failure (defensive: the filtered listing should
      // always be complete) falls back to a fresh mine.
      if (!rules.ok()) return nullptr;
      derived->rules = std::move(rules.value());
      derived->total_weight = total_weight;
      *source_task = from;
      break;
    }
  }

  derived->num_results = key.task == MiningTask::kRules
                             ? derived->rules.size()
                             : derived->itemsets.size();
  derived->itemsets.shrink_to_fit();
  derived->rules.shrink_to_fit();
  derived->bytes = EstimateResultBytes(*derived);
  return derived;
}

ResultCacheLookup ResultCache::Lookup(const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheLookup out;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.lru_seq = next_seq_++;
    out.result = it->second.result;
    out.exact = true;
    ++stats_.hits;
    hits_counter_->Increment();
    return out;
  }

  MiningTask source_task = key.task;
  std::shared_ptr<CachedResult> derived = DeriveLocked(key, &source_task);
  if (derived != nullptr) {
    out.result = derived;
    if (source_task == key.task) {
      out.dominated = true;
      ++stats_.dominated_hits;
      dominated_counter_->Increment();
    } else {
      out.cross_task = true;
      ++stats_.cross_task_hits;
      cross_task_counter_->Increment();
    }
    // Memoize under the queried key so repeats are exact hits.
    InsertLocked(key, std::move(derived));
    return out;
  }

  ++stats_.misses;
  misses_counter_->Increment();
  return out;
}

ReseedSource ResultCache::FindSeed(const ResultCacheKey& key,
                                   const std::string& parent_digest,
                                   Support max_source) {
  std::lock_guard<std::mutex> lock(mu_);
  ReseedSource out;
  ResultCacheKey probe = key;
  probe.digest = parent_digest;
  probe.min_support = max_source;
  auto it = FindBestAtOrBelowLocked(probe);
  if (it == entries_.end()) return out;
  it->second.lru_seq = next_seq_++;
  out.result = it->second.result;
  out.min_support = it->first.min_support;
  return out;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         std::shared_ptr<const CachedResult> result) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(result));
}

void ResultCache::InsertLocked(const ResultCacheKey& key,
                               std::shared_ptr<const CachedResult> result) {
  Entry& entry = entries_[key];
  if (entry.result != nullptr) resident_bytes_ -= entry.result->bytes;
  entry.result = std::move(result);
  entry.lru_seq = next_seq_++;
  resident_bytes_ += entry.result->bytes;
  ++stats_.insertions;
  EvictLocked();
  bytes_gauge_->Set(resident_bytes_);
}

void ResultCache::EvictLocked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.lru_seq < victim->second.lru_seq) {
        victim = it;
      }
    }
    resident_bytes_ -= victim->second.result->bytes;
    entries_.erase(victim);
    ++stats_.evictions;
    evictions_counter_->Increment();
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.resident_entries = entries_.size();
  return s;
}

}  // namespace fpm
