#include "fpm/service/result_cache.h"

#include <utility>

#include "fpm/obs/metrics.h"

namespace fpm {

bool SupportsDominanceReuse(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLcm:
    case Algorithm::kEclat:
      return true;
    default:
      return false;
  }
}

ResultCache::ResultCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {
  MetricsRegistry& m = MetricsRegistry::Default();
  hits_counter_ = m.GetCounter("fpm.service.cache.hits");
  dominated_counter_ = m.GetCounter("fpm.service.cache.dominated_hits");
  misses_counter_ = m.GetCounter("fpm.service.cache.misses");
  evictions_counter_ = m.GetCounter("fpm.service.cache.evictions");
  bytes_gauge_ = m.GetGauge("fpm.service.cache.bytes");
}

size_t ResultCache::EstimateBytes(
    const std::vector<CollectingSink::Entry>& v) {
  size_t bytes = sizeof(CachedResult) + v.capacity() * sizeof(v[0]);
  for (const CollectingSink::Entry& e : v) {
    bytes += e.first.capacity() * sizeof(Item);
  }
  return bytes;
}

ResultCacheLookup ResultCache::Lookup(const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheLookup out;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.lru_seq = next_seq_++;
    out.result = it->second.result;
    out.exact = true;
    ++stats_.hits;
    hits_counter_->Increment();
    return out;
  }

  if (SupportsDominanceReuse(key.algorithm)) {
    // Same-configuration entries sort adjacently with min_support
    // ascending; lower_bound(key) lands just past every dominating
    // (lower-threshold) entry, and the closest one filters cheapest —
    // fewest surplus itemsets to discard.
    auto lb = entries_.lower_bound(key);
    while (lb != entries_.begin()) {
      auto prev = std::prev(lb);
      const ResultCacheKey& k = prev->first;
      if (k.digest != key.digest || k.algorithm != key.algorithm ||
          k.pattern_bits != key.pattern_bits) {
        break;
      }
      // k.min_support < key.min_support by map order (exact match was
      // already ruled out): filter the dominating result down.
      auto derived = std::make_shared<CachedResult>();
      for (const CollectingSink::Entry& e : prev->second.result->itemsets) {
        if (e.second >= key.min_support) derived->itemsets.push_back(e);
      }
      derived->num_frequent = derived->itemsets.size();
      derived->itemsets.shrink_to_fit();
      derived->bytes = EstimateBytes(derived->itemsets);
      prev->second.lru_seq = next_seq_++;

      out.result = derived;
      out.dominated = true;
      ++stats_.dominated_hits;
      dominated_counter_->Increment();
      // Memoize under the queried key so repeats are exact hits.
      InsertLocked(key, std::move(derived));
      return out;
    }
  }

  ++stats_.misses;
  misses_counter_->Increment();
  return out;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         std::shared_ptr<const CachedResult> result) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, std::move(result));
}

void ResultCache::InsertLocked(const ResultCacheKey& key,
                               std::shared_ptr<const CachedResult> result) {
  Entry& entry = entries_[key];
  if (entry.result != nullptr) resident_bytes_ -= entry.result->bytes;
  entry.result = std::move(result);
  entry.lru_seq = next_seq_++;
  resident_bytes_ += entry.result->bytes;
  ++stats_.insertions;
  EvictLocked();
  bytes_gauge_->Set(resident_bytes_);
}

void ResultCache::EvictLocked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.lru_seq < victim->second.lru_seq) {
        victim = it;
      }
    }
    resident_bytes_ -= victim->second.result->bytes;
    entries_.erase(victim);
    ++stats_.evictions;
    evictions_counter_->Increment();
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.resident_entries = entries_.size();
  return s;
}

}  // namespace fpm
