// Pre-mining cost estimation for admission control.
//
// Before the service queues a query it bounds how large the answer can
// possibly be, using the combinatorial upper bound of Geerts, Goethals &
// Van den Bussche ("Tight upper bounds on the number of candidate
// patterns", PAPERS.md): a transaction t with n_t frequent items can
// support at most C(n_t, k) itemsets of size k, and an itemset needs
// min_support supporting transactions, so
//
//   |frequent k-itemsets| <= sum_t w_t * C(n_t, k) / min_support
//
// and no frequent itemset can be longer than L = the largest k such
// that at least min_support transactions (by weight) have >= k frequent
// items. The bound needs only the per-transaction frequent-item counts —
// one pass over the database, no mining — which is what makes it usable
// at admission time.
//
// The bound is intentionally loose (it ignores item co-occurrence); its
// job is to reject queries that are *provably* enormous (minsup 1 on a
// dense database), not to predict runtime.

#ifndef FPM_SERVICE_COST_MODEL_H_
#define FPM_SERVICE_COST_MODEL_H_

#include <cstdint>

#include "fpm/dataset/database.h"

namespace fpm {

/// Admission-time estimate for one (database, min_support) query.
struct CostEstimate {
  /// Upper bound on the number of frequent itemsets (saturates at
  /// kUnbounded when the sum overflows double precision usefully).
  double max_frequent_itemsets = 0.0;
  /// Upper bound on the longest frequent itemset (the L above).
  uint32_t max_itemset_size = 0;
  /// Number of items frequent at this threshold.
  uint32_t num_frequent_items = 0;

  static constexpr double kUnbounded = 1e300;
};

/// Computes the bound in one pass over `db`. min_support >= 1.
CostEstimate EstimateMiningCost(const Database& db, Support min_support);

/// Seed threshold for a top-k query: the largest threshold t >= `floor`
/// whose itemset upper bound still admits `k` answers, found by binary
/// search over EstimateMiningCost. Because the bound overestimates, the
/// true answer count at the seed may fall short of k and the top-k
/// driver (fpm/algo/topk.h) then tightens further — the seed's job is
/// to keep the *first* pass from enumerating the whole lattice at the
/// floor. Returns `floor` when even the floor's bound is below k.
Support TopKSeedThreshold(const Database& db, uint64_t k, Support floor);

}  // namespace fpm

#endif  // FPM_SERVICE_COST_MODEL_H_
