// Mining result cache with support-dominance reuse.
//
// Keyed by (dataset digest, algorithm, effective pattern bits,
// min_support). An exact hit replays the stored itemsets. Beyond exact
// hits, the cache exploits support dominance: the frequent itemsets at
// threshold S are precisely the itemsets of any run at threshold
// S' <= S whose support is >= S, so a query can be answered by
// filtering a cached lower-threshold result — no mining at all.
//
// Byte-identity caveat: the service promises results identical to a
// direct deterministic Mine(), including emission order. Dominance
// filtering preserves order only for kernels whose emission order is
// independent of min_support. That holds for LCM (frequency ranking and
// occurrence-deliver order never consult the threshold) and for Eclat
// (ascending-support item order with a rank tie-break), but NOT for
// FP-Growth: its single-path shortcut switches a subtree to subset-
// enumeration order, and whether a conditional tree is single-path
// depends on the threshold. SupportsDominanceReuse() encodes this;
// non-eligible algorithms fall back to exact hits only.
//
// Entries are ordered so that all thresholds of one (digest, algorithm,
// patterns) configuration are adjacent and ascending: the dominance
// scan is one lower_bound plus a walk over the configuration's
// neighbors. Eviction is LRU by a byte budget.

#ifndef FPM_SERVICE_RESULT_CACHE_H_
#define FPM_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/miner.h"
#include "fpm/core/patterns.h"

namespace fpm {

class Counter;
class Gauge;

/// Whether `algorithm`'s emission order is min_support-independent,
/// making dominance-filtered cache answers byte-identical to a fresh
/// run (see the header comment).
bool SupportsDominanceReuse(Algorithm algorithm);

/// Identifies one cacheable query configuration.
struct ResultCacheKey {
  std::string digest;       ///< dataset content digest
  Algorithm algorithm = Algorithm::kLcm;
  uint8_t pattern_bits = 0; ///< EffectivePatterns(...).bits()
  Support min_support = 1;

  /// Orders same-configuration entries adjacently, min_support
  /// ascending last — the layout the dominance scan relies on.
  bool operator<(const ResultCacheKey& other) const {
    if (digest != other.digest) return digest < other.digest;
    if (algorithm != other.algorithm) return algorithm < other.algorithm;
    if (pattern_bits != other.pattern_bits) {
      return pattern_bits < other.pattern_bits;
    }
    return min_support < other.min_support;
  }
};

/// An immutable cached mining result, shared with every job replaying
/// it. `itemsets` preserves the kernel's deterministic emission order.
struct CachedResult {
  std::vector<CollectingSink::Entry> itemsets;
  uint64_t num_frequent = 0;
  size_t bytes = 0;  ///< heap footprint, for the budget
};

struct ResultCacheLookup {
  std::shared_ptr<const CachedResult> result;  ///< null on miss
  bool exact = false;      ///< key matched including min_support
  bool dominated = false;  ///< filtered from a lower-threshold entry
};

struct ResultCacheStats {
  uint64_t hits = 0;            ///< exact hits
  uint64_t dominated_hits = 0;  ///< answered by dominance filtering
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t resident_bytes = 0;
  size_t resident_entries = 0;
};

class ResultCache {
 public:
  /// `budget_bytes` bounds resident result bytes (0 = unlimited).
  explicit ResultCache(size_t budget_bytes = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Exact lookup; when absent and the algorithm supports dominance
  /// reuse, derives the answer from the best (highest-threshold)
  /// dominating entry. A derived answer is inserted under `key` so the
  /// filtering cost is paid once.
  ResultCacheLookup Lookup(const ResultCacheKey& key);

  /// Stores a freshly mined result. Overwrites an existing entry for
  /// the key (identical by construction — deterministic mining).
  void Insert(const ResultCacheKey& key,
              std::shared_ptr<const CachedResult> result);

  ResultCacheStats stats() const;

  /// Heap bytes a result with these itemsets occupies (key + vectors).
  static size_t EstimateBytes(const std::vector<CollectingSink::Entry>& v);

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> result;
    uint64_t lru_seq = 0;
  };

  void InsertLocked(const ResultCacheKey& key,
                    std::shared_ptr<const CachedResult> result);
  void EvictLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  std::map<ResultCacheKey, Entry> entries_;
  uint64_t next_seq_ = 1;
  size_t resident_bytes_ = 0;
  ResultCacheStats stats_;

  // fpm.service.cache.* metrics.
  Counter* hits_counter_;
  Counter* dominated_counter_;
  Counter* misses_counter_;
  Counter* evictions_counter_;
  Gauge* bytes_gauge_;
};

}  // namespace fpm

#endif  // FPM_SERVICE_RESULT_CACHE_H_
