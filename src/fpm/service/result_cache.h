// Mining result cache with support-dominance reuse across the whole
// MiningQuery task family.
//
// Keyed by (dataset digest, algorithm, effective pattern bits, task,
// per-task params, min_support). An exact hit replays the stored
// result. Beyond exact hits, the cache exploits support dominance: the
// frequent itemsets at threshold S are precisely the itemsets of any
// run at threshold S' <= S whose support is >= S, so a query can be
// answered by filtering a cached lower-threshold result — no mining at
// all. With tasks in the key, dominance also crosses tasks: a cached
// FREQUENT (or CLOSED) listing at S' <= S answers CLOSED, MAXIMAL,
// TOP_K and RULES queries at S by filtering plus the task's own
// post-pass. The full derivation matrix (query task <- source task):
//
//   FREQUENT <- FREQUENT   filter; gated by SupportsDominanceReuse
//                          (emission order must be S-independent)
//   CLOSED   <- CLOSED     filter (closedness is S-independent)
//            <- FREQUENT   filter + canonicalize + FilterClosed
//   MAXIMAL  <- CLOSED     filter + FilterMaximalFromClosed
//            <- FREQUENT   filter + canonicalize + FilterMaximal
//            (never MAXIMAL <- MAXIMAL: maximality is S-dependent)
//   TOP_K    <- FREQUENT   S' <= floor: filter + rank-sort + truncate;
//                          S' > floor also valid when the cached
//                          listing holds >= k entries (they then
//                          contain the global top k)
//   RULES    <- RULES      filter on itemset_support (subset supports
//                          are threshold-independent)
//            <- CLOSED     filter + GenerateRulesFromClosed
//            <- FREQUENT   filter + FilterClosed + rules
//
// Every derived result except FREQUENT's is in a canonical/sorted
// order, so no algorithm gate applies to the cross-task rows — only
// the FREQUENT emission-order contract needs SupportsDominanceReuse
// (holds for LCM and Eclat, not FP-Growth; see below).
//
// Byte-identity caveat (FREQUENT): the service promises results
// identical to a direct deterministic Mine(), including emission order.
// Dominance filtering preserves order only for kernels whose emission
// order is independent of min_support. That holds for LCM (frequency
// ranking and occurrence-deliver order never consult the threshold) and
// for Eclat (ascending-support item order with a rank tie-break), but
// NOT for FP-Growth: its single-path shortcut switches a subtree to
// subset-enumeration order, and whether a conditional tree is
// single-path depends on the threshold. SupportsDominanceReuse()
// encodes this; non-eligible algorithms fall back to exact hits only.
//
// Entries are ordered so that all thresholds of one (digest, algorithm,
// patterns, task, params) configuration are adjacent and ascending: a
// dominance scan is one bound probe plus a walk over the
// configuration's neighbors, and a cross-task scan re-probes with the
// source task substituted. Eviction is LRU by a byte budget.

#ifndef FPM_SERVICE_RESULT_CACHE_H_
#define FPM_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/miner.h"
#include "fpm/core/patterns.h"

namespace fpm {

class Counter;
class Gauge;

/// Whether `algorithm`'s emission order is min_support-independent,
/// making dominance-filtered FREQUENT cache answers byte-identical to a
/// fresh run (see the header comment).
bool SupportsDominanceReuse(Algorithm algorithm);

/// Identifies one cacheable query configuration. Query parameters
/// irrelevant to the task are zeroed (ForQuery does this) so equivalent
/// queries share an entry.
struct ResultCacheKey {
  std::string digest;       ///< dataset content digest
  Algorithm algorithm = Algorithm::kLcm;
  uint8_t pattern_bits = 0; ///< EffectivePatterns(...).bits()
  MiningTask task = MiningTask::kFrequent;
  uint64_t k = 0;                ///< kTopK only
  uint32_t max_consequent = 0;   ///< kRules only
  double min_confidence = 0.0;   ///< kRules only
  double min_lift = 0.0;         ///< kRules only
  Support min_support = 1;

  /// Builds the key for `query`, zeroing parameters the task ignores.
  static ResultCacheKey ForQuery(std::string digest, Algorithm algorithm,
                                 uint8_t pattern_bits,
                                 const MiningQuery& query);

  /// Same configuration = every field but min_support equal — the
  /// entries a dominance walk may draw from.
  bool SameConfig(const ResultCacheKey& other) const {
    return digest == other.digest && algorithm == other.algorithm &&
           pattern_bits == other.pattern_bits && task == other.task &&
           k == other.k && max_consequent == other.max_consequent &&
           min_confidence == other.min_confidence &&
           min_lift == other.min_lift;
  }

  /// Orders same-configuration entries adjacently, min_support
  /// ascending last — the layout the dominance scan relies on.
  bool operator<(const ResultCacheKey& other) const {
    if (digest != other.digest) return digest < other.digest;
    if (algorithm != other.algorithm) return algorithm < other.algorithm;
    if (pattern_bits != other.pattern_bits) {
      return pattern_bits < other.pattern_bits;
    }
    if (task != other.task) return task < other.task;
    if (k != other.k) return k < other.k;
    if (max_consequent != other.max_consequent) {
      return max_consequent < other.max_consequent;
    }
    if (min_confidence != other.min_confidence) {
      return min_confidence < other.min_confidence;
    }
    if (min_lift != other.min_lift) return min_lift < other.min_lift;
    return min_support < other.min_support;
  }
};

/// An immutable cached result, shared with every job replaying it.
/// Itemset tasks fill `itemsets` (FREQUENT preserves the kernel's
/// deterministic emission order; the other tasks their sorted orders);
/// kRules fills `rules`. `num_results` counts whichever is filled.
struct CachedResult {
  std::vector<CollectingSink::Entry> itemsets;
  std::vector<AssociationRule> rules;
  uint64_t num_results = 0;
  /// Database::total_weight() of the source dataset — what rule
  /// derivation from a cached CLOSED/FREQUENT listing needs.
  Support total_weight = 0;
  size_t bytes = 0;  ///< heap footprint, for the budget
};

struct ResultCacheLookup {
  std::shared_ptr<const CachedResult> result;  ///< null on miss
  bool exact = false;       ///< key matched including min_support
  bool dominated = false;   ///< derived from a same-task entry
  bool cross_task = false;  ///< derived from another task's entry
};

/// A reseeding source: a FREQUENT listing cached for a *parent dataset
/// version*, usable as a complete candidate border when mining the
/// child version (service.cc's reseed path).
struct ReseedSource {
  std::shared_ptr<const CachedResult> result;  ///< null when none found
  Support min_support = 0;  ///< threshold the source was mined at
};

struct ResultCacheStats {
  uint64_t hits = 0;             ///< exact hits
  uint64_t dominated_hits = 0;   ///< same-task dominance derivations
  uint64_t cross_task_hits = 0;  ///< cross-task derivations
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t resident_bytes = 0;
  size_t resident_entries = 0;
};

class ResultCache {
 public:
  /// `budget_bytes` bounds resident result bytes (0 = unlimited).
  explicit ResultCache(size_t budget_bytes = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Exact lookup; when absent, walks the derivation matrix above for
  /// the best dominating entry (same task first, then cross-task
  /// sources). A derived answer is inserted under `key` so the
  /// filtering cost is paid once.
  ResultCacheLookup Lookup(const ResultCacheKey& key);

  /// Stores a freshly mined result. Overwrites an existing entry for
  /// the key (identical by construction — deterministic mining).
  void Insert(const ResultCacheKey& key,
              std::shared_ptr<const CachedResult> result);

  /// Finds a FREQUENT listing cached under `parent_digest` for the same
  /// (algorithm, patterns) configuration as `key`, at a threshold <=
  /// `max_source` — the candidate border for reseeding a child-version
  /// mine. `key` must be a FREQUENT key. Unlike Lookup()'s dominance
  /// rows, no SupportsDominanceReuse gate applies: the reseed path
  /// recounts every candidate's support over the delta and
  /// canonicalizes, so only candidate-set *completeness* matters, which
  /// any FREQUENT listing at or below max_source provides regardless of
  /// its emission order.
  ReseedSource FindSeed(const ResultCacheKey& key,
                        const std::string& parent_digest,
                        Support max_source);

  ResultCacheStats stats() const;

  /// Heap bytes a result with these itemsets occupies (key + vectors).
  static size_t EstimateBytes(const std::vector<CollectingSink::Entry>& v);

  /// Heap bytes of a full result, rules included.
  static size_t EstimateResultBytes(const CachedResult& result);

 private:
  struct Entry {
    std::shared_ptr<const CachedResult> result;
    uint64_t lru_seq = 0;
  };
  using EntryMap = std::map<ResultCacheKey, Entry>;

  /// Best same-config entry with min_support <= probe's (the closest
  /// threshold, so the fewest surplus entries to filter), or nullptr.
  EntryMap::iterator FindBestAtOrBelowLocked(const ResultCacheKey& probe);

  /// Task-specific derivation attempts; each returns the derived result
  /// (null when no usable source entry exists) and touches the source's
  /// LRU slot. `source_task` reports where the answer came from.
  std::shared_ptr<CachedResult> DeriveLocked(const ResultCacheKey& key,
                                             MiningTask* source_task);

  void InsertLocked(const ResultCacheKey& key,
                    std::shared_ptr<const CachedResult> result);
  void EvictLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  EntryMap entries_;
  uint64_t next_seq_ = 1;
  size_t resident_bytes_ = 0;
  ResultCacheStats stats_;

  // fpm.service.cache.* metrics.
  Counter* hits_counter_;
  Counter* dominated_counter_;
  Counter* cross_task_counter_;
  Counter* misses_counter_;
  Counter* evictions_counter_;
  Gauge* bytes_gauge_;
};

}  // namespace fpm

#endif  // FPM_SERVICE_RESULT_CACHE_H_
