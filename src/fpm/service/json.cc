#include "fpm/service/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace fpm {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue& JsonValue::operator[](const std::string& key) const {
  static const JsonValue kNull;
  if (kind_ != Kind::kObject) return kNull;
  auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  object_[key] = std::move(value);
}

void JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
}

namespace {

void EscapeStringTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      // Integers (the common case) print without a fraction; everything
      // else gets shortest-round-trip formatting via to_chars.
      if (std::floor(number_) == number_ && std::abs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        *out += buf;
      } else {
        char buf[32];
        auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), number_);
        if (ec == std::errc()) {
          out->append(buf, ptr);
        } else {
          *out += "null";  // NaN/Inf have no JSON encoding
        }
      }
      return;
    }
    case Kind::kString:
      EscapeStringTo(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        EscapeStringTo(key, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    FPM_RETURN_IF_ERROR(ParseValue(&v, /*depth=*/0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        FPM_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit, JsonValue value, JsonValue* out) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!Consume(*p)) return Error(std::string("expected '") + lit + "'");
    }
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double d = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Error("malformed number '" +
                   text_.substr(start, pos_ - start) + "'");
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      SkipWs();
      FPM_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Append(std::move(v));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      FPM_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      JsonValue v;
      FPM_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace fpm
