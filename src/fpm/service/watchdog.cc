#include "fpm/service/watchdog.h"

#include <cstdio>
#include <vector>

#include "fpm/obs/metrics.h"
#include "fpm/obs/query_log.h"

namespace fpm {

StuckJobWatchdog::StuckJobWatchdog(WatchdogOptions options)
    : options_(options) {
  MetricsRegistry& m = MetricsRegistry::Default();
  checks_counter_ = m.GetCounter("fpm.service.watchdog.checks");
  flagged_counter_ = m.GetCounter("fpm.service.watchdog.flagged");
  stuck_gauge_ = m.GetGauge("fpm.service.watchdog.stuck");
}

StuckJobWatchdog::~StuckJobWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void StuckJobWatchdog::Start() {
  if (options_.interval_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (monitor_.joinable()) return;
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void StuckJobWatchdog::MonitorLoop() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(options_.interval_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_cv_.wait_for(lock, interval, [this] { return stop_; })) {
    lock.unlock();
    Sweep();
    lock.lock();
  }
}

void StuckJobWatchdog::Register(uint64_t query_id, const std::string& task,
                                double deadline_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  active_[query_id] =
      ActiveJob{task, std::chrono::steady_clock::now(), deadline_seconds,
                /*flagged=*/false};
}

void StuckJobWatchdog::Unregister(uint64_t query_id) {
  size_t stuck = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(query_id);
    for (const auto& [id, job] : active_) {
      if (job.flagged) ++stuck;
    }
  }
  stuck_gauge_->Set(stuck);
}

size_t StuckJobWatchdog::Sweep() {
  struct Stuck {
    uint64_t query_id;
    std::string task;
    double age_seconds;
    double deadline_seconds;
  };
  std::vector<Stuck> newly_flagged;
  size_t stuck = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sweeps_;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [query_id, job] : active_) {
      if (job.flagged) {
        ++stuck;
        continue;
      }
      const double age =
          std::chrono::duration<double>(now - job.start).count();
      const bool past_deadline = options_.deadline_factor > 0.0 &&
                                 job.deadline_seconds > 0.0 &&
                                 age > options_.deadline_factor *
                                           job.deadline_seconds;
      const bool past_absolute = options_.absolute_seconds > 0.0 &&
                                 age > options_.absolute_seconds;
      if (!past_deadline && !past_absolute) continue;
      job.flagged = true;
      ++flagged_;
      ++stuck;
      newly_flagged.push_back(
          Stuck{query_id, job.task, age, job.deadline_seconds});
    }
  }
  checks_counter_->Increment();
  flagged_counter_->Add(newly_flagged.size());
  stuck_gauge_->Set(stuck);
  for (const Stuck& s : newly_flagged) {
    char reason[160];
    std::snprintf(reason, sizeof(reason),
                  "running %.3fs, deadline %.3fs, bound %s", s.age_seconds,
                  s.deadline_seconds,
                  options_.absolute_seconds > 0.0 &&
                          s.age_seconds > options_.absolute_seconds
                      ? "absolute"
                      : "deadline_factor");
    if (options_.query_log != nullptr) {
      QueryLogEntry entry;
      entry.event = "watchdog_stuck";
      entry.query_id = s.query_id;
      entry.task = s.task;
      entry.status = "stuck";
      entry.reason = reason;
      options_.query_log->Write(entry);
    }
  }
  return newly_flagged.size();
}

WatchdogStats StuckJobWatchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WatchdogStats s;
  s.sweeps = sweeps_;
  s.flagged = flagged_;
  for (const auto& [id, job] : active_) {
    if (job.flagged) ++s.stuck_now;
  }
  return s;
}

}  // namespace fpm
