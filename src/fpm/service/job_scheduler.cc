#include "fpm/service/job_scheduler.h"

#include <algorithm>
#include <utility>

#include "fpm/obs/metrics.h"

namespace fpm {

JobScheduler::JobScheduler(JobSchedulerOptions options)
    : options_(options) {
  if (options_.max_concurrency == 0) {
    options_.max_concurrency = options_.pool->num_workers();
  }
  MetricsRegistry& m = MetricsRegistry::Default();
  submitted_counter_ = m.GetCounter("fpm.service.jobs.submitted");
  rejected_counter_ = m.GetCounter("fpm.service.jobs.rejected");
  completed_counter_ = m.GetCounter("fpm.service.jobs.completed");
  queue_depth_gauge_ = m.GetGauge("fpm.service.jobs.queue_depth");
}

JobScheduler::~JobScheduler() { Drain(); }

Status JobScheduler::Submit(int priority, uint64_t query_id,
                            std::function<void()> job) {
  bool spawn_runner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.max_queue_depth) {
      ++rejected_;
      rejected_counter_->Increment();
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(queue_.size()) + " queued)");
    }
    queue_.push(QueuedJob{priority, next_seq_++, query_id, std::move(job)});
    ++submitted_;
    submitted_counter_->Increment();
    queue_depth_gauge_->Set(queue_.size());
    if (active_runners_ < options_.max_concurrency) {
      ++active_runners_;
      spawn_runner = true;
    }
  }
  if (spawn_runner) {
    options_.pool->Submit([this] { RunnerLoop(); });
  }
  return Status::OK();
}

void JobScheduler::RunnerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    // priority_queue::top() is const; the job is moved out via the
    // const_cast idiom (the element is popped immediately after).
    std::function<void()> fn =
        std::move(const_cast<QueuedJob&>(queue_.top()).fn);
    const uint64_t seq = queue_.top().seq;
    const uint64_t query_id = queue_.top().query_id;
    queue_.pop();
    ++running_;
    running_jobs_.push_back(
        RunningJob{seq, query_id, std::chrono::steady_clock::now()});
    queue_depth_gauge_->Set(queue_.size());
    lock.unlock();

    fn();

    lock.lock();
    --running_;
    running_jobs_.erase(
        std::find_if(running_jobs_.begin(), running_jobs_.end(),
                     [seq](const RunningJob& r) { return r.seq == seq; }));
    ++completed_;
    completed_counter_->Increment();
  }
  --active_runners_;
  if (queue_.empty() && running_ == 0 && active_runners_ == 0) {
    drain_cv_.notify_all();
  }
}

void JobScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return queue_.empty() && running_ == 0 && active_runners_ == 0;
  });
}

JobSchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JobSchedulerStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.queue_depth = queue_.size();
  s.running = running_;
  const auto now = std::chrono::steady_clock::now();
  s.in_flight.reserve(running_jobs_.size());
  for (const RunningJob& r : running_jobs_) {
    s.in_flight.push_back(InFlightJob{
        r.query_id,
        std::chrono::duration<double>(now - r.start).count()});
  }
  return s;
}

}  // namespace fpm
