#include "fpm/service/job_scheduler.h"

#include <utility>

#include "fpm/obs/metrics.h"

namespace fpm {

JobScheduler::JobScheduler(JobSchedulerOptions options)
    : options_(options) {
  if (options_.max_concurrency == 0) {
    options_.max_concurrency = options_.pool->num_workers();
  }
  MetricsRegistry& m = MetricsRegistry::Default();
  submitted_counter_ = m.GetCounter("fpm.service.jobs.submitted");
  rejected_counter_ = m.GetCounter("fpm.service.jobs.rejected");
  completed_counter_ = m.GetCounter("fpm.service.jobs.completed");
  queue_depth_gauge_ = m.GetGauge("fpm.service.jobs.queue_depth");
}

JobScheduler::~JobScheduler() { Drain(); }

Status JobScheduler::Submit(int priority, std::function<void()> job) {
  bool spawn_runner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.max_queue_depth) {
      ++rejected_;
      rejected_counter_->Increment();
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(queue_.size()) + " queued)");
    }
    queue_.push(QueuedJob{priority, next_seq_++, std::move(job)});
    ++submitted_;
    submitted_counter_->Increment();
    queue_depth_gauge_->Set(queue_.size());
    if (active_runners_ < options_.max_concurrency) {
      ++active_runners_;
      spawn_runner = true;
    }
  }
  if (spawn_runner) {
    options_.pool->Submit([this] { RunnerLoop(); });
  }
  return Status::OK();
}

void JobScheduler::RunnerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    // priority_queue::top() is const; the job is moved out via the
    // const_cast idiom (the element is popped immediately after).
    std::function<void()> fn =
        std::move(const_cast<QueuedJob&>(queue_.top()).fn);
    queue_.pop();
    ++running_;
    queue_depth_gauge_->Set(queue_.size());
    lock.unlock();

    fn();

    lock.lock();
    --running_;
    ++completed_;
    completed_counter_->Increment();
  }
  --active_runners_;
  if (queue_.empty() && running_ == 0 && active_runners_ == 0) {
    drain_cv_.notify_all();
  }
}

void JobScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return queue_.empty() && running_ == 0 && active_runners_ == 0;
  });
}

JobSchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JobSchedulerStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.queue_depth = queue_.size();
  s.running = running_;
  return s;
}

}  // namespace fpm
