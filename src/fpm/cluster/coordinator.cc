#include "fpm/cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "fpm/cluster/endpoint.h"
#include "fpm/cluster/peer_client.h"
#include "fpm/cluster/shard_exec.h"
#include "fpm/dataset/packed.h"
#include "fpm/obs/metrics.h"
#include "fpm/service/protocol.h"

namespace fpm {

namespace {

Result<std::string> DefaultTransport(const std::string& endpoint,
                                     const std::string& line,
                                     double deadline_seconds,
                                     const std::function<bool()>& abort) {
  FPM_ASSIGN_OR_RETURN(Endpoint parsed, ParseEndpoint(endpoint));
  return PeerClient::Call(parsed, line, deadline_seconds, abort);
}

// A peer-side error on a forwarded query that every replica would
// repeat (the query itself is bad, not the peer) — failover is
// pointless, surface it to the client.
bool IsDeterministicRejection(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

std::string JoinEndpoints(const std::vector<std::string>& endpoints) {
  std::string out;
  for (const std::string& e : endpoints) {
    if (!out.empty()) out.push_back(',');
    out += e;
  }
  return out;
}

}  // namespace

Coordinator::Coordinator(ClusterOptions options, Transport transport)
    : options_(std::move(options)),
      transport_(transport ? std::move(transport) : DefaultTransport),
      membership_(
          [this] {
            ClusterMembership::Options m;
            m.self = options_.self;
            m.peers = options_.peers;
            m.ping_interval_seconds = options_.ping_interval_seconds;
            m.ping_timeout_seconds = options_.ping_timeout_seconds;
            return m;
          }(),
          // Route pings through the (possibly injected) transport so a
          // fake transport controls health in tests too.
          [this](const std::string& endpoint, double timeout_s) -> Status {
            Result<std::string> reply =
                transport_(endpoint, "{\"op\":\"ping\"}", timeout_s, {});
            if (!reply.ok()) return reply.status();
            if (reply.value().find("\"ok\":true") == std::string::npos) {
              return Status::Unavailable("peer " + endpoint +
                                         ": ping rejected: " + reply.value());
            }
            return Status::OK();
          }),
      ring_(options_.peers, options_.virtual_nodes) {
  MetricsRegistry& m = MetricsRegistry::Default();
  failovers_counter_ = m.GetCounter("fpm.cluster.failovers");
  remote_queries_counter_ = m.GetCounter("fpm.cluster.remote_queries");
  probe_hits_counter_ = m.GetCounter("fpm.cluster.probe_hits");
  local_fallbacks_counter_ = m.GetCounter("fpm.cluster.local_fallbacks");
}

Coordinator::~Coordinator() { membership_.Stop(); }

void Coordinator::Start() { membership_.Start(); }

Result<std::string> Coordinator::DigestForPath(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    auto it = digest_by_path_.find(path);
    if (it != digest_by_path_.end()) return it->second;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cluster: cannot open dataset '" + path + "'");
  }
  char header[kPackedHeaderBytes];
  in.read(header, sizeof(header));
  const size_t header_bytes = static_cast<size_t>(in.gcount());

  std::string digest;
  if (header_bytes >= kPackedHeaderBytes &&
      std::memcmp(header, kPackedMagic, sizeof(kPackedMagic)) == 0) {
    // Packed file: the header carries the content digest — placement
    // costs one page read, never a dataset load.
    digest.assign(header + 56, 16);
  } else {
    // Anything else (FIMI text): digest the raw bytes, exactly what
    // DatasetRegistry::Open computes when it loads the file.
    std::string bytes(header, header_bytes);
    std::ostringstream rest;
    rest << in.rdbuf();
    bytes += rest.str();
    digest = ContentDigest(bytes);
  }

  std::lock_guard<std::mutex> lock(digest_mu_);
  digest_by_path_.emplace(path, digest);
  return digest;
}

std::vector<std::string> Coordinator::OwnersForDigest(
    const std::string& digest) const {
  return ring_.Owners(digest, options_.replicas);
}

bool Coordinator::SelfOwns(const std::string& digest) const {
  const std::vector<std::string> owners = OwnersForDigest(digest);
  return std::find(owners.begin(), owners.end(), options_.self) !=
         owners.end();
}

std::vector<std::string> Coordinator::RemoteOwnersHealthyFirst(
    const std::string& digest) const {
  std::vector<std::string> owners = OwnersForDigest(digest);
  owners.erase(std::remove(owners.begin(), owners.end(), options_.self),
               owners.end());
  // Healthy owners first; ring (replica) order breaks ties, so the
  // primary is still preferred within each class.
  std::stable_partition(owners.begin(), owners.end(),
                        [this](const std::string& endpoint) {
                          return membership_.IsHealthy(endpoint);
                        });
  return owners;
}

Result<std::string> Coordinator::CallPeer(const std::string& endpoint,
                                          const std::string& line,
                                          double deadline_seconds,
                                          const std::function<bool()>& abort) {
  const auto start = std::chrono::steady_clock::now();
  Result<std::string> result =
      transport_(endpoint, line, deadline_seconds, abort);
  if (result.ok()) {
    const double rtt_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    membership_.RecordSuccess(endpoint, rtt_ms);
  } else if (result.status().code() != StatusCode::kCancelled) {
    membership_.RecordFailure(endpoint);
  }
  return result;
}

Result<MineResponse> Coordinator::ExecuteRemote(
    const MineRequest& request, const std::string& digest,
    const std::function<bool()>& abort) {
  counters_.remote_queries.fetch_add(1, std::memory_order_relaxed);
  remote_queries_counter_->Increment();

  const std::vector<std::string> owners = RemoteOwnersHealthyFirst(digest);
  if (owners.empty()) {
    return Status::Unavailable("cluster: no remote owners for digest " +
                               digest);
  }

  // Probe phase: any owner's ResultCache may already hold the answer —
  // a hit costs one round trip and zero mining anywhere. Probe failures
  // are not failovers (nothing was being executed yet).
  const std::string probe_line = EncodeCacheProbeRequest(digest, request);
  for (const std::string& owner : owners) {
    if (abort && abort()) {
      return Status::Cancelled("cluster: query aborted during probe");
    }
    Result<std::string> raw =
        CallPeer(owner, probe_line, options_.probe_deadline_seconds, abort);
    if (!raw.ok()) {
      if (raw.status().code() == StatusCode::kCancelled) return raw.status();
      continue;
    }
    Result<CacheProbeReply> reply = DecodeCacheProbeResponse(raw.value());
    if (!reply.ok()) continue;
    if (reply.value().hit) {
      counters_.probe_hits.fetch_add(1, std::memory_order_relaxed);
      probe_hits_counter_->Increment();
      MineResponse response = std::move(reply.value().response);
      response.served_by = owner;
      return response;
    }
    counters_.probe_misses.fetch_add(1, std::memory_order_relaxed);
  }

  // Forward phase: route the whole query to one owner (its kernel, its
  // cache fill), replica by replica on failure.
  const std::string forward_line = EncodeShardQueryRequest(
      request, ClusterOpRequest::ShardMode::kExecute, 0, 1, {});
  Status last = Status::Unavailable("no owner attempted");
  for (const std::string& owner : owners) {
    if (abort && abort()) {
      return Status::Cancelled("cluster: query aborted during forward");
    }
    counters_.forwards.fetch_add(1, std::memory_order_relaxed);
    Result<std::string> raw =
        CallPeer(owner, forward_line, options_.peer_deadline_seconds, abort);
    if (!raw.ok()) {
      if (raw.status().code() == StatusCode::kCancelled) return raw.status();
      last = raw.status();
      counters_.failovers.fetch_add(1, std::memory_order_relaxed);
      failovers_counter_->Increment();
      continue;
    }
    Result<MineResponse> decoded = DecodeQueryResponse(raw.value());
    if (!decoded.ok()) {
      if (IsDeterministicRejection(decoded.status().code())) {
        return decoded.status();
      }
      last = decoded.status();
      counters_.failovers.fetch_add(1, std::memory_order_relaxed);
      failovers_counter_->Increment();
      continue;
    }
    MineResponse response = std::move(decoded.value());
    response.served_by = owner;
    return response;
  }
  return Status::Unavailable(
      "cluster: all " + std::to_string(owners.size()) + " owner(s) of digest " +
      digest + " failed; last: " + last.ToString());
}

Result<MineResponse> Coordinator::ExecuteScatter(
    const MineRequest& request, const std::string& digest,
    const std::function<bool()>& abort) {
  if (request.query.task != MiningTask::kFrequent) {
    return Status::FailedPrecondition(
        "cluster: scatter supports task 'frequent' only");
  }
  std::vector<std::string> owners = OwnersForDigest(digest);
  owners.erase(std::remove_if(owners.begin(), owners.end(),
                              [this](const std::string& endpoint) {
                                return !membership_.IsHealthy(endpoint);
                              }),
               owners.end());
  const uint32_t k = static_cast<uint32_t>(owners.size());
  if (k < 2) {
    return Status::FailedPrecondition(
        "cluster: scatter needs >= 2 healthy owners, have " +
        std::to_string(k));
  }
  counters_.scatter_queries.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();

  // One sub-query per partition, preferring owner p for partition p
  // (even spread) and failing over around the owner list. `run_shard`
  // is both phases' retry loop; only the wire payload differs.
  const auto run_shard =
      [&](uint32_t p, const std::string& line,
          const std::function<Status(const std::string&)>& on_reply)
      -> Status {
    Status last = Status::Unavailable("no owner attempted");
    for (uint32_t attempt = 0; attempt < k; ++attempt) {
      if (abort && abort()) {
        return Status::Cancelled("cluster: scatter aborted");
      }
      const std::string& owner = owners[(p + attempt) % k];
      Result<std::string> raw =
          CallPeer(owner, line, options_.peer_deadline_seconds, abort);
      Status status = raw.ok() ? on_reply(raw.value()) : raw.status();
      if (status.ok()) return status;
      if (status.code() == StatusCode::kCancelled ||
          IsDeterministicRejection(status.code())) {
        return status;
      }
      last = status;
      counters_.failovers.fetch_add(1, std::memory_order_relaxed);
      failovers_counter_->Increment();
    }
    return Status::Unavailable("cluster: shard " + std::to_string(p) +
                               " failed on every owner; last: " +
                               last.ToString());
  };

  // Phase 1: local mines at the scaled threshold, one partition per
  // owner, in parallel.
  std::vector<std::vector<CollectingSink::Entry>> locals(k);
  std::vector<Status> shard_status(k);
  {
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (uint32_t p = 0; p < k; ++p) {
      threads.emplace_back([&, p] {
        const std::string line = EncodeShardQueryRequest(
            request, ClusterOpRequest::ShardMode::kMine, p, k, {});
        shard_status[p] = run_shard(p, line, [&](const std::string& reply) {
          FPM_ASSIGN_OR_RETURN(locals[p], DecodeShardMineResponse(reply));
          return Status::OK();
        });
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (const Status& status : shard_status) {
    FPM_RETURN_IF_ERROR(status);
  }

  const std::vector<Itemset> candidates =
      MergeShardCandidates(std::move(locals));

  // Phase 2: exact counts of the candidate union over every partition.
  std::vector<std::vector<Support>> per_shard(k);
  if (!candidates.empty()) {
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (uint32_t p = 0; p < k; ++p) {
      threads.emplace_back([&, p] {
        const std::string line = EncodeShardQueryRequest(
            request, ClusterOpRequest::ShardMode::kCount, p, k, candidates);
        shard_status[p] = run_shard(p, line, [&](const std::string& reply) {
          FPM_ASSIGN_OR_RETURN(per_shard[p], DecodeShardCountResponse(reply));
          if (per_shard[p].size() != candidates.size()) {
            return Status::Unavailable(
                "peer returned " + std::to_string(per_shard[p].size()) +
                " counts for " + std::to_string(candidates.size()) +
                " candidates");
          }
          return Status::OK();
        });
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& status : shard_status) {
      FPM_RETURN_IF_ERROR(status);
    }
  }

  std::vector<CollectingSink::Entry> merged =
      MergeShardCounts(candidates, per_shard, request.query.min_support);

  MineResponse response;
  response.task = MiningTask::kFrequent;
  response.num_frequent = merged.size();
  if (!request.count_only) response.itemsets = std::move(merged);
  response.cache = CacheOutcome::kMiss;
  response.dataset_digest = digest;
  response.trace_id = request.trace_id;
  response.mine_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  response.served_by = JoinEndpoints(owners);
  response.shard_count = k;
  return response;
}

void Coordinator::NoteLocalFallback() {
  counters_.local_fallbacks.fetch_add(1, std::memory_order_relaxed);
  local_fallbacks_counter_->Increment();
}

void Coordinator::NoteProbeServed(bool hit) {
  if (hit) {
    counters_.probe_hits_served.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.probe_misses_served.fetch_add(1, std::memory_order_relaxed);
  }
}

Coordinator::Counters Coordinator::counters() const {
  Counters out;
  out.remote_queries = counters_.remote_queries.load(std::memory_order_relaxed);
  out.probe_hits = counters_.probe_hits.load(std::memory_order_relaxed);
  out.probe_misses = counters_.probe_misses.load(std::memory_order_relaxed);
  out.forwards = counters_.forwards.load(std::memory_order_relaxed);
  out.failovers = counters_.failovers.load(std::memory_order_relaxed);
  out.local_fallbacks =
      counters_.local_fallbacks.load(std::memory_order_relaxed);
  out.scatter_queries =
      counters_.scatter_queries.load(std::memory_order_relaxed);
  out.probe_hits_served =
      counters_.probe_hits_served.load(std::memory_order_relaxed);
  out.probe_misses_served =
      counters_.probe_misses_served.load(std::memory_order_relaxed);
  return out;
}

JsonValue Coordinator::InfoJson(
    const std::vector<DatasetRegistryStats::Dataset>& datasets,
    const std::string& placement_digest) const {
  JsonValue doc = JsonValue::Object();
  doc.Set("enabled", JsonValue::Bool(true));
  doc.Set("self", JsonValue::Str(options_.self));
  doc.Set("replicas",
          JsonValue::Int(static_cast<int64_t>(options_.replicas)));
  doc.Set("virtual_nodes",
          JsonValue::Int(static_cast<int64_t>(options_.virtual_nodes)));

  // Shard counts: place every loaded dataset's digest and tally per
  // owner — "who would serve what" from this node's registry view.
  std::map<std::string, uint64_t> owned;
  for (const DatasetRegistryStats::Dataset& d : datasets) {
    if (d.digest.empty()) continue;
    for (const std::string& owner : OwnersForDigest(d.digest)) {
      ++owned[owner];
    }
  }

  JsonValue peers = JsonValue::Array();
  for (const ClusterMembership::PeerStatus& status : membership_.Snapshot()) {
    JsonValue row = JsonValue::Object();
    row.Set("endpoint", JsonValue::Str(status.endpoint));
    row.Set("self", JsonValue::Bool(status.self));
    row.Set("healthy", JsonValue::Bool(status.healthy));
    row.Set("failures",
            JsonValue::Int(static_cast<int64_t>(status.failures)));
    row.Set("consecutive_failures",
            JsonValue::Int(
                static_cast<int64_t>(status.consecutive_failures)));
    row.Set("pings", JsonValue::Int(static_cast<int64_t>(status.pings)));
    row.Set("rtt_last_ms", JsonValue::Number(status.last_rtt_ms));
    row.Set("rtt_p50_ms", JsonValue::Number(status.rtt_60s.p50_ms));
    row.Set("rtt_p99_ms", JsonValue::Number(status.rtt_60s.p99_ms));
    auto it = owned.find(status.endpoint);
    row.Set("datasets_owned",
            JsonValue::Int(static_cast<int64_t>(
                it == owned.end() ? 0 : it->second)));
    peers.Append(std::move(row));
  }
  doc.Set("peers", std::move(peers));

  const Counters c = counters();
  JsonValue counters_doc = JsonValue::Object();
  counters_doc.Set("remote_queries",
                   JsonValue::Int(static_cast<int64_t>(c.remote_queries)));
  counters_doc.Set("probe_hits",
                   JsonValue::Int(static_cast<int64_t>(c.probe_hits)));
  counters_doc.Set("probe_misses",
                   JsonValue::Int(static_cast<int64_t>(c.probe_misses)));
  counters_doc.Set("forwards",
                   JsonValue::Int(static_cast<int64_t>(c.forwards)));
  counters_doc.Set("failovers",
                   JsonValue::Int(static_cast<int64_t>(c.failovers)));
  counters_doc.Set("local_fallbacks",
                   JsonValue::Int(static_cast<int64_t>(c.local_fallbacks)));
  counters_doc.Set("scatter_queries",
                   JsonValue::Int(static_cast<int64_t>(c.scatter_queries)));
  counters_doc.Set("probe_hits_served",
                   JsonValue::Int(static_cast<int64_t>(c.probe_hits_served)));
  counters_doc.Set(
      "probe_misses_served",
      JsonValue::Int(static_cast<int64_t>(c.probe_misses_served)));
  doc.Set("counters", std::move(counters_doc));

  if (!placement_digest.empty()) {
    JsonValue placement = JsonValue::Object();
    placement.Set("digest", JsonValue::Str(placement_digest));
    JsonValue owners = JsonValue::Array();
    for (const std::string& owner : OwnersForDigest(placement_digest)) {
      owners.Append(JsonValue::Str(owner));
    }
    placement.Set("owners", std::move(owners));
    doc.Set("placement", std::move(placement));
  }
  return doc;
}

}  // namespace fpm
