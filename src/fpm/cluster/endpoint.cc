#include "fpm/cluster/endpoint.h"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fpm {

namespace {

Status DialError(const Endpoint& endpoint, const std::string& stage,
                 const std::string& detail) {
  return Status::Unavailable("dial " + endpoint.ToString() + ": " + stage +
                             ": " + detail);
}

Status DialErrno(const Endpoint& endpoint, const std::string& stage,
                 int err) {
  return DialError(endpoint, stage, std::strerror(err));
}

/// Completes a non-blocking connect() within `timeout_seconds`, then
/// restores the fd to blocking mode. Closes the fd on failure.
Status FinishConnect(int fd, const Endpoint& endpoint, const sockaddr* addr,
                     socklen_t addr_len, double timeout_seconds) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, addr, addr_len) != 0 && errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    return DialErrno(endpoint, "connect", err);
  }
  pollfd pfd{fd, POLLOUT, 0};
  const int timeout_ms =
      timeout_seconds <= 0.0 ? -1 : static_cast<int>(timeout_seconds * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) {
    ::close(fd);
    return Status::DeadlineExceeded("dial " + endpoint.ToString() +
                                    ": connect timed out");
  }
  if (ready < 0) {
    const int err = errno;
    ::close(fd);
    return DialErrno(endpoint, "poll", err);
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    const int err = so_error != 0 ? so_error : errno;
    ::close(fd);
    return DialErrno(endpoint, "connect", err);
  }
  ::fcntl(fd, F_SETFL, flags);
  return Status::OK();
}

}  // namespace

std::string Endpoint::ToString() const {
  if (is_unix()) return unix_path;
  return host + ":" + std::to_string(port);
}

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("endpoint must not be empty");
  }
  Endpoint endpoint;
  if (spec.find('/') != std::string::npos) {
    endpoint.unix_path = spec;
    return endpoint;
  }
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "endpoint '" + spec + "': expected HOST:PORT or a Unix socket path");
  }
  endpoint.host = spec.substr(0, colon);
  if (endpoint.host.empty()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "': host must not be empty");
  }
  const std::string port_text = spec.substr(colon + 1);
  long port = 0;
  bool numeric = !port_text.empty();
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      numeric = false;
      break;
    }
    port = port * 10 + (c - '0');
    if (port > 65535) break;
  }
  if (!numeric || port < 1 || port > 65535) {
    return Status::InvalidArgument("endpoint '" + spec + "': port '" +
                                   port_text +
                                   "' must be a number in [1, 65535]");
  }
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<std::vector<Endpoint>> ParseEndpointList(const std::string& csv) {
  std::vector<Endpoint> endpoints;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string entry = csv.substr(start, comma - start);
    if (entry.empty()) {
      return Status::InvalidArgument(
          "endpoint list '" + csv + "': empty entry");
    }
    FPM_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(entry));
    if (endpoint.is_unix()) {
      return Status::InvalidArgument(
          "endpoint list '" + csv + "': '" + entry +
          "' is a Unix socket path; cluster peers must be HOST:PORT");
    }
    endpoints.push_back(std::move(endpoint));
    start = comma + 1;
  }
  return endpoints;
}

Result<int> DialEndpoint(const Endpoint& endpoint, double timeout_seconds) {
  if (endpoint.is_unix()) {
    sockaddr_un addr{};
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      return DialError(endpoint, "connect", "socket path too long");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return DialErrno(endpoint, "socket", errno);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const Status connected =
        FinishConnect(fd, endpoint, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr), timeout_seconds);
    if (!connected.ok()) return connected;
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(endpoint.host.c_str(),
                               std::to_string(endpoint.port).c_str(), &hints,
                               &results);
  if (rc != 0) {
    return DialError(endpoint, "resolve", ::gai_strerror(rc));
  }
  Status last = DialError(endpoint, "resolve", "no addresses");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = DialErrno(endpoint, "socket", errno);
      continue;
    }
    last = FinishConnect(fd, endpoint, ai->ai_addr, ai->ai_addrlen,
                         timeout_seconds);
    if (last.ok()) {
      ::freeaddrinfo(results);
      return fd;
    }
  }
  ::freeaddrinfo(results);
  return last;
}

}  // namespace fpm
