// The cluster coordinator: every fpmd node runs one, and any node can
// accept any query (coordinator/worker symmetry — there is no special
// head node). For a v2 "query" the coordinator
//
//   1. resolves the dataset's content digest (DigestForPath — the same
//      FNV digest the registry and ResultCache key on, read from the
//      packed header or computed over the raw bytes, so packed, FIMI
//      and versioned datasets all route identically),
//   2. places it on the hash ring (Owners = R replica nodes), and
//   3. if this node is an owner, runs the query locally — otherwise
//      probes the owners' ResultCaches (cache_probe: answer without
//      mining or loading anything) and, on miss, forwards the whole
//      query to one owner (shard_query mode "execute"), failing over
//      replica by replica. A forward returns the owner's result
//      verbatim, so the default remote path keeps the byte-identical
//      itemset order contract.
//
// The opt-in scatter path (ExecuteScatter) instead fans SON phase 1/2
// sub-queries across ALL healthy owners and merges through the
// PartitionedMiner math (fpm/cluster/shard_exec.h) — higher throughput
// for cold heavy queries, canonical result order.
//
// Failure policy: a dead replica costs one failover
// (fpm.cluster.failovers) and the next replica is tried; when every
// owner is down the caller falls back to mining locally
// (fpm.cluster.local_fallbacks) — availability degrades to single-node
// behavior, never to an error the single-node daemon would not give.
// Cancellation propagates: the abort callback is checked on every
// transport poll tick, and dropping the peer connection makes the
// remote daemon cancel its job (its connection thread sees the close).

#ifndef FPM_CLUSTER_COORDINATOR_H_
#define FPM_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/cluster/hash_ring.h"
#include "fpm/cluster/membership.h"
#include "fpm/common/status.h"
#include "fpm/service/dataset_registry.h"
#include "fpm/service/json.h"
#include "fpm/service/service.h"

namespace fpm {

struct ClusterOptions {
  /// This node's endpoint ("host:port"); must appear in `peers`.
  std::string self;
  /// The full static cluster (every node passes the same --cluster
  /// list). This — not live health — builds the hash ring, so placement
  /// is identical on every node and never reshuffles on a flap.
  std::vector<std::string> peers;
  /// Replica owners per dataset.
  uint32_t replicas = 2;
  /// Virtual nodes per peer on the ring.
  uint32_t virtual_nodes = ConsistentHashRing::kDefaultVirtualNodes;
  /// Deadline for a cache_probe round trip (cheap, keep tight).
  double probe_deadline_seconds = 1.0;
  /// Deadline for a forwarded query / shard sub-query.
  double peer_deadline_seconds = 30.0;
  /// Health ping sweep period (<= 0 disables the pinger).
  double ping_interval_seconds = 2.0;
  double ping_timeout_seconds = 1.0;
  /// Priority boost a peer applies to shard_query "execute" jobs — a
  /// remote sub-query already paid a network hop and a coordinator
  /// wait, so it jumps the local queue (scheduler priority is larger =
  /// sooner).
  int shard_priority_boost = 10;
};

class Coordinator {
 public:
  /// Peer call transport, injectable for tests. The default dials the
  /// endpoint with PeerClient. `abort` is polled during the call;
  /// returning true cancels it (Status kCancelled).
  using Transport = std::function<Result<std::string>(
      const std::string& endpoint, const std::string& line,
      double deadline_seconds, const std::function<bool()>& abort)>;

  /// Monotonic counters of the coordinator's decisions, mirrored to
  /// fpm.cluster.* metrics and reported by cluster_info.
  struct Counters {
    uint64_t remote_queries = 0;   ///< queries this node did not own
    uint64_t probe_hits = 0;       ///< remote cache answered, no mine
    uint64_t probe_misses = 0;     ///< probes that found nothing
    uint64_t forwards = 0;         ///< whole-query forwards attempted
    uint64_t failovers = 0;        ///< replica attempts after a failure
    uint64_t local_fallbacks = 0;  ///< every owner down, mined locally
    uint64_t scatter_queries = 0;  ///< SON fan-out queries
    uint64_t probe_hits_served = 0;    ///< cache_probe hits we answered
    uint64_t probe_misses_served = 0;  ///< cache_probe misses we answered
  };

  explicit Coordinator(ClusterOptions options, Transport transport = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Starts the membership pinger.
  void Start();

  const ClusterOptions& options() const { return options_; }
  ClusterMembership& membership() { return membership_; }
  const ConsistentHashRing& ring() const { return ring_; }

  /// Content digest of the dataset at `path` — the placement and cache
  /// key. Packed files: the 16-hex digest in the header (no data read);
  /// anything else: FNV-1a over the raw bytes, exactly what the
  /// DatasetRegistry computes on load. Memoized per path.
  Result<std::string> DigestForPath(const std::string& path);

  /// The R replica owners of a digest, primary first (ring order, not
  /// health order).
  std::vector<std::string> OwnersForDigest(const std::string& digest) const;

  /// True when this node is one of the digest's owners (query runs
  /// locally; no cluster hop).
  bool SelfOwns(const std::string& digest) const;

  /// Route-to-owner execution of a query this node does not own: probe
  /// the owners' result caches, then forward to the first owner that
  /// answers, failing over across replicas. The returned response
  /// carries served_by = the answering owner. Unavailable when every
  /// owner failed (caller should fall back to local execution and
  /// record it via NoteLocalFallback).
  Result<MineResponse> ExecuteRemote(const MineRequest& request,
                                     const std::string& digest,
                                     const std::function<bool()>& abort);

  /// Scatter execution: SON phase 1/2 fan-out over all healthy owners,
  /// merged with the PartitionedMiner math. FailedPrecondition when the
  /// query is not task "frequent" or fewer than two owners are healthy
  /// (caller runs locally). Canonical result order.
  Result<MineResponse> ExecuteScatter(const MineRequest& request,
                                      const std::string& digest,
                                      const std::function<bool()>& abort);

  /// Records that a remote execution failed everywhere and the query
  /// was answered by mining locally.
  void NoteLocalFallback();
  /// Records a cache_probe this node answered (the serving side).
  void NoteProbeServed(bool hit);

  Counters counters() const;

  /// The "cluster" JSON section of cluster_info and stats: self,
  /// replicas, per-peer health/latency/ownership (datasets_owned is
  /// computed by placing every registry row's digest), the counters,
  /// and — when `placement_digest` is non-empty — the placement of that
  /// digest. No "ok" key; callers embed it.
  JsonValue InfoJson(const std::vector<DatasetRegistryStats::Dataset>& datasets,
                     const std::string& placement_digest) const;

 private:
  struct AtomicCounters {
    std::atomic<uint64_t> remote_queries{0};
    std::atomic<uint64_t> probe_hits{0};
    std::atomic<uint64_t> probe_misses{0};
    std::atomic<uint64_t> forwards{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> local_fallbacks{0};
    std::atomic<uint64_t> scatter_queries{0};
    std::atomic<uint64_t> probe_hits_served{0};
    std::atomic<uint64_t> probe_misses_served{0};
  };

  /// Owners of `digest` excluding self, healthy ones first (stable
  /// within each class, so ring replica order breaks ties).
  std::vector<std::string> RemoteOwnersHealthyFirst(
      const std::string& digest) const;

  /// One transport call with RTT accounting: success records the RTT
  /// into membership, failure records a peer failure (except
  /// cancellation, which says nothing about the peer).
  Result<std::string> CallPeer(const std::string& endpoint,
                               const std::string& line,
                               double deadline_seconds,
                               const std::function<bool()>& abort);

  ClusterOptions options_;
  Transport transport_;
  ClusterMembership membership_;
  ConsistentHashRing ring_;

  mutable std::mutex digest_mu_;
  std::map<std::string, std::string> digest_by_path_;

  AtomicCounters counters_;
  Counter* failovers_counter_;        // fpm.cluster.failovers
  Counter* remote_queries_counter_;   // fpm.cluster.remote_queries
  Counter* probe_hits_counter_;       // fpm.cluster.probe_hits
  Counter* local_fallbacks_counter_;  // fpm.cluster.local_fallbacks
};

}  // namespace fpm

#endif  // FPM_CLUSTER_COORDINATOR_H_
