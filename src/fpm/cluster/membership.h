// Cluster membership: the static peer list plus live health.
//
// Membership is configuration, not discovery: the peer set is the
// --cluster flag's list, identical on every node, and never changes at
// runtime — that is what keeps ConsistentHashRing placement identical
// everywhere (a flapping peer must not reshuffle ownership). What *is*
// live is health: a pinger thread sends {"op":"ping"} to every remote
// peer on an interval, and the Coordinator reports its own successes
// and failures as queries touch peers, so failover order reacts faster
// than the ping period.
//
// Health semantics: a peer starts healthy (optimistic — the cluster
// usually boots together), turns unhealthy on the first recorded
// failure, and recovers on the first success. The self entry is always
// healthy and never pinged.
//
// Per-peer latency rides along: every successful ping or query RTT is
// recorded into a per-peer WindowedHistogram, and Snapshot() carries
// the 60 s window stats — the per-peer latency surface of the "stats"
// and "cluster_info" protocol ops.

#ifndef FPM_CLUSTER_MEMBERSHIP_H_
#define FPM_CLUSTER_MEMBERSHIP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/obs/windowed.h"

namespace fpm {

class Counter;

class ClusterMembership {
 public:
  struct Options {
    /// This node's endpoint ("host:port"); must be in `peers`.
    std::string self;
    /// The full cluster, self included — every node passes the same
    /// list (the --cluster flag).
    std::vector<std::string> peers;
    /// Ping sweep period; <= 0 disables the pinger thread (health then
    /// moves only on Record{Success,Failure} from query traffic).
    double ping_interval_seconds = 2.0;
    /// Per-ping deadline.
    double ping_timeout_seconds = 1.0;
  };

  /// One peer's live view (Snapshot()).
  struct PeerStatus {
    std::string endpoint;
    bool self = false;
    bool healthy = true;
    uint64_t failures = 0;              ///< total failures ever recorded
    uint64_t consecutive_failures = 0;  ///< since the last success
    uint64_t pings = 0;                 ///< successful pings + queries
    double last_rtt_ms = 0.0;
    WindowedHistogram::Stats rtt_60s;   ///< 60 s RTT window
  };

  /// Ping transport, injectable for tests. The default dials the peer
  /// with PeerClient and sends {"op":"ping"}.
  using PingFn =
      std::function<Status(const std::string& endpoint, double timeout_s)>;

  explicit ClusterMembership(Options options, PingFn ping = {});
  ~ClusterMembership();

  ClusterMembership(const ClusterMembership&) = delete;
  ClusterMembership& operator=(const ClusterMembership&) = delete;

  /// Starts the pinger thread (no-op when disabled or already started).
  void Start();
  /// Stops the pinger (idempotent; the destructor calls it).
  void Stop();

  const std::string& self() const { return options_.self; }
  /// All configured endpoints, self included, in --cluster order.
  const std::vector<std::string>& peers() const { return options_.peers; }

  /// Self is always healthy; unknown endpoints are unhealthy.
  bool IsHealthy(const std::string& endpoint) const;

  /// Records a successful interaction (ping or query) with a peer.
  void RecordSuccess(const std::string& endpoint, double rtt_ms);
  /// Records a failed interaction; the peer turns unhealthy.
  void RecordFailure(const std::string& endpoint);

  /// One synchronous ping sweep over the remote peers (the pinger
  /// thread's body; callable directly from tests).
  void PingOnce();

  std::vector<PeerStatus> Snapshot() const;

 private:
  struct Peer {
    std::string endpoint;
    bool self = false;
    bool healthy = true;
    uint64_t failures = 0;
    uint64_t consecutive_failures = 0;
    uint64_t successes = 0;
    double last_rtt_ms = 0.0;
    std::unique_ptr<WindowedHistogram> rtt;
  };

  Peer* FindLocked(const std::string& endpoint);

  Options options_;
  PingFn ping_;
  mutable std::mutex mu_;
  std::vector<Peer> peers_;

  std::thread pinger_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;

  Counter* pings_counter_;          // fpm.cluster.pings
  Counter* peer_failures_counter_;  // fpm.cluster.peer_failures
};

}  // namespace fpm

#endif  // FPM_CLUSTER_MEMBERSHIP_H_
