// Endpoint addressing shared by every cluster-facing dialer: the
// PeerClient (coordinator fan-out), fpm_client --endpoint and the
// fpmd TCP listener all parse and dial through here, so "what does an
// address look like" and "how long may a connect take" have exactly one
// answer.
//
// Two spellings:
//   host:port   a TCP endpoint ("127.0.0.1:7101", "node3:7100"). The
//               host may be a name or a numeric address; the port must
//               be in [1, 65535]. This is the only spelling cluster
//               peer lists accept.
//   <path>      a Unix-domain socket path — anything containing '/'
//               (e.g. "/tmp/fpmd.sock", "./fpmd.sock").
//
// Parse errors are part of the contract (fpm_client prints them
// verbatim and tests/cluster/endpoint_test.cc pins them), so change the
// wording deliberately.

#ifndef FPM_CLUSTER_ENDPOINT_H_
#define FPM_CLUSTER_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/common/status.h"

namespace fpm {

/// One dialable address: TCP (host + port) or Unix-domain (path).
struct Endpoint {
  std::string host;       ///< TCP host; empty for Unix endpoints
  uint16_t port = 0;      ///< TCP port; 0 for Unix endpoints
  std::string unix_path;  ///< non-empty selects a Unix-domain socket

  bool is_unix() const { return !unix_path.empty(); }

  /// The canonical spelling ("host:port" or the path) — used in error
  /// messages, metrics labels and the ring's node names.
  std::string ToString() const;

  bool operator==(const Endpoint&) const = default;
};

/// Parses one endpoint spec (see the header comment for the grammar).
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Parses a comma-separated list of TCP endpoints — the --cluster flag.
/// Every entry must be host:port; Unix paths are rejected (a cluster
/// peer must be reachable from other machines).
Result<std::vector<Endpoint>> ParseEndpointList(const std::string& csv);

/// Connects to `endpoint` and returns the connected (blocking) fd.
/// The connect itself is non-blocking with a `timeout_seconds` poll so
/// a dead TCP peer fails fast instead of hanging in SYN retries.
/// Errors name the endpoint: "dial 127.0.0.1:7101: connect: ...".
Result<int> DialEndpoint(const Endpoint& endpoint, double timeout_seconds);

}  // namespace fpm

#endif  // FPM_CLUSTER_ENDPOINT_H_
