#include "fpm/cluster/peer_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace fpm {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsUntil(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

Status PeerError(const Endpoint& endpoint, const std::string& what) {
  return Status::Unavailable("peer " + endpoint.ToString() + ": " + what);
}

}  // namespace

Result<std::string> PeerClient::Call(const Endpoint& endpoint,
                                     const std::string& line,
                                     double deadline_seconds,
                                     const AbortFn& abort) {
  const bool bounded = deadline_seconds > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             bounded ? deadline_seconds : 0.0));
  const auto expired = [&] { return bounded && SecondsUntil(deadline) <= 0; };
  const auto deadline_status = [&] {
    return Status::DeadlineExceeded("peer " + endpoint.ToString() +
                                    ": deadline exceeded");
  };
  const auto cancelled_status = [&] {
    return Status::Cancelled("peer " + endpoint.ToString() +
                             ": call aborted");
  };

  if (abort && abort()) return cancelled_status();
  // The connect gets the remaining budget, capped so the abort hook
  // stays responsive even while a TCP connect is pending.
  double connect_budget = bounded ? SecondsUntil(deadline) : 5.0;
  if (connect_budget <= 0.0) return deadline_status();
  FPM_ASSIGN_OR_RETURN(const int fd, DialEndpoint(endpoint, connect_budget));

  std::string request = line;
  request.push_back('\n');
  size_t sent = 0;
  while (sent < request.size()) {
    if (expired()) {
      ::close(fd);
      return deadline_status();
    }
    if (abort && abort()) {
      ::close(fd);
      return cancelled_status();
    }
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      ::close(fd);
      return PeerError(endpoint, std::string("send: ") + std::strerror(err));
    }
    sent += static_cast<size_t>(n);
  }

  std::string buffer;
  char chunk[4096];
  while (true) {
    const size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      ::close(fd);
      buffer.resize(newline);
      return buffer;
    }
    if (expired()) {
      ::close(fd);
      return deadline_status();
    }
    if (abort && abort()) {
      ::close(fd);
      return cancelled_status();
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) {
      const int err = errno;
      ::close(fd);
      return PeerError(endpoint, std::string("poll: ") + std::strerror(err));
    }
    if (ready == 0) continue;  // tick: re-check abort/deadline
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      ::close(fd);
      return PeerError(endpoint, "connection closed before response");
    }
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      return PeerError(endpoint, std::string("recv: ") + std::strerror(err));
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace fpm
