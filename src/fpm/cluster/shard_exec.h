// Shard-local execution + coordinator-side merge of a distributed
// two-phase (SON / Savasere) mine — PartitionedMiner's math split at a
// network boundary.
//
// The single-process PartitionedMiner proves the merge: mine each of k
// contiguous partitions at a proportionally scaled local threshold
// (any globally frequent itemset is locally frequent somewhere, so the
// union of local results is a complete candidate set), then count the
// candidates exactly over the full database. Distributed, the same
// shape becomes:
//
//   phase 1  each owner p mines partition [n*p/k, n*(p+1)/k) of the
//            shared dataset at ceil(S * w_p / W)      (shard_query
//            mode "mine"; MineShardPartition here)
//   merge    the coordinator unions + canonically sorts the local
//            results into the candidate list            (MergeShardCandidates)
//   phase 2  each owner counts the candidates over its own partition
//            (shard_query mode "count"; CountShardPartition) — the
//            partitions tile the database, so summing per-shard counts
//            gives exact global supports
//   filter   the coordinator keeps candidates with total >= S
//            (MergeShardCounts), emitting canonical order.
//
// Output-order contract: the merged result is the canonical (sorted)
// itemset order, not a kernel's emission order — the same documented
// deviation as the cache reseed path (DESIGN.md §16); the itemset/
// support *set* is exactly equal to a direct mine. The default
// cluster path (route-to-owner) keeps byte-identical emission order;
// scatter is the opt-in throughput trade.
//
// Every function here is pure over a Database, so the equivalence
// tests (tests/cluster/shard_exec_test.cc) and the in-process
// bench_cluster_fanout exercise the exact code the daemon runs for
// shard_query, without sockets.

#ifndef FPM_CLUSTER_SHARD_EXEC_H_
#define FPM_CLUSTER_SHARD_EXEC_H_

#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/common/status.h"
#include "fpm/core/patterns.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// Which contiguous slice of the database a shard operation covers.
struct ShardSlice {
  uint32_t index = 0;  ///< partition number, < count
  uint32_t count = 1;  ///< total partitions (the fan-out width)
};

/// Materializes the slice's transactions as their own Database.
/// `part_weight` (optional) receives the slice's total weight.
Database BuildShardPartition(const Database& db, ShardSlice slice,
                             Support* part_weight = nullptr);

/// Phase 1 for one shard: mines the slice at the ceil-scaled local
/// threshold max(1, ceil(min_support * part_weight / total_weight)) —
/// identical to PartitionedMiner's per-partition mine. Returns the
/// local frequent itemsets (candidate contributions). An empty slice
/// returns an empty list.
Result<std::vector<CollectingSink::Entry>> MineShardPartition(
    const Database& db, ShardSlice slice, Support min_support,
    Algorithm algorithm, PatternSet patterns);

/// Phase 2 for one shard: exact supports of `candidates` over the
/// slice, in candidate order. Candidate itemsets need not be
/// internally sorted (wire input); they are normalized before the trie
/// walk.
Result<std::vector<Support>> CountShardPartition(
    const Database& db, ShardSlice slice,
    const std::vector<Itemset>& candidates);

/// Coordinator-side: unions per-shard phase-1 results into the
/// deduplicated, canonically sorted candidate list.
std::vector<Itemset> MergeShardCandidates(
    std::vector<std::vector<CollectingSink::Entry>> locals);

/// Coordinator-side: sums per-shard counts (one vector per shard, each
/// candidate-order aligned) and keeps candidates meeting the global
/// threshold, canonical order.
std::vector<CollectingSink::Entry> MergeShardCounts(
    const std::vector<Itemset>& candidates,
    const std::vector<std::vector<Support>>& per_shard,
    Support min_support);

}  // namespace fpm

#endif  // FPM_CLUSTER_SHARD_EXEC_H_
