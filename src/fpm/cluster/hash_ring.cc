#include "fpm/cluster/hash_ring.h"

#include <algorithm>

namespace fpm {

namespace {

/// Finalizing mixer (splitmix64's). FNV-1a alone avalanches poorly on
/// short, similar inputs ("host:port#3" vs "host:port#4"), which clumps
/// virtual-node points on the ring and blows the 1.25 balance bound.
/// Every ring point — virtual nodes and key lookups alike — goes
/// through the same mix, so placement stays a pure function of HashKey.
uint64_t MixPoint(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

uint64_t ConsistentHashRing::HashKey(const std::string& key) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ConsistentHashRing::ConsistentHashRing(std::vector<std::string> nodes,
                                       uint32_t virtual_nodes)
    : nodes_(std::move(nodes)),
      virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  Rebuild();
}

void ConsistentHashRing::AddNode(const std::string& node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) return;
  nodes_.insert(it, node);
  Rebuild();
}

void ConsistentHashRing::RemoveNode(const std::string& node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return;
  nodes_.erase(it);
  Rebuild();
}

bool ConsistentHashRing::HasNode(const std::string& node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

void ConsistentHashRing::Rebuild() {
  ring_.clear();
  ring_.reserve(nodes_.size() * virtual_nodes_);
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    for (uint32_t v = 0; v < virtual_nodes_; ++v) {
      ring_.emplace_back(MixPoint(HashKey(nodes_[n] + "#" + std::to_string(v))),
                         n);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<std::string> ConsistentHashRing::Owners(
    const std::string& key, uint32_t replicas) const {
  std::vector<std::string> owners;
  if (ring_.empty() || replicas == 0) return owners;
  const uint32_t want =
      std::min<uint32_t>(replicas, static_cast<uint32_t>(nodes_.size()));
  const uint64_t point = MixPoint(HashKey(key));
  // First ring entry strictly after the key's point, wrapping.
  size_t start = std::upper_bound(ring_.begin(), ring_.end(),
                                  std::make_pair(point, UINT32_MAX)) -
                 ring_.begin();
  std::vector<bool> taken(nodes_.size(), false);
  for (size_t step = 0; step < ring_.size() && owners.size() < want; ++step) {
    const uint32_t node = ring_[(start + step) % ring_.size()].second;
    if (taken[node]) continue;
    taken[node] = true;
    owners.push_back(nodes_[node]);
  }
  return owners;
}

std::string ConsistentHashRing::PrimaryOwner(const std::string& key) const {
  std::vector<std::string> owners = Owners(key, 1);
  return owners.empty() ? std::string() : std::move(owners[0]);
}

}  // namespace fpm
