#include "fpm/cluster/shard_exec.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "fpm/algo/candidate_trie.h"
#include "fpm/core/mine.h"

namespace fpm {

namespace {

uint64_t HashItemset(const Itemset& set) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : set) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

struct ItemsetHash {
  size_t operator()(const Itemset& set) const {
    return static_cast<size_t>(HashItemset(set));
  }
};

Status ValidateSlice(ShardSlice slice) {
  if (slice.count < 1 || slice.index >= slice.count) {
    return Status::InvalidArgument(
        "shard slice index " + std::to_string(slice.index) +
        " out of range for count " + std::to_string(slice.count));
  }
  return Status::OK();
}

}  // namespace

Database BuildShardPartition(const Database& db, ShardSlice slice,
                             Support* part_weight) {
  // The same contiguous split as PartitionedMiner: [n*p/k, n*(p+1)/k).
  const size_t n = db.num_transactions();
  const size_t begin = n * slice.index / slice.count;
  const size_t end = n * (slice.index + 1) / slice.count;
  DatabaseBuilder builder;
  Support weight = 0;
  for (size_t t = begin; t < end; ++t) {
    builder.AddTransaction(db.transaction(static_cast<Tid>(t)),
                           db.weight(static_cast<Tid>(t)));
    weight += db.weight(static_cast<Tid>(t));
  }
  if (part_weight != nullptr) *part_weight = weight;
  return builder.Build();
}

Result<std::vector<CollectingSink::Entry>> MineShardPartition(
    const Database& db, ShardSlice slice, Support min_support,
    Algorithm algorithm, PatternSet patterns) {
  FPM_RETURN_IF_ERROR(ValidateSlice(slice));
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  Support part_weight = 0;
  Database part = BuildShardPartition(db, slice, &part_weight);
  if (part_weight == 0) return std::vector<CollectingSink::Entry>{};

  // ceil(min_support * part_weight / total_weight), at least 1 — the
  // SON local threshold; completeness of the candidate union depends
  // on this exact rounding.
  const Support total_weight = db.total_weight();
  const uint64_t scaled =
      (static_cast<uint64_t>(min_support) * part_weight + total_weight - 1) /
      total_weight;
  const Support local_support = scaled < 1 ? 1 : static_cast<Support>(scaled);

  FPM_ASSIGN_OR_RETURN(std::unique_ptr<Miner> miner,
                       CreateMiner(algorithm, patterns));
  CollectingSink sink;
  FPM_RETURN_IF_ERROR(miner->Mine(part, local_support, &sink).status());
  return std::move(sink.mutable_results());
}

Result<std::vector<Support>> CountShardPartition(
    const Database& db, ShardSlice slice,
    const std::vector<Itemset>& candidates) {
  FPM_RETURN_IF_ERROR(ValidateSlice(slice));
  std::vector<Support> counts(candidates.size(), 0);
  if (candidates.empty()) return counts;

  CandidateTrie trie;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].empty()) {
      return Status::InvalidArgument("candidate " + std::to_string(i) +
                                     " is empty");
    }
    Itemset sorted = candidates[i];
    std::sort(sorted.begin(), sorted.end());
    trie.Insert(sorted, static_cast<uint32_t>(i));
  }

  const size_t n = db.num_transactions();
  const size_t begin = n * slice.index / slice.count;
  const size_t end = n * (slice.index + 1) / slice.count;
  std::vector<Item> sorted_tx;
  for (size_t t = begin; t < end; ++t) {
    const auto tx = db.transaction(static_cast<Tid>(t));
    sorted_tx.assign(tx.begin(), tx.end());
    std::sort(sorted_tx.begin(), sorted_tx.end());
    trie.CountTransaction(sorted_tx, db.weight(static_cast<Tid>(t)), &counts);
  }
  return counts;
}

std::vector<Itemset> MergeShardCandidates(
    std::vector<std::vector<CollectingSink::Entry>> locals) {
  std::unordered_set<Itemset, ItemsetHash> unioned;
  for (std::vector<CollectingSink::Entry>& local : locals) {
    for (CollectingSink::Entry& entry : local) {
      unioned.insert(std::move(entry.first));
    }
  }
  std::vector<Itemset> ordered(unioned.begin(), unioned.end());
  std::sort(ordered.begin(), ordered.end());
  return ordered;
}

std::vector<CollectingSink::Entry> MergeShardCounts(
    const std::vector<Itemset>& candidates,
    const std::vector<std::vector<Support>>& per_shard,
    Support min_support) {
  std::vector<CollectingSink::Entry> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    Support total = 0;
    for (const std::vector<Support>& counts : per_shard) {
      if (i < counts.size()) total += counts[i];
    }
    if (total >= min_support) out.emplace_back(candidates[i], total);
  }
  return out;
}

}  // namespace fpm
