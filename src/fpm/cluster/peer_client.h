// One-shot peer RPC over the fpmd wire protocol: dial, send one
// newline-terminated JSON request, read one response line, close.
//
// The call is bounded two ways:
//   deadline_seconds — the whole call (connect + send + receive) must
//       finish inside it, or DEADLINE_EXCEEDED. This is the per-peer
//       deadline the Coordinator's replica-failover loop relies on: a
//       dead owner costs one deadline, not a hang.
//   abort            — polled every ~50 ms while waiting; returning
//       true cancels the call with CANCELLED and closes the
//       connection. Closing is the cancellation *propagation*: the
//       remote fpmd's connection thread sees the disconnect through
//       its MSG_PEEK poll and cancels the in-flight job, so an
//       upstream client abandoning a query stops the whole fan-out
//       within one kernel frame on every node it touched.
//
// Connection-per-call keeps failure containment trivial (a wedged peer
// can never corrupt a shared connection's framing); at cluster fan-out
// rates the extra local connect is noise next to mining. Pooled
// keep-alive connections are a possible follow-on (DESIGN.md §19).

#ifndef FPM_CLUSTER_PEER_CLIENT_H_
#define FPM_CLUSTER_PEER_CLIENT_H_

#include <functional>
#include <string>

#include "fpm/cluster/endpoint.h"
#include "fpm/common/status.h"

namespace fpm {

class PeerClient {
 public:
  /// Polled while waiting; true aborts the call (see header comment).
  using AbortFn = std::function<bool()>;

  /// Sends `line` (newline appended) to `endpoint` and returns the
  /// response line (newline stripped). `deadline_seconds` <= 0 means
  /// no deadline (the abort hook is then the only bound).
  static Result<std::string> Call(const Endpoint& endpoint,
                                  const std::string& line,
                                  double deadline_seconds,
                                  const AbortFn& abort = {});
};

}  // namespace fpm

#endif  // FPM_CLUSTER_PEER_CLIENT_H_
