// Consistent-hash placement of datasets onto cluster nodes.
//
// Every node contributes `virtual_nodes` points to a 64-bit ring
// (FNV-1a of "node#i", then a splitmix64 finalizer — see MixPoint in
// the .cc); a key (the dataset's FNV content digest — the
// same digest packed headers, FIMI loads and version chains share, so
// every storage path routes identically) hashes to a point and its R
// owners are the first R *distinct* nodes walking clockwise. The
// properties the cluster relies on, each pinned by
// tests/cluster/hash_ring_test.cc:
//
//   Determinism  — placement is a pure function of the node-name set
//                  (not insertion order, not process history), so every
//                  node computes the same owners and restarts change
//                  nothing.
//   Balance      — 64 virtual nodes keep the max/mean shard load
//                  within ~1.25 (the Zymbler-style partition-balance
//                  bound ROADMAP asks for).
//   Minimal move — adding or removing a node only remaps keys adjacent
//                  to its virtual points (the rendezvous/consistent
//                  rebalance property): a leave moves only the keys the
//                  leaver owned, a join steals only keys the joiner now
//                  owns.
//
// The ring is placement policy only: it never dials anything and holds
// plain node-name strings ("host:port"). Health is layered on top by
// the Coordinator — the ring is built from the *configured* peer list,
// never the live one, so a flapping peer does not reshuffle placement;
// it is only skipped in failover order.

#ifndef FPM_CLUSTER_HASH_RING_H_
#define FPM_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fpm {

class ConsistentHashRing {
 public:
  /// Default virtual-node count; enough for a max/mean load ratio of
  /// ~1.25 on small clusters (see BalanceBound in the tests).
  static constexpr uint32_t kDefaultVirtualNodes = 64;

  explicit ConsistentHashRing(std::vector<std::string> nodes = {},
                              uint32_t virtual_nodes = kDefaultVirtualNodes);

  /// Adds a node (no-op when present). O(total vnodes) rebuild —
  /// membership changes are rare next to lookups.
  void AddNode(const std::string& node);

  /// Removes a node (no-op when absent).
  void RemoveNode(const std::string& node);

  bool HasNode(const std::string& node) const;

  /// The first `replicas` distinct nodes clockwise from the key's ring
  /// point — the owner set, primary first. Fewer when the ring has
  /// fewer nodes; empty on an empty ring.
  std::vector<std::string> Owners(const std::string& key,
                                  uint32_t replicas) const;

  /// Owners(key, 1)[0]; empty string on an empty ring.
  std::string PrimaryOwner(const std::string& key) const;

  /// Member nodes, sorted (the canonical form determinism relies on).
  const std::vector<std::string>& nodes() const { return nodes_; }
  uint32_t virtual_nodes() const { return virtual_nodes_; }

  /// FNV-1a 64 — the ring's hash, exposed so tests can build adversarial
  /// keys. Matches the item hashing convention used across the repo.
  static uint64_t HashKey(const std::string& key);

 private:
  void Rebuild();

  std::vector<std::string> nodes_;  // sorted, unique
  uint32_t virtual_nodes_;
  /// (point hash, index into nodes_), sorted by hash then index so ties
  /// break deterministically.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace fpm

#endif  // FPM_CLUSTER_HASH_RING_H_
