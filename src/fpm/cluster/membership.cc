#include "fpm/cluster/membership.h"

#include <chrono>
#include <utility>

#include "fpm/cluster/peer_client.h"
#include "fpm/obs/metrics.h"

namespace fpm {

namespace {

Status DefaultPing(const std::string& endpoint, double timeout_s) {
  FPM_ASSIGN_OR_RETURN(Endpoint parsed, ParseEndpoint(endpoint));
  FPM_ASSIGN_OR_RETURN(std::string reply,
                       PeerClient::Call(parsed, "{\"op\":\"ping\"}",
                                        timeout_s));
  if (reply.find("\"ok\":true") == std::string::npos) {
    return Status::Unavailable("peer " + endpoint + ": ping rejected: " +
                               reply);
  }
  return Status::OK();
}

}  // namespace

ClusterMembership::ClusterMembership(Options options, PingFn ping)
    : options_(std::move(options)),
      ping_(ping ? std::move(ping) : DefaultPing) {
  peers_.reserve(options_.peers.size());
  for (const std::string& endpoint : options_.peers) {
    Peer peer;
    peer.endpoint = endpoint;
    peer.self = endpoint == options_.self;
    peer.rtt = std::make_unique<WindowedHistogram>();
    peers_.push_back(std::move(peer));
  }
  MetricsRegistry& m = MetricsRegistry::Default();
  pings_counter_ = m.GetCounter("fpm.cluster.pings");
  peer_failures_counter_ = m.GetCounter("fpm.cluster.peer_failures");
}

ClusterMembership::~ClusterMembership() { Stop(); }

void ClusterMembership::Start() {
  if (started_ || options_.ping_interval_seconds <= 0.0) return;
  bool has_remote = false;
  for (const Peer& peer : peers_) has_remote |= !peer.self;
  if (!has_remote) return;
  started_ = true;
  pinger_ = std::thread([this] {
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(options_.ping_interval_seconds));
    std::unique_lock<std::mutex> lock(stop_mu_);
    while (!stopping_) {
      lock.unlock();
      PingOnce();
      lock.lock();
      stop_cv_.wait_for(lock, interval, [this] { return stopping_; });
    }
  });
}

void ClusterMembership::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (pinger_.joinable()) pinger_.join();
  started_ = false;
}

ClusterMembership::Peer* ClusterMembership::FindLocked(
    const std::string& endpoint) {
  for (Peer& peer : peers_) {
    if (peer.endpoint == endpoint) return &peer;
  }
  return nullptr;
}

bool ClusterMembership::IsHealthy(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Peer& peer : peers_) {
    if (peer.endpoint == endpoint) return peer.self || peer.healthy;
  }
  return false;
}

void ClusterMembership::RecordSuccess(const std::string& endpoint,
                                      double rtt_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Peer* peer = FindLocked(endpoint);
  if (peer == nullptr) return;
  peer->healthy = true;
  peer->consecutive_failures = 0;
  ++peer->successes;
  peer->last_rtt_ms = rtt_ms;
  peer->rtt->Record(rtt_ms);
  pings_counter_->Increment();
}

void ClusterMembership::RecordFailure(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  Peer* peer = FindLocked(endpoint);
  if (peer == nullptr || peer->self) return;
  peer->healthy = false;
  ++peer->failures;
  ++peer->consecutive_failures;
  peer_failures_counter_->Increment();
}

void ClusterMembership::PingOnce() {
  // Snapshot the remote endpoints outside the lock; pings are slow.
  std::vector<std::string> remotes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Peer& peer : peers_) {
      if (!peer.self) remotes.push_back(peer.endpoint);
    }
  }
  for (const std::string& endpoint : remotes) {
    const auto start = std::chrono::steady_clock::now();
    const Status status = ping_(endpoint, options_.ping_timeout_seconds);
    const double rtt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (status.ok()) {
      RecordSuccess(endpoint, rtt_ms);
    } else {
      RecordFailure(endpoint);
    }
  }
}

std::vector<ClusterMembership::PeerStatus> ClusterMembership::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PeerStatus> out;
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    PeerStatus status;
    status.endpoint = peer.endpoint;
    status.self = peer.self;
    status.healthy = peer.self || peer.healthy;
    status.failures = peer.failures;
    status.consecutive_failures = peer.consecutive_failures;
    status.pings = peer.successes;
    status.last_rtt_ms = peer.last_rtt_ms;
    status.rtt_60s = peer.rtt->Query(60);
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace fpm
