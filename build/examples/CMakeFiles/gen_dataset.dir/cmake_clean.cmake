file(REMOVE_RECURSE
  "CMakeFiles/gen_dataset.dir/gen_dataset.cpp.o"
  "CMakeFiles/gen_dataset.dir/gen_dataset.cpp.o.d"
  "gen_dataset"
  "gen_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
