# Empty dependencies file for pattern_tuning.
# This may be replaced when dependencies are built.
