file(REMOVE_RECURSE
  "CMakeFiles/pattern_tuning.dir/pattern_tuning.cpp.o"
  "CMakeFiles/pattern_tuning.dir/pattern_tuning.cpp.o.d"
  "pattern_tuning"
  "pattern_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
