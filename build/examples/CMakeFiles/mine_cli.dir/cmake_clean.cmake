file(REMOVE_RECURSE
  "CMakeFiles/mine_cli.dir/mine_cli.cpp.o"
  "CMakeFiles/mine_cli.dir/mine_cli.cpp.o.d"
  "mine_cli"
  "mine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
