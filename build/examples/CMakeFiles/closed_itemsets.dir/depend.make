# Empty dependencies file for closed_itemsets.
# This may be replaced when dependencies are built.
