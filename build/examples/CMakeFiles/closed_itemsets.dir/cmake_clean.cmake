file(REMOVE_RECURSE
  "CMakeFiles/closed_itemsets.dir/closed_itemsets.cpp.o"
  "CMakeFiles/closed_itemsets.dir/closed_itemsets.cpp.o.d"
  "closed_itemsets"
  "closed_itemsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_itemsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
