# Empty dependencies file for webdocs_like.
# This may be replaced when dependencies are built.
