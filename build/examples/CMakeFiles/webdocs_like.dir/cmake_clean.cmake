file(REMOVE_RECURSE
  "CMakeFiles/webdocs_like.dir/webdocs_like.cpp.o"
  "CMakeFiles/webdocs_like.dir/webdocs_like.cpp.o.d"
  "webdocs_like"
  "webdocs_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdocs_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
