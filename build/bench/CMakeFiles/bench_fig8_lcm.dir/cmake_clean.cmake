file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_lcm.dir/bench_fig8_lcm.cc.o"
  "CMakeFiles/bench_fig8_lcm.dir/bench_fig8_lcm.cc.o.d"
  "bench_fig8_lcm"
  "bench_fig8_lcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_lcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
