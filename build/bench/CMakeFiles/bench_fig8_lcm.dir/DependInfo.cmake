
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_lcm.cc" "bench/CMakeFiles/bench_fig8_lcm.dir/bench_fig8_lcm.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_lcm.dir/bench_fig8_lcm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fpm_bench_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_bitvec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
