file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_supernode.dir/bench_ablation_supernode.cc.o"
  "CMakeFiles/bench_ablation_supernode.dir/bench_ablation_supernode.cc.o.d"
  "bench_ablation_supernode"
  "bench_ablation_supernode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_supernode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
