file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_eclat.dir/bench_fig8_eclat.cc.o"
  "CMakeFiles/bench_fig8_eclat.dir/bench_fig8_eclat.cc.o.d"
  "bench_fig8_eclat"
  "bench_fig8_eclat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_eclat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
