file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_patterns.dir/bench_micro_patterns.cc.o"
  "CMakeFiles/bench_micro_patterns.dir/bench_micro_patterns.cc.o.d"
  "bench_micro_patterns"
  "bench_micro_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
