# Empty dependencies file for bench_micro_patterns.
# This may be replaced when dependencies are built.
