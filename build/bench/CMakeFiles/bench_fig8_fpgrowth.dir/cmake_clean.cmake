file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fpgrowth.dir/bench_fig8_fpgrowth.cc.o"
  "CMakeFiles/bench_fig8_fpgrowth.dir/bench_fig8_fpgrowth.cc.o.d"
  "bench_fig8_fpgrowth"
  "bench_fig8_fpgrowth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fpgrowth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
