file(REMOVE_RECURSE
  "libfpm_bench_lib.a"
)
