file(REMOVE_RECURSE
  "CMakeFiles/fpm_bench_lib.dir/fig8_runner.cc.o"
  "CMakeFiles/fpm_bench_lib.dir/fig8_runner.cc.o.d"
  "libfpm_bench_lib.a"
  "libfpm_bench_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_bench_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
