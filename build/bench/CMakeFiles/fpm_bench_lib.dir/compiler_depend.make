# Empty compiler generated dependencies file for fpm_bench_lib.
# This may be replaced when dependencies are built.
