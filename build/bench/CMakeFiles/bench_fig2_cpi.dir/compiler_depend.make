# Empty compiler generated dependencies file for bench_fig2_cpi.
# This may be replaced when dependencies are built.
