# Empty compiler generated dependencies file for bench_simcache_locality.
# This may be replaced when dependencies are built.
