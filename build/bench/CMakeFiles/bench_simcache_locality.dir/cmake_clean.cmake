file(REMOVE_RECURSE
  "CMakeFiles/bench_simcache_locality.dir/bench_simcache_locality.cc.o"
  "CMakeFiles/bench_simcache_locality.dir/bench_simcache_locality.cc.o.d"
  "bench_simcache_locality"
  "bench_simcache_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simcache_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
