
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpm/algo/apriori.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/apriori.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/apriori.cc.o.d"
  "/root/repo/src/fpm/algo/bruteforce.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/bruteforce.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/bruteforce.cc.o.d"
  "/root/repo/src/fpm/algo/candidate_trie.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/candidate_trie.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/candidate_trie.cc.o.d"
  "/root/repo/src/fpm/algo/eclat/eclat_miner.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/eclat/eclat_miner.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/eclat/eclat_miner.cc.o.d"
  "/root/repo/src/fpm/algo/fpgrowth/fpgrowth_miner.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fpgrowth_miner.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fpgrowth_miner.cc.o.d"
  "/root/repo/src/fpm/algo/fpgrowth/fptree.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fptree.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fptree.cc.o.d"
  "/root/repo/src/fpm/algo/hmine.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/hmine.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/hmine.cc.o.d"
  "/root/repo/src/fpm/algo/lcm/closed_miner.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/lcm/closed_miner.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/lcm/closed_miner.cc.o.d"
  "/root/repo/src/fpm/algo/lcm/lcm_miner.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/lcm/lcm_miner.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/lcm/lcm_miner.cc.o.d"
  "/root/repo/src/fpm/algo/postprocess.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/postprocess.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/postprocess.cc.o.d"
  "/root/repo/src/fpm/algo/rules.cc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/rules.cc.o" "gcc" "src/CMakeFiles/fpm_algo.dir/fpm/algo/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpm_bitvec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
