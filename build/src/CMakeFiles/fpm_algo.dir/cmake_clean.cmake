file(REMOVE_RECURSE
  "CMakeFiles/fpm_algo.dir/fpm/algo/apriori.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/apriori.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/bruteforce.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/bruteforce.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/candidate_trie.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/candidate_trie.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/eclat/eclat_miner.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/eclat/eclat_miner.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fpgrowth_miner.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fpgrowth_miner.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fptree.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/fpgrowth/fptree.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/hmine.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/hmine.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/lcm/closed_miner.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/lcm/closed_miner.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/lcm/lcm_miner.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/lcm/lcm_miner.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/postprocess.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/postprocess.cc.o.d"
  "CMakeFiles/fpm_algo.dir/fpm/algo/rules.cc.o"
  "CMakeFiles/fpm_algo.dir/fpm/algo/rules.cc.o.d"
  "libfpm_algo.a"
  "libfpm_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
