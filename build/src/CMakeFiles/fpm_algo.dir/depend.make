# Empty dependencies file for fpm_algo.
# This may be replaced when dependencies are built.
