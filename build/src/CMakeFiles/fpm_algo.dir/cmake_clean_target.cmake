file(REMOVE_RECURSE
  "libfpm_algo.a"
)
