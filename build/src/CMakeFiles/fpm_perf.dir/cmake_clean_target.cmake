file(REMOVE_RECURSE
  "libfpm_perf.a"
)
