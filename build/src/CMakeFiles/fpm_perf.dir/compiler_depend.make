# Empty compiler generated dependencies file for fpm_perf.
# This may be replaced when dependencies are built.
