
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpm/perf/harness.cc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/harness.cc.o" "gcc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/harness.cc.o.d"
  "/root/repo/src/fpm/perf/perf_counters.cc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/perf_counters.cc.o" "gcc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/perf_counters.cc.o.d"
  "/root/repo/src/fpm/perf/platform_info.cc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/platform_info.cc.o" "gcc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/platform_info.cc.o.d"
  "/root/repo/src/fpm/perf/report.cc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/report.cc.o" "gcc" "src/CMakeFiles/fpm_perf.dir/fpm/perf/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpm_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_bitvec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
