file(REMOVE_RECURSE
  "CMakeFiles/fpm_perf.dir/fpm/perf/harness.cc.o"
  "CMakeFiles/fpm_perf.dir/fpm/perf/harness.cc.o.d"
  "CMakeFiles/fpm_perf.dir/fpm/perf/perf_counters.cc.o"
  "CMakeFiles/fpm_perf.dir/fpm/perf/perf_counters.cc.o.d"
  "CMakeFiles/fpm_perf.dir/fpm/perf/platform_info.cc.o"
  "CMakeFiles/fpm_perf.dir/fpm/perf/platform_info.cc.o.d"
  "CMakeFiles/fpm_perf.dir/fpm/perf/report.cc.o"
  "CMakeFiles/fpm_perf.dir/fpm/perf/report.cc.o.d"
  "libfpm_perf.a"
  "libfpm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
