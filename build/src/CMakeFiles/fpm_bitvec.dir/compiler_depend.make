# Empty compiler generated dependencies file for fpm_bitvec.
# This may be replaced when dependencies are built.
