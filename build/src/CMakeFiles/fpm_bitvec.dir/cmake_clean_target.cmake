file(REMOVE_RECURSE
  "libfpm_bitvec.a"
)
