
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpm/bitvec/bitvector.cc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/bitvector.cc.o" "gcc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/bitvector.cc.o.d"
  "/root/repo/src/fpm/bitvec/intersect.cc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/intersect.cc.o" "gcc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/intersect.cc.o.d"
  "/root/repo/src/fpm/bitvec/popcount.cc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount.cc.o" "gcc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount.cc.o.d"
  "/root/repo/src/fpm/bitvec/popcount_avx2.cc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount_avx2.cc.o" "gcc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount_avx2.cc.o.d"
  "/root/repo/src/fpm/bitvec/tidlist.cc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/tidlist.cc.o" "gcc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/tidlist.cc.o.d"
  "/root/repo/src/fpm/bitvec/vertical.cc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/vertical.cc.o" "gcc" "src/CMakeFiles/fpm_bitvec.dir/fpm/bitvec/vertical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
