file(REMOVE_RECURSE
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/bitvector.cc.o"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/bitvector.cc.o.d"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/intersect.cc.o"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/intersect.cc.o.d"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount.cc.o"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount.cc.o.d"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount_avx2.cc.o"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/popcount_avx2.cc.o.d"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/tidlist.cc.o"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/tidlist.cc.o.d"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/vertical.cc.o"
  "CMakeFiles/fpm_bitvec.dir/fpm/bitvec/vertical.cc.o.d"
  "libfpm_bitvec.a"
  "libfpm_bitvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_bitvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
