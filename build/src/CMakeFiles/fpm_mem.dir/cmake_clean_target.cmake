file(REMOVE_RECURSE
  "libfpm_mem.a"
)
