# Empty dependencies file for fpm_mem.
# This may be replaced when dependencies are built.
