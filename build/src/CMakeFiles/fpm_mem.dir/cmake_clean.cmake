file(REMOVE_RECURSE
  "CMakeFiles/fpm_mem.dir/fpm/mem/prefetch_pointers.cc.o"
  "CMakeFiles/fpm_mem.dir/fpm/mem/prefetch_pointers.cc.o.d"
  "libfpm_mem.a"
  "libfpm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
