file(REMOVE_RECURSE
  "libfpm_common.a"
)
