# Empty dependencies file for fpm_common.
# This may be replaced when dependencies are built.
