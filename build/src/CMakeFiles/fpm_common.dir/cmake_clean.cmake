file(REMOVE_RECURSE
  "CMakeFiles/fpm_common.dir/fpm/common/logging.cc.o"
  "CMakeFiles/fpm_common.dir/fpm/common/logging.cc.o.d"
  "CMakeFiles/fpm_common.dir/fpm/common/rng.cc.o"
  "CMakeFiles/fpm_common.dir/fpm/common/rng.cc.o.d"
  "CMakeFiles/fpm_common.dir/fpm/common/status.cc.o"
  "CMakeFiles/fpm_common.dir/fpm/common/status.cc.o.d"
  "libfpm_common.a"
  "libfpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
