file(REMOVE_RECURSE
  "CMakeFiles/fpm_layout.dir/fpm/layout/item_order.cc.o"
  "CMakeFiles/fpm_layout.dir/fpm/layout/item_order.cc.o.d"
  "CMakeFiles/fpm_layout.dir/fpm/layout/lexicographic.cc.o"
  "CMakeFiles/fpm_layout.dir/fpm/layout/lexicographic.cc.o.d"
  "CMakeFiles/fpm_layout.dir/fpm/layout/locality_metrics.cc.o"
  "CMakeFiles/fpm_layout.dir/fpm/layout/locality_metrics.cc.o.d"
  "libfpm_layout.a"
  "libfpm_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
