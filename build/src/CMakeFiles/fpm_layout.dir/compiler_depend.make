# Empty compiler generated dependencies file for fpm_layout.
# This may be replaced when dependencies are built.
