
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpm/layout/item_order.cc" "src/CMakeFiles/fpm_layout.dir/fpm/layout/item_order.cc.o" "gcc" "src/CMakeFiles/fpm_layout.dir/fpm/layout/item_order.cc.o.d"
  "/root/repo/src/fpm/layout/lexicographic.cc" "src/CMakeFiles/fpm_layout.dir/fpm/layout/lexicographic.cc.o" "gcc" "src/CMakeFiles/fpm_layout.dir/fpm/layout/lexicographic.cc.o.d"
  "/root/repo/src/fpm/layout/locality_metrics.cc" "src/CMakeFiles/fpm_layout.dir/fpm/layout/locality_metrics.cc.o" "gcc" "src/CMakeFiles/fpm_layout.dir/fpm/layout/locality_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
