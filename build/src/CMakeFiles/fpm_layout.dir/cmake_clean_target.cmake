file(REMOVE_RECURSE
  "libfpm_layout.a"
)
