file(REMOVE_RECURSE
  "CMakeFiles/fpm_core.dir/fpm/core/mine.cc.o"
  "CMakeFiles/fpm_core.dir/fpm/core/mine.cc.o.d"
  "CMakeFiles/fpm_core.dir/fpm/core/partition.cc.o"
  "CMakeFiles/fpm_core.dir/fpm/core/partition.cc.o.d"
  "CMakeFiles/fpm_core.dir/fpm/core/pattern_advisor.cc.o"
  "CMakeFiles/fpm_core.dir/fpm/core/pattern_advisor.cc.o.d"
  "CMakeFiles/fpm_core.dir/fpm/core/patterns.cc.o"
  "CMakeFiles/fpm_core.dir/fpm/core/patterns.cc.o.d"
  "libfpm_core.a"
  "libfpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
