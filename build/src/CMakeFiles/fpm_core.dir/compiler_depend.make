# Empty compiler generated dependencies file for fpm_core.
# This may be replaced when dependencies are built.
