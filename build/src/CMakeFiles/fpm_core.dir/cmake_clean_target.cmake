file(REMOVE_RECURSE
  "libfpm_core.a"
)
