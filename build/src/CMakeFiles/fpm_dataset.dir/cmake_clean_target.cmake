file(REMOVE_RECURSE
  "libfpm_dataset.a"
)
