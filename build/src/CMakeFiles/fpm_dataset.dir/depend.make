# Empty dependencies file for fpm_dataset.
# This may be replaced when dependencies are built.
