
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpm/dataset/database.cc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/database.cc.o" "gcc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/database.cc.o.d"
  "/root/repo/src/fpm/dataset/fimi_io.cc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/fimi_io.cc.o" "gcc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/fimi_io.cc.o.d"
  "/root/repo/src/fpm/dataset/quest_gen.cc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/quest_gen.cc.o" "gcc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/quest_gen.cc.o.d"
  "/root/repo/src/fpm/dataset/standin_gen.cc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/standin_gen.cc.o" "gcc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/standin_gen.cc.o.d"
  "/root/repo/src/fpm/dataset/stats.cc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/stats.cc.o" "gcc" "src/CMakeFiles/fpm_dataset.dir/fpm/dataset/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
