file(REMOVE_RECURSE
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/database.cc.o"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/database.cc.o.d"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/fimi_io.cc.o"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/fimi_io.cc.o.d"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/quest_gen.cc.o"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/quest_gen.cc.o.d"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/standin_gen.cc.o"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/standin_gen.cc.o.d"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/stats.cc.o"
  "CMakeFiles/fpm_dataset.dir/fpm/dataset/stats.cc.o.d"
  "libfpm_dataset.a"
  "libfpm_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
