file(REMOVE_RECURSE
  "CMakeFiles/fpm_simcache.dir/fpm/simcache/cache_model.cc.o"
  "CMakeFiles/fpm_simcache.dir/fpm/simcache/cache_model.cc.o.d"
  "CMakeFiles/fpm_simcache.dir/fpm/simcache/db_trace.cc.o"
  "CMakeFiles/fpm_simcache.dir/fpm/simcache/db_trace.cc.o.d"
  "CMakeFiles/fpm_simcache.dir/fpm/simcache/memory_system.cc.o"
  "CMakeFiles/fpm_simcache.dir/fpm/simcache/memory_system.cc.o.d"
  "libfpm_simcache.a"
  "libfpm_simcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
