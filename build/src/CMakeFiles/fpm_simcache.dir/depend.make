# Empty dependencies file for fpm_simcache.
# This may be replaced when dependencies are built.
