file(REMOVE_RECURSE
  "libfpm_simcache.a"
)
