
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo/apriori_test.cc" "tests/CMakeFiles/algo_test.dir/algo/apriori_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/apriori_test.cc.o.d"
  "/root/repo/tests/algo/bruteforce_test.cc" "tests/CMakeFiles/algo_test.dir/algo/bruteforce_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/bruteforce_test.cc.o.d"
  "/root/repo/tests/algo/candidate_trie_test.cc" "tests/CMakeFiles/algo_test.dir/algo/candidate_trie_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/candidate_trie_test.cc.o.d"
  "/root/repo/tests/algo/closed_miner_test.cc" "tests/CMakeFiles/algo_test.dir/algo/closed_miner_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/closed_miner_test.cc.o.d"
  "/root/repo/tests/algo/eclat_test.cc" "tests/CMakeFiles/algo_test.dir/algo/eclat_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/eclat_test.cc.o.d"
  "/root/repo/tests/algo/fpgrowth_test.cc" "tests/CMakeFiles/algo_test.dir/algo/fpgrowth_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/fpgrowth_test.cc.o.d"
  "/root/repo/tests/algo/hmine_test.cc" "tests/CMakeFiles/algo_test.dir/algo/hmine_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/hmine_test.cc.o.d"
  "/root/repo/tests/algo/invariants_test.cc" "tests/CMakeFiles/algo_test.dir/algo/invariants_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/invariants_test.cc.o.d"
  "/root/repo/tests/algo/itemset_sink_test.cc" "tests/CMakeFiles/algo_test.dir/algo/itemset_sink_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/itemset_sink_test.cc.o.d"
  "/root/repo/tests/algo/lcm_test.cc" "tests/CMakeFiles/algo_test.dir/algo/lcm_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/lcm_test.cc.o.d"
  "/root/repo/tests/algo/postprocess_test.cc" "tests/CMakeFiles/algo_test.dir/algo/postprocess_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/postprocess_test.cc.o.d"
  "/root/repo/tests/algo/rules_test.cc" "tests/CMakeFiles/algo_test.dir/algo/rules_test.cc.o" "gcc" "tests/CMakeFiles/algo_test.dir/algo/rules_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpm_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_bitvec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
