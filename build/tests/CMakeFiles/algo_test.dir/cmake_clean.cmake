file(REMOVE_RECURSE
  "CMakeFiles/algo_test.dir/algo/apriori_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/apriori_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/bruteforce_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/bruteforce_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/candidate_trie_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/candidate_trie_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/closed_miner_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/closed_miner_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/eclat_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/eclat_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/fpgrowth_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/fpgrowth_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/hmine_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/hmine_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/invariants_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/invariants_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/itemset_sink_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/itemset_sink_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/lcm_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/lcm_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/postprocess_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/postprocess_test.cc.o.d"
  "CMakeFiles/algo_test.dir/algo/rules_test.cc.o"
  "CMakeFiles/algo_test.dir/algo/rules_test.cc.o.d"
  "algo_test"
  "algo_test.pdb"
  "algo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
