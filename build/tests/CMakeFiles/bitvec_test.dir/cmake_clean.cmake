file(REMOVE_RECURSE
  "CMakeFiles/bitvec_test.dir/bitvec/bitvector_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec/bitvector_test.cc.o.d"
  "CMakeFiles/bitvec_test.dir/bitvec/intersect_property_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec/intersect_property_test.cc.o.d"
  "CMakeFiles/bitvec_test.dir/bitvec/intersect_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec/intersect_test.cc.o.d"
  "CMakeFiles/bitvec_test.dir/bitvec/popcount_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec/popcount_test.cc.o.d"
  "CMakeFiles/bitvec_test.dir/bitvec/tidlist_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec/tidlist_test.cc.o.d"
  "CMakeFiles/bitvec_test.dir/bitvec/vertical_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec/vertical_test.cc.o.d"
  "bitvec_test"
  "bitvec_test.pdb"
  "bitvec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
