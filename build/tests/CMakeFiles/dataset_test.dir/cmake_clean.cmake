file(REMOVE_RECURSE
  "CMakeFiles/dataset_test.dir/dataset/database_test.cc.o"
  "CMakeFiles/dataset_test.dir/dataset/database_test.cc.o.d"
  "CMakeFiles/dataset_test.dir/dataset/fimi_fuzz_test.cc.o"
  "CMakeFiles/dataset_test.dir/dataset/fimi_fuzz_test.cc.o.d"
  "CMakeFiles/dataset_test.dir/dataset/fimi_io_test.cc.o"
  "CMakeFiles/dataset_test.dir/dataset/fimi_io_test.cc.o.d"
  "CMakeFiles/dataset_test.dir/dataset/quest_gen_test.cc.o"
  "CMakeFiles/dataset_test.dir/dataset/quest_gen_test.cc.o.d"
  "CMakeFiles/dataset_test.dir/dataset/standin_gen_test.cc.o"
  "CMakeFiles/dataset_test.dir/dataset/standin_gen_test.cc.o.d"
  "CMakeFiles/dataset_test.dir/dataset/stats_test.cc.o"
  "CMakeFiles/dataset_test.dir/dataset/stats_test.cc.o.d"
  "dataset_test"
  "dataset_test.pdb"
  "dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
