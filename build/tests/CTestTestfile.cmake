# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/bitvec_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/simcache_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
