#include "fpm/obs/prometheus.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/obs/metrics.h"

namespace fpm {
namespace {

bool IsLegalName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

/// A minimal Prometheus text-format (0.0.4) parser: every line must be
/// a `# TYPE name counter|gauge|histogram` comment or a
/// `name[{le="..."}] value` sample whose base name was declared, with
/// histogram buckets cumulative and closed by an `+Inf` bucket that
/// matches `_count`. Returns a failure message, empty on success.
std::string ValidateExposition(const std::string& text) {
  std::map<std::string, std::string> types;  // name -> type
  std::map<std::string, uint64_t> last_bucket;
  std::map<std::string, uint64_t> inf_bucket;
  std::map<std::string, uint64_t> sample_count;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) return "blank line";
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, keyword, name, type;
      fields >> hash >> keyword >> name >> type;
      if (keyword != "TYPE") return "unknown comment: " + line;
      if (!IsLegalName(name)) return "illegal name: " + name;
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return "unknown type: " + line;
      }
      if (!types.emplace(name, type).second) {
        return "duplicate TYPE for " + name;
      }
      continue;
    }
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) return "no value: " + line;
    std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || parsed < 0.0) {
      return "bad value: " + line;
    }

    // Strip the {le="..."} label and the _bucket/_sum/_count suffix to
    // find the declared histogram name.
    std::string le;
    const size_t brace = key.find('{');
    if (brace != std::string::npos) {
      if (key.back() != '}') return "unclosed label: " + line;
      const std::string label = key.substr(brace + 1,
                                           key.size() - brace - 2);
      if (label.rfind("le=\"", 0) != 0 || label.back() != '"') {
        return "bad label: " + line;
      }
      le = label.substr(4, label.size() - 5);
      key = key.substr(0, brace);
    }
    std::string base = key;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          types.count(base.substr(0, base.size() - s.size()))) {
        base = base.substr(0, base.size() - s.size());
        break;
      }
    }
    if (!IsLegalName(key)) return "illegal name: " + key;
    const auto type = types.find(base);
    if (type == types.end()) return "sample without TYPE: " + line;
    ++sample_count[base];
    if (type->second == "histogram" && key == base + "_bucket") {
      const auto bucket = static_cast<uint64_t>(parsed);
      if (bucket < last_bucket[base]) {
        return "non-cumulative buckets: " + line;
      }
      last_bucket[base] = bucket;
      if (le == "+Inf") inf_bucket[base] = bucket;
    }
    if (type->second == "histogram" && key == base + "_count") {
      if (inf_bucket.find(base) == inf_bucket.end()) {
        return "histogram missing +Inf bucket: " + base;
      }
      if (inf_bucket[base] != static_cast<uint64_t>(parsed)) {
        return "+Inf bucket != count: " + base;
      }
    }
  }
  for (const auto& [name, type] : types) {
    if (sample_count[name] == 0) return "TYPE without samples: " + name;
  }
  return "";
}

TEST(PrometheusNameTest, SanitizesToTheGrammar) {
  EXPECT_EQ(PrometheusName("fpm.service.cache.hits"),
            "fpm_service_cache_hits");
  EXPECT_EQ(PrometheusName("already_legal:name"), "already_legal:name");
  EXPECT_EQ(PrometheusName("9starts-with.digit"), "_starts_with_digit");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(PrometheusTextTest, RendersCountersGaugesAndHistograms) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"fpm.service.queries", 7, {}});
  snapshot.gauges.push_back({"fpm.service.watchdog.stuck", 2});
  HistogramSample h;
  h.name = "fpm.service.mine.seconds";
  h.bounds = {1, 10, 100};
  h.counts = {3, 2, 1, 1};  // last = overflow
  h.sum = 42;
  snapshot.histograms.push_back(h);

  std::ostringstream out;
  WritePrometheusText(snapshot, out);
  EXPECT_EQ(out.str(),
            "# TYPE fpm_service_queries counter\n"
            "fpm_service_queries 7\n"
            "# TYPE fpm_service_watchdog_stuck gauge\n"
            "fpm_service_watchdog_stuck 2\n"
            "# TYPE fpm_service_mine_seconds histogram\n"
            "fpm_service_mine_seconds_bucket{le=\"1\"} 3\n"
            "fpm_service_mine_seconds_bucket{le=\"10\"} 5\n"
            "fpm_service_mine_seconds_bucket{le=\"100\"} 6\n"
            "fpm_service_mine_seconds_bucket{le=\"+Inf\"} 7\n"
            "fpm_service_mine_seconds_sum 42\n"
            "fpm_service_mine_seconds_count 7\n");
  EXPECT_EQ(ValidateExposition(out.str()), "");
}

TEST(PrometheusTextTest, LiveRegistrySnapshotPassesTheParser) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("fpm.test.queries")->Add(3);
  registry.GetGauge("fpm.test.depth")->Set(5);
  auto* histogram = registry.GetHistogram(
      "fpm.test.latency", {1, 2, 5, 10});
  histogram->Observe(1);
  histogram->Observe(7);
  histogram->Observe(100);

  std::ostringstream out;
  WritePrometheusText(registry.Snapshot(), out);
  EXPECT_EQ(ValidateExposition(out.str()), "") << out.str();
  EXPECT_NE(out.str().find("fpm_test_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
}

TEST(PrometheusTextTest, ParserRejectsMalformedText) {
  EXPECT_NE(ValidateExposition("fpm_orphan 1\n"), "");
  EXPECT_NE(ValidateExposition("# TYPE fpm_x widget\nfpm_x 1\n"), "");
  EXPECT_NE(ValidateExposition("# TYPE fpm_x counter\nfpm_x\n"), "");
}

}  // namespace
}  // namespace fpm
