#include "fpm/obs/metrics.h"

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(registry.Snapshot().counter("test.counter"), 42u);
}

TEST(MetricsRegistryTest, GetIsIdempotentByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("same");
  Counter* b = registry.GetCounter("same");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("g");
  Gauge* g2 = registry.GetGauge("g");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.GetHistogram("h", {1, 2});
  Histogram* h2 = registry.GetHistogram("h", {1, 2});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, DisabledWritesAreDropped) {
  MetricsRegistry registry(/*enabled=*/false);
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", {10});
  c->Add(5);
  g->Set(7);
  h->Observe(3);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.gauge("g"), 0u);
  EXPECT_EQ(snap.histogram("h")->count(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndUpdateMax) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(10);
  g->UpdateMax(5);  // smaller: no change
  EXPECT_EQ(g->value(), 10u);
  g->UpdateMax(99);
  EXPECT_EQ(g->value(), 99u);
  g->Set(3);  // Set always overwrites
  EXPECT_EQ(g->value(), 3u);
}

// The merge across per-thread shards must be exact: every increment from
// every thread counted exactly once. 8 threads hammering the same two
// counters; run under TSan to prove the fast path race-free.
TEST(MetricsRegistryTest, MergeUnderContentionIsExact) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("contended.a");
  Counter* b = registry.GetCounter("contended.b");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIters; ++i) {
        a->Increment();
        if ((i & 3) == 0) b->Add(2);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = registry.Snapshot(/*per_thread=*/true);
  EXPECT_EQ(snap.counter("contended.a"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.counter("contended.b"),
            static_cast<uint64_t>(kThreads) * (kIters / 4) * 2);
  // Per-thread breakdown covers the total exactly.
  const CounterSample* sample = nullptr;
  for (const CounterSample& c : snap.counters) {
    if (c.name == "contended.a") sample = &c;
  }
  ASSERT_NE(sample, nullptr);
  EXPECT_GE(sample->per_thread.size(), 2u);  // more than one shard used
  uint64_t from_threads = 0;
  for (const auto& [tid, v] : sample->per_thread) from_threads += v;
  EXPECT_EQ(from_threads, sample->value);
}

// Snapshot() may run concurrently with writers without tearing (values
// only checked for sanity; TSan checks the synchronization).
TEST(MetricsRegistryTest, SnapshotDuringWritesIsSafe) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("racing");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) c->Increment();
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t v = registry.Snapshot().counter("racing");
    EXPECT_GE(v, last);  // monotone
    last = v;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// Bucket semantics are upper-inclusive ("le"): bucket i counts
// v <= bounds[i]; the final bucket counts v > bounds.back().
TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10, 100, 1000});
  h->Observe(0);     // <= 10
  h->Observe(10);    // <= 10 (boundary lands in its own bucket)
  h->Observe(11);    // <= 100
  h->Observe(100);   // <= 100
  h->Observe(101);   // <= 1000
  h->Observe(1000);  // <= 1000
  h->Observe(1001);  // overflow
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* s = snap.histogram("lat");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->counts.size(), 4u);
  EXPECT_EQ(s->counts[0], 2u);
  EXPECT_EQ(s->counts[1], 2u);
  EXPECT_EQ(s->counts[2], 2u);
  EXPECT_EQ(s->counts[3], 1u);
  EXPECT_EQ(s->count(), 7u);
  EXPECT_EQ(s->sum, 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetGauge("g")->Set(6);
  registry.GetHistogram("h", {10})->Observe(3);
  registry.Reset();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.gauge("g"), 0u);
  EXPECT_EQ(snap.histogram("h")->count(), 0u);
}

TEST(MetricsSnapshotTest, DeltaSinceSubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h", {10});
  Gauge* g = registry.GetGauge("g");
  c->Add(3);
  h->Observe(5);
  g->Set(100);
  const MetricsSnapshot before = registry.Snapshot();
  c->Add(4);
  h->Observe(50);
  g->Set(7);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counter("c"), 4u);
  EXPECT_EQ(delta.histogram("h")->counts[0], 0u);  // no new <=10 values
  EXPECT_EQ(delta.histogram("h")->counts[1], 1u);  // one new overflow
  EXPECT_EQ(delta.histogram("h")->sum, 50u);
  EXPECT_EQ(delta.gauge("g"), 7u);  // gauges keep the later value
}

TEST(MetricsSnapshotTest, WriteJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("calls")->Add(3);
  registry.GetGauge("bytes")->Set(64);
  registry.GetHistogram("size", {1, 2})->Observe(2);
  std::ostringstream os;
  registry.Snapshot().WriteJson(os);
  EXPECT_EQ(os.str(),
            "{\"counters\":{\"calls\":3},\"gauges\":{\"bytes\":64},"
            "\"histograms\":{\"size\":{\"bounds\":[1,2],\"counts\":[0,1,0],"
            "\"sum\":2}}}");
}

TEST(MetricsRegistryTest, DefaultStartsDisabled) {
  // Other tests may have enabled it; only assert the toggle works and
  // restores.
  MetricsRegistry& d = MetricsRegistry::Default();
  const bool was = d.enabled();
  d.set_enabled(false);
  EXPECT_FALSE(d.enabled());
  d.set_enabled(was);
}

}  // namespace
}  // namespace fpm
