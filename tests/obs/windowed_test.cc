#include "fpm/obs/windowed.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(WindowedHistogramTest, EmptyWindowIsAllZero) {
  WindowedHistogram h;
  const auto stats = h.QueryAt(/*window_seconds=*/10, /*now_second=*/100);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.qps, 0.0);
  EXPECT_EQ(stats.p50_ms, 0.0);
  EXPECT_EQ(stats.p99_ms, 0.0);
  EXPECT_EQ(stats.max_ms, 0.0);
}

TEST(WindowedHistogramTest, CountsAndQpsOverTheWindow) {
  WindowedHistogram h;
  // 3 observations per second over seconds 10..19.
  for (uint64_t s = 10; s < 20; ++s) {
    for (int i = 0; i < 3; ++i) h.RecordAt(s, 1.0);
  }
  const auto w10 = h.QueryAt(10, /*now_second=*/19);
  EXPECT_EQ(w10.count, 30u);
  EXPECT_DOUBLE_EQ(w10.qps, 3.0);

  // A 1s window at second 19 sees only that second's 3 observations.
  const auto w1 = h.QueryAt(1, 19);
  EXPECT_EQ(w1.count, 3u);
  EXPECT_DOUBLE_EQ(w1.qps, 3.0);
}

TEST(WindowedHistogramTest, OldSecondsFallOutOfTheWindow) {
  WindowedHistogram h;
  h.RecordAt(5, 1.0);
  h.RecordAt(50, 1.0);
  // At second 50, a 10s window covers [41, 50]: the second-5 sample is
  // out of range.
  EXPECT_EQ(h.QueryAt(10, 50).count, 1u);
  EXPECT_EQ(h.QueryAt(60, 50).count, 2u);
}

TEST(WindowedHistogramTest, RingReusesStaleSlots) {
  WindowedHistogram h(/*ring_seconds=*/8);
  h.RecordAt(1, 1.0);
  // Second 9 maps onto the same ring slot as second 1 (9 % 8); the
  // stale bucket must reset rather than merge.
  h.RecordAt(9, 2.0);
  const auto stats = h.QueryAt(1, 9);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.max_ms, 2.0);
  // The overwritten second is simply gone.
  EXPECT_EQ(h.QueryAt(8, 8).count, 0u);
}

TEST(WindowedHistogramTest, QuantilesInterpolateAndTrackMax) {
  WindowedHistogram h;
  // 90 fast (~1ms bucket) + 10 slow (~100ms bucket) observations.
  for (int i = 0; i < 90; ++i) h.RecordAt(10, 0.8);
  for (int i = 0; i < 10; ++i) h.RecordAt(10, 80.0);
  const auto stats = h.QueryAt(1, 10);
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.max_ms, 80.0);
  // p50 lands in the (0.5, 1] bucket, p99 in the (50, 100] bucket.
  EXPECT_GT(stats.p50_ms, 0.5);
  EXPECT_LE(stats.p50_ms, 1.0);
  EXPECT_GT(stats.p99_ms, 50.0);
  EXPECT_LE(stats.p99_ms, 100.0);
}

TEST(WindowedHistogramTest, OverflowBucketReportsTheMax) {
  WindowedHistogram h;
  h.RecordAt(3, 500000.0);  // beyond the last 120s bound
  const auto stats = h.QueryAt(1, 3);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.p99_ms, 500000.0);
  EXPECT_DOUBLE_EQ(stats.max_ms, 500000.0);
}

TEST(WindowedHistogramTest, WallClockPathRecordsNow) {
  WindowedHistogram h;
  h.Record(1.0);
  h.Record(2.0);
  // The in-progress second is included in the window, so both
  // observations are visible immediately.
  const auto stats = h.Query(2);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.max_ms, 2.0);
}

}  // namespace
}  // namespace fpm
