// PhaseSampler bridge: a fake sampler installed on a Tracer must have
// its deltas latched by PhaseSpan (counter_deltas(), trace span args)
// and recorded as "fpm.phase.<phase>.<name>" in the default metrics
// registry's JSON snapshot. No perf syscalls involved.

#include "fpm/obs/phase_sampler.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/algo/miner.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// Returns fixed deltas for every phase, counting Begin/End pairing.
class FakeSampler : public PhaseSampler {
 public:
  void OnPhaseBegin() override { ++begins_; }

  void OnPhaseEnd(std::string_view phase, PhaseSampleDeltas* out) override {
    ++ends_;
    last_phase_ = std::string(phase);
    out->counters.emplace_back("cycles", 3000u);
    out->counters.emplace_back("instructions", 2000u);
    out->gauges.emplace_back("cpi_milli", 1500u);
  }

  int begins_ = 0;
  int ends_ = 0;
  std::string last_phase_;
};

TEST(PhaseSamplerTest, PhaseSpanLatchesDeltas) {
  Tracer tracer;  // disabled: sampling must work without tracing
  FakeSampler sampler;
  tracer.set_phase_sampler(&sampler);

  PhaseSpan span(tracer, "mine");
  EXPECT_EQ(sampler.begins_, 1);
  EXPECT_TRUE(span.counter_deltas().empty());  // not ended yet
  span.End();

  EXPECT_EQ(sampler.ends_, 1);
  EXPECT_EQ(sampler.last_phase_, "mine");
  ASSERT_EQ(span.counter_deltas().size(), 2u);
  EXPECT_EQ(span.counter_deltas()[0].first, "cycles");
  EXPECT_EQ(span.counter_deltas()[0].second, 3000u);

  tracer.set_phase_sampler(nullptr);
  PhaseSpan unsampled(tracer, "mine");
  unsampled.End();
  EXPECT_EQ(sampler.begins_, 1);  // sampler no longer consulted
  EXPECT_TRUE(unsampled.counter_deltas().empty());
}

TEST(PhaseSamplerTest, EndIsIdempotentWithSampler) {
  Tracer tracer;
  FakeSampler sampler;
  tracer.set_phase_sampler(&sampler);
  PhaseSpan span(tracer, "build");
  span.End();
  span.End();
  tracer.set_phase_sampler(nullptr);
  EXPECT_EQ(sampler.begins_, 1);
  EXPECT_EQ(sampler.ends_, 1);
  EXPECT_EQ(span.counter_deltas().size(), 2u);
}

TEST(PhaseSamplerTest, DeltasAttachToTraceSpanArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  FakeSampler sampler;
  tracer.set_phase_sampler(&sampler);
  {
    PhaseSpan span(tracer, "prepare");
    span.AddArg("transactions", 7);
  }
  tracer.set_phase_sampler(nullptr);

  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  const TraceSpan& s = spans[0];
  EXPECT_EQ(s.name, "prepare");
  bool saw_cycles = false;
  bool saw_transactions = false;
  for (const auto& [key, value] : s.args) {
    if (key == "cycles") {
      saw_cycles = true;
      EXPECT_EQ(value, 3000u);
    }
    if (key == "transactions") saw_transactions = true;
  }
  EXPECT_TRUE(saw_cycles);
  EXPECT_TRUE(saw_transactions);
}

TEST(PhaseSamplerTest, DeltasLandInDefaultMetricsJson) {
  // RecordPhaseSampleMetrics writes to the process-wide default
  // registry; enable it for the duration of this test only.
  MetricsRegistry::Default().set_enabled(true);
  FakeSampler sampler;
  Tracer::Default().set_phase_sampler(&sampler);
  {
    PhaseSpan span("mine");
  }
  Tracer::Default().set_phase_sampler(nullptr);
  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  MetricsRegistry::Default().set_enabled(false);

  std::ostringstream json;
  snap.WriteJson(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("fpm.phase.mine.cycles"), std::string::npos) << doc;
  EXPECT_NE(doc.find("fpm.phase.mine.instructions"), std::string::npos);
  EXPECT_NE(doc.find("fpm.phase.mine.cpi_milli"), std::string::npos);
  EXPECT_EQ(snap.counter("fpm.phase.mine.instructions"), 2000u);
}

TEST(PhaseSamplerTest, FinishPhaseMergesCountersIntoMineStats) {
  Tracer tracer;
  FakeSampler sampler;
  tracer.set_phase_sampler(&sampler);

  MineStats stats;
  EXPECT_FALSE(stats.has_phase_counters());
  {
    PhaseSpan span(tracer, "mine");
    stats.FinishPhase(PhaseId::kMine, span);
  }
  {
    // A re-entered phase sums by counter name.
    PhaseSpan span(tracer, "mine");
    stats.FinishPhase(PhaseId::kMine, span);
  }
  tracer.set_phase_sampler(nullptr);

  EXPECT_TRUE(stats.has_phase_counters());
  const PhaseCounterDeltas& mine = stats.phase_counters(PhaseId::kMine);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].first, "cycles");
  EXPECT_EQ(mine[0].second, 6000u);
  EXPECT_EQ(mine[1].first, "instructions");
  EXPECT_EQ(mine[1].second, 4000u);
  EXPECT_TRUE(stats.phase_counters(PhaseId::kBuild).empty());
}

}  // namespace
}  // namespace fpm
