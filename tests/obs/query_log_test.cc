#include "fpm/obs/query_log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fpm {
namespace {

QueryLogEntry FullEntry() {
  QueryLogEntry entry;
  entry.query_id = 7;
  entry.trace_id = "req-1";
  entry.op = "query";
  entry.task = "closed";
  entry.dataset = "/tmp/x.dat";
  entry.dataset_id = "ds-1";
  entry.dataset_version = 3;
  entry.digest = "cafe";
  entry.algorithm = "lcm";
  entry.min_support = 4;
  entry.queue_ms = 1.5;
  entry.mine_ms = 20.25;
  entry.derive_ms = 0.125;
  entry.cache = "miss";
  entry.num_results = 12;
  entry.peak_bytes = 4096;
  entry.status = "ok";
  return entry;
}

TEST(QueryLogEntryTest, ToJsonGolden) {
  EXPECT_EQ(FullEntry().ToJson(/*ts_ms=*/1000),
            "{\"event\":\"query\",\"ts_ms\":1000,\"query_id\":7,"
            "\"trace_id\":\"req-1\",\"op\":\"query\",\"task\":\"closed\","
            "\"dataset\":\"/tmp/x.dat\",\"dataset_id\":\"ds-1\","
            "\"version\":3,\"digest\":\"cafe\",\"algorithm\":\"lcm\","
            "\"min_support\":4,\"queue_ms\":1.500,\"mine_ms\":20.250,"
            "\"derive_ms\":0.125,\"cache\":\"miss\",\"num_results\":12,"
            "\"peak_bytes\":4096,\"status\":\"ok\"}");
}

TEST(QueryLogEntryTest, DefaultFieldsAreOmitted) {
  QueryLogEntry entry;
  entry.query_id = 1;
  entry.status = "rejected";
  entry.reason = "no such dataset";
  EXPECT_EQ(entry.ToJson(/*ts_ms=*/5),
            "{\"event\":\"query\",\"ts_ms\":5,\"query_id\":1,"
            "\"status\":\"rejected\",\"reason\":\"no such dataset\"}");
}

TEST(QueryLogEntryTest, StringsAreJsonEscaped) {
  QueryLogEntry entry;
  entry.status = "error";
  entry.reason = "path \"a\\b\"\n\ttab";
  entry.dataset = std::string("nul\x01", 4);
  EXPECT_EQ(entry.ToJson(0),
            "{\"event\":\"query\",\"ts_ms\":0,\"query_id\":0,"
            "\"dataset\":\"nul\\u0001\",\"status\":\"error\","
            "\"reason\":\"path \\\"a\\\\b\\\"\\n\\ttab\"}");
}

TEST(QueryLogTest, DisabledLogWritesNothing) {
  QueryLog log;
  EXPECT_FALSE(log.enabled());
  log.Write(FullEntry());
  EXPECT_EQ(log.lines_written(), 0u);
}

TEST(QueryLogTest, WritesOneLinePerEntryToTheStream) {
  std::ostringstream out;
  QueryLog log;
  log.SetStream(&out);
  ASSERT_TRUE(log.enabled());
  log.Write(FullEntry());
  log.Write(FullEntry());
  EXPECT_EQ(log.lines_written(), 2u);

  std::vector<std::string> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"query_id\":7"), std::string::npos);
    EXPECT_NE(l.find("\"ts_ms\":"), std::string::npos);
  }
}

TEST(QueryLogTest, SlowQueriesMirrorToStderr) {
  std::ostringstream out;
  QueryLog log;
  log.SetStream(&out);
  log.set_slow_threshold_ms(10.0);

  QueryLogEntry fast = FullEntry();
  fast.queue_ms = 1.0;
  fast.mine_ms = 2.0;
  fast.derive_ms = 0.0;

  QueryLogEntry slow = FullEntry();
  slow.queue_ms = 4.0;
  slow.mine_ms = 8.0;

  testing::internal::CaptureStderr();
  log.Write(fast);
  log.Write(slow);
  const std::string err = testing::internal::GetCapturedStderr();
  // Only the slow entry (queue + mine + derive >= 10ms) is mirrored.
  EXPECT_NE(err.find("fpm slow query"), std::string::npos);
  EXPECT_NE(err.find("\"mine_ms\":8.000"), std::string::npos);
  EXPECT_EQ(err.find("\"mine_ms\":2.000"), std::string::npos);
  EXPECT_EQ(log.lines_written(), 2u);
}

TEST(QueryLogTest, OpenFileAppends) {
  const std::string path =
      testing::TempDir() + "/query_log_test_append.jsonl";
  std::remove(path.c_str());
  {
    QueryLog log;
    ASSERT_TRUE(log.OpenFile(path).ok());
    log.Write(FullEntry());
  }
  {
    QueryLog log;
    ASSERT_TRUE(log.OpenFile(path).ok());
    log.Write(FullEntry());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t count = 0;
  while (std::getline(in, line)) ++count;
  EXPECT_EQ(count, 2u);
  std::remove(path.c_str());
}

TEST(QueryLogTest, OpenFileReportsBadPaths) {
  QueryLog log;
  EXPECT_FALSE(log.OpenFile("/nonexistent-dir/q.jsonl").ok());
  EXPECT_FALSE(log.enabled());
}

}  // namespace
}  // namespace fpm
