#include "fpm/obs/trace.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/obs/metrics.h"

namespace fpm {
namespace {

TraceSpan MakeSpan(std::string name, uint32_t tid, uint32_t depth,
                   uint64_t start_ns, uint64_t dur_ns,
                   std::vector<std::pair<std::string, uint64_t>> args = {}) {
  TraceSpan s;
  s.name = std::move(name);
  s.thread_index = tid;
  s.depth = depth;
  s.start_ns = start_ns;
  s.duration_ns = dur_ns;
  s.args = std::move(args);
  return s;
}

TEST(TracerTest, DisabledScopedSpanRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span(tracer, "noop");
    EXPECT_FALSE(span.active());
    span.AddArg("ignored", 1);
  }
  EXPECT_TRUE(tracer.CollectSpans().empty());
}

TEST(TracerTest, ScopedSpansNestByDepth) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "outer");
    EXPECT_TRUE(outer.active());
    {
      ScopedSpan inner(tracer, "inner");
      inner.AddArg("k", 7);
    }
  }
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by (start_ns, depth): outer begins first at depth 0.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "k");
  EXPECT_EQ(spans[1].args[0].second, 7u);
  // The child interval lies within the parent's.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
}

TEST(TracerTest, EndIsIdempotent) {
  Tracer tracer;
  tracer.set_enabled(true);
  ScopedSpan span(tracer, "once");
  span.End();
  span.End();  // second End() and the destructor must not re-record
  EXPECT_EQ(tracer.CollectSpans().size(), 1u);
}

TEST(TracerTest, PhaseSpanTimesEvenWhenDisabled) {
  Tracer tracer;
  PhaseSpan span(tracer, "phase");
  const double secs = span.End();
  EXPECT_GE(secs, 0.0);
  EXPECT_EQ(span.End(), secs);  // idempotent, same value back
  EXPECT_TRUE(tracer.CollectSpans().empty());
}

TEST(TracerTest, PhaseSpanRecordsWhenEnabled) {
  Tracer tracer;
  tracer.set_enabled(true);
  PhaseSpan span(tracer, "phase");
  span.End();
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "phase");
}

TEST(TracerTest, RingOverwritesOldestAndCountsDropped) {
  // Overflow is also surfaced as the fpm.obs.spans_dropped counter, so
  // an operator sees lost spans without comparing ring contents.
  MetricsRegistry& registry = MetricsRegistry::Default();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const uint64_t dropped_before =
      registry.Snapshot().counter("fpm.obs.spans_dropped");

  Tracer tracer(/*ring_capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    tracer.Record(MakeSpan("s" + std::to_string(i), 0, 0, /*start_ns=*/i, 1));
  }
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(registry.Snapshot().counter("fpm.obs.spans_dropped"),
            dropped_before + 2);
  registry.set_enabled(was_enabled);

  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest two (s0, s1) were evicted; survivors come out oldest-first.
  EXPECT_EQ(spans[0].name, "s2");
  EXPECT_EQ(spans[3].name, "s5");
}

TEST(TracerTest, SpanContextScopeTagsSpansWithTheQueryId) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    SpanContextScope context(42);
    EXPECT_EQ(Tracer::ThreadQueryId(), 42u);
    {
      // Nested scopes shadow and restore the outer id.
      SpanContextScope inner(43);
      ScopedSpan span(tracer, "inner");
    }
    ScopedSpan span(tracer, "outer");
  }
  // Outside any scope, spans carry no query_id arg.
  { ScopedSpan span(tracer, "untagged"); }
  EXPECT_EQ(Tracer::ThreadQueryId(), 0u);

  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 3u);
  const auto query_id_arg =
      [](const TraceSpan& span) -> const uint64_t* {
    for (const auto& [key, value] : span.args) {
      if (key == "query_id") return &value;
    }
    return nullptr;
  };
  for (const TraceSpan& span : spans) {
    const uint64_t* id = query_id_arg(span);
    if (span.name == "inner") {
      ASSERT_NE(id, nullptr);
      EXPECT_EQ(*id, 43u);
    } else if (span.name == "outer") {
      ASSERT_NE(id, nullptr);
      EXPECT_EQ(*id, 42u);
    } else {
      EXPECT_EQ(id, nullptr) << span.name;
    }
  }
}

TEST(TracerTest, ClearDiscardsSpansButKeepsEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  const uint64_t before = tracer.NowNs();
  tracer.Record(MakeSpan("a", 0, 0, 1, 1));
  tracer.Clear();
  EXPECT_TRUE(tracer.CollectSpans().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_GE(tracer.NowNs(), before);  // same time base, still advancing
}

TEST(TracerTest, CollectMergesThreadsSortedByStart) {
  Tracer tracer;
  std::thread other(
      [&] { tracer.Record(MakeSpan("from_other", 1, 0, /*start_ns=*/5, 1)); });
  other.join();
  tracer.Record(MakeSpan("from_main", 0, 0, /*start_ns=*/10, 1));
  tracer.Record(MakeSpan("early_main", 0, 0, /*start_ns=*/2, 1));
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "early_main");
  EXPECT_EQ(spans[1].name, "from_other");
  EXPECT_EQ(spans[2].name, "from_main");
}

TEST(TraceExportTest, JsonLinesGolden) {
  const std::vector<TraceSpan> spans = {
      MakeSpan("mine", 0, 1, 12, 34, {{"itemsets", 5}}),
      MakeSpan("he said \"hi\"", 2, 0, 1, 2),
  };
  std::ostringstream os;
  WriteTraceJsonLines(spans, os);
  EXPECT_EQ(os.str(),
            "{\"name\":\"mine\",\"tid\":0,\"depth\":1,\"start_ns\":12,"
            "\"dur_ns\":34,\"args\":{\"itemsets\":5}}\n"
            "{\"name\":\"he said \\\"hi\\\"\",\"tid\":2,\"depth\":0,"
            "\"start_ns\":1,\"dur_ns\":2}\n");
}

TEST(TraceExportTest, ChromeTracingGolden) {
  const std::vector<TraceSpan> spans = {
      MakeSpan("lcm", 0, 0, 1500, 2000500, {{"itemsets", 9}}),
      MakeSpan("prepare", 0, 1, 1750, 250),
  };
  std::ostringstream os;
  WriteChromeTracing(spans, os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":["
            "{\"name\":\"lcm\",\"cat\":\"fpm\",\"ph\":\"X\",\"ts\":1.500,"
            "\"dur\":2000.500,\"pid\":1,\"tid\":0,\"args\":{\"itemsets\":9}},"
            "{\"name\":\"prepare\",\"cat\":\"fpm\",\"ph\":\"X\",\"ts\":1.750,"
            "\"dur\":0.250,\"pid\":1,\"tid\":0}"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(TraceExportTest, ChromeTracingEmptyIsValidDocument) {
  std::ostringstream os;
  WriteChromeTracing({}, os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

}  // namespace
}  // namespace fpm
