#include "fpm/parallel/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(ThreadPoolTest, ExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitCoversNestedSubmissions) {
  // A task fans out children from inside the pool; Wait() must not
  // return until the children (and grandchildren) are done too.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &counter] {
      for (int j = 0; j < 10; ++j) {
        pool.Submit([&pool, &counter] {
          pool.Submit([&counter] { ++counter; });
        });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 80);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { ++counter; });
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentResultsAreComplete) {
  // Every task writes a distinct slot: no slot may be missed or
  // double-written regardless of which worker steals what.
  constexpr int kTasks = 512;
  std::vector<std::atomic<int>> slots(kTasks);
  for (auto& s : slots) s.store(0);
  ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&slots, i] { slots[i].fetch_add(1); });
  }
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(slots[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

}  // namespace
}  // namespace fpm
