// Nested-vs-sequential equivalence: the fork-join driver must emit
// exactly the itemsets of the sequential kernel it wraps at every thread
// count, with byte-identical emission order in deterministic mode —
// regardless of which subtrees were spawned as tasks and which were
// mined inline. spawn_min_entries=1 forces spawning even on the tiny
// test databases (the auto cutoff would decline everything there).

#include "fpm/parallel/nested_miner.h"

#include <gtest/gtest.h>

#include <string>

#include "fpm/core/mine.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/standin_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;

Database SmallQuestDb() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 60;
  p.num_patterns = 40;
  auto db = GenerateQuest(p);
  EXPECT_TRUE(db.ok());
  return db.value();
}

Database SmallWebDocsDb() {
  WebDocsLikeParams p;
  p.num_transactions = 300;
  p.vocabulary = 80;
  p.avg_length = 10;
  p.num_topics = 6;
  p.topic_vocabulary = 20;
  auto db = GenerateWebDocsLike(p);
  EXPECT_TRUE(db.ok());
  return db.value();
}

struct Case {
  Algorithm algorithm;
  bool all_patterns;  // exercise the tuned kernel code paths too
};

NestedParallelMiner MakeNested(const Case& c, uint32_t threads,
                               uint64_t spawn_min_entries,
                               bool deterministic = true) {
  NestedParallelMinerOptions no;
  no.execution.num_threads = threads;
  no.execution.deterministic = deterministic;
  no.spawn_min_entries = spawn_min_entries;
  no.kernel_name = std::string(AlgorithmName(c.algorithm));
  no.factory = [c] {
    return CreateMiner(c.algorithm,
                       c.all_patterns ? PatternSet::ApplicableTo(c.algorithm)
                                      : PatternSet::None());
  };
  return NestedParallelMiner(std::move(no));
}

class NestedEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(NestedEquivalenceTest, MatchesSequentialAtAllThreadCounts) {
  const Case c = GetParam();
  const Database db = SmallQuestDb();
  const Support min_support = 8;

  Result<std::unique_ptr<Miner>> kernel = CreateMiner(
      c.algorithm, c.all_patterns ? PatternSet::ApplicableTo(c.algorithm)
                                  : PatternSet::None());
  ASSERT_TRUE(kernel.ok());
  CollectingSink sequential;
  ASSERT_TRUE((*kernel)->Mine(db, min_support, &sequential).ok());
  sequential.Canonicalize();

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    NestedParallelMiner miner = MakeNested(c, threads, /*spawn=*/1);
    CollectingSink nested;
    Result<MineStats> stats = miner.Mine(db, min_support, &nested);
    ASSERT_TRUE(stats.ok()) << miner.name();
    EXPECT_EQ(stats->num_frequent, sequential.results().size())
        << miner.name();
    nested.Canonicalize();
    ExpectSameResults(sequential.results(), nested.results(), miner.name());
  }
}

TEST_P(NestedEquivalenceTest, DeterministicOrderIdenticalAcrossThreadCounts) {
  // deterministic=true promises one emission order for every thread
  // count — the inline 1-thread order — however the subtrees were
  // scheduled. Compare *un*canonicalized results.
  const Case c = GetParam();
  const Database db = SmallWebDocsDb();
  const Support min_support = 6;

  CollectingSink reference;
  {
    NestedParallelMiner miner = MakeNested(c, /*threads=*/1, /*spawn=*/1);
    ASSERT_TRUE(miner.Mine(db, min_support, &reference).ok());
  }
  ASSERT_GT(reference.results().size(), 0u);

  for (uint32_t threads : {2u, 4u, 8u}) {
    for (int run = 0; run < 2; ++run) {
      NestedParallelMiner miner = MakeNested(c, threads, /*spawn=*/1);
      CollectingSink again;
      ASSERT_TRUE(miner.Mine(db, min_support, &again).ok());
      ASSERT_EQ(reference.results().size(), again.results().size())
          << miner.name();
      EXPECT_TRUE(reference.results() == again.results())
          << miner.name() << " run " << run
          << " emitted a different order";
    }
  }
}

TEST_P(NestedEquivalenceTest, NonDeterministicModeSameChecksum) {
  const Case c = GetParam();
  const Database db = SmallQuestDb();
  const Support min_support = 8;

  MineOptions options;
  options.algorithm = c.algorithm;
  options.min_support = min_support;
  CountingSink sequential;
  ASSERT_TRUE(Mine(db, options, &sequential).ok());

  NestedParallelMiner miner =
      MakeNested(Case{c.algorithm, false}, /*threads=*/4, /*spawn=*/1,
                 /*deterministic=*/false);
  CountingSink nested;
  ASSERT_TRUE(miner.Mine(db, min_support, &nested).ok());
  EXPECT_EQ(nested.count(), sequential.count());
  EXPECT_EQ(nested.checksum(), sequential.checksum());
}

TEST_P(NestedEquivalenceTest, AutoCutoffMatchesSequential) {
  // Default cutoff (spawn_min_entries=0): mostly-inline mining must be
  // just as exact.
  const Case c = GetParam();
  const Database db = SmallWebDocsDb();
  const Support min_support = 6;

  Result<std::unique_ptr<Miner>> kernel = CreateMiner(
      c.algorithm, c.all_patterns ? PatternSet::ApplicableTo(c.algorithm)
                                  : PatternSet::None());
  ASSERT_TRUE(kernel.ok());
  CollectingSink sequential;
  ASSERT_TRUE((*kernel)->Mine(db, min_support, &sequential).ok());
  sequential.Canonicalize();

  NestedParallelMiner miner = MakeNested(c, /*threads=*/4, /*spawn=*/0);
  CollectingSink nested;
  ASSERT_TRUE(miner.Mine(db, min_support, &nested).ok());
  nested.Canonicalize();
  ExpectSameResults(sequential.results(), nested.results(), miner.name());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, NestedEquivalenceTest,
    ::testing::Values(Case{Algorithm::kEclat, false},
                      Case{Algorithm::kEclat, true},
                      Case{Algorithm::kLcm, false},
                      Case{Algorithm::kLcm, true},
                      Case{Algorithm::kFpGrowth, false},
                      Case{Algorithm::kFpGrowth, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(AlgorithmName(info.param.algorithm)) +
             (info.param.all_patterns ? "AllPatterns" : "Plain");
    });

TEST(NestedMinerTest, RandomDatabasesMatchSequential) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomDbSpec spec;
    spec.num_transactions = 60;
    spec.num_items = 12;
    spec.avg_len = 5.0;
    spec.seed = seed;
    const Database db = RandomDb(spec);

    MineOptions options;
    options.min_support = 2;
    options.algorithm = Algorithm::kEclat;
    CollectingSink sequential;
    ASSERT_TRUE(Mine(db, options, &sequential).ok());
    sequential.Canonicalize();

    NestedParallelMiner miner =
        MakeNested(Case{Algorithm::kEclat, false}, /*threads=*/3,
                   /*spawn=*/1);
    CollectingSink nested;
    ASSERT_TRUE(miner.Mine(db, 2, &nested).ok());
    nested.Canonicalize();
    ExpectSameResults(sequential.results(), nested.results(),
                      "random seed " + std::to_string(seed));
  }
}

TEST(NestedMinerTest, MineFrontEndUsesNestedDriverByDefault) {
  // ExecutionPolicy.nested defaults to true; flipping it selects the
  // top-level driver. Both must agree with each other.
  const Database db = SmallQuestDb();
  MineOptions options;
  options.min_support = 8;
  options.execution.num_threads = 4;

  CollectingSink nested;
  ASSERT_TRUE(Mine(db, options, &nested).ok());
  nested.Canonicalize();

  options.execution.nested = false;
  CollectingSink flat;
  ASSERT_TRUE(Mine(db, options, &flat).ok());
  flat.Canonicalize();
  ExpectSameResults(nested.results(), flat.results(), "nested vs flat");
}

TEST(NestedMinerTest, EmptyDatabase) {
  NestedParallelMiner miner =
      MakeNested(Case{Algorithm::kLcm, false}, /*threads=*/2, /*spawn=*/1);
  CollectingSink sink;
  Result<MineStats> stats = miner.Mine(Database(), 1, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(stats->num_frequent, 0u);
}

TEST(NestedMinerTest, RejectsZeroThreads) {
  NestedParallelMinerOptions no;
  no.execution.num_threads = 0;
  no.factory = [] { return CreateMiner(Algorithm::kLcm, PatternSet::None()); };
  NestedParallelMiner miner(std::move(no));
  Database db = MakeDb({{0}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NestedMinerTest, RejectsMissingFactory) {
  NestedParallelMinerOptions no;
  no.execution.num_threads = 2;
  NestedParallelMiner miner(std::move(no));
  Database db = MakeDb({{0}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NestedMinerTest, PropagatesFactoryErrors) {
  NestedParallelMinerOptions no;
  no.execution.num_threads = 2;
  no.factory = []() -> Result<std::unique_ptr<Miner>> {
    return Status::Internal("factory failure");
  };
  NestedParallelMiner miner(std::move(no));
  Database db = MakeDb({{0, 1}, {0, 1}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(NestedMinerTest, NameReflectsConfiguration) {
  NestedParallelMinerOptions no;
  no.execution.num_threads = 4;
  no.kernel_name = "lcm";
  no.factory = [] { return CreateMiner(Algorithm::kLcm, PatternSet::None()); };
  EXPECT_EQ(NestedParallelMiner(no).name(), "nested(4xlcm)");
  no.execution.deterministic = false;
  EXPECT_EQ(NestedParallelMiner(no).name(), "nested(4xlcm,nondet)");
}

}  // namespace
}  // namespace fpm
