// Observability of the parallel driver: exactly one "class" trace span
// per first-item equivalence class, and pool/submit/steal counters in
// the default metrics registry.

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/core/mine.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"
#include "fpm/parallel/thread_pool.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

Database SmallQuestDb() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 60;
  p.num_patterns = 40;
  auto db = GenerateQuest(p);
  EXPECT_TRUE(db.ok());
  return db.value();
}

// Enables the default tracer + registry for one test and restores the
// disabled state afterwards so the instrumentation stays inert for the
// rest of the suite.
class ParallelObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Default().Clear();
    Tracer::Default().set_enabled(true);
    MetricsRegistry::Default().Reset();
    MetricsRegistry::Default().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Default().set_enabled(false);
    Tracer::Default().Clear();
    MetricsRegistry::Default().set_enabled(false);
    MetricsRegistry::Default().Reset();
  }
};

TEST_F(ParallelObsTest, OneClassSpanPerEquivalenceClass) {
  const Database db = SmallQuestDb();
  MineOptions options;
  options.algorithm = Algorithm::kEclat;
  options.min_support = 8;
  options.execution.num_threads = 4;
  // Pin the top-level driver: under the nested driver a class span's
  // itemset count excludes subtrees detached to task spans, so the
  // per-class sums below would not cover the whole result set.
  options.execution.nested = false;
  CollectingSink sink;
  ASSERT_TRUE(Mine(db, options, &sink).ok());

  // Every frequent item owns exactly one equivalence class.
  size_t num_frequent_items = 0;
  for (const auto& entry : sink.results()) {
    if (entry.first.size() == 1) ++num_frequent_items;
  }
  ASSERT_GT(num_frequent_items, 0u);

  const std::vector<TraceSpan> spans = Tracer::Default().CollectSpans();
  std::vector<const TraceSpan*> class_spans;
  for (const TraceSpan& s : spans) {
    if (s.name == "class") class_spans.push_back(&s);
  }
  EXPECT_EQ(class_spans.size(), num_frequent_items);

  // Each class span names a distinct owner item and reports its size and
  // output; the itemset counts add up to the full result set.
  std::set<uint64_t> owners;
  uint64_t total_itemsets = 0;
  for (const TraceSpan* s : class_spans) {
    uint64_t item = 0, itemsets = 0;
    bool has_entries = false;
    for (const auto& [key, value] : s->args) {
      if (key == "item") {
        item = value;
        owners.insert(value);
      } else if (key == "entries") {
        has_entries = true;
      } else if (key == "itemsets") {
        itemsets = value;
      }
    }
    EXPECT_TRUE(has_entries) << "class span for item " << item;
    total_itemsets += itemsets;
  }
  EXPECT_EQ(owners.size(), class_spans.size()) << "duplicate class owners";
  EXPECT_EQ(total_itemsets, sink.results().size());

  // The phase spans and the deterministic merge span are present too.
  auto has_span = [&spans](std::string_view name) {
    return std::any_of(spans.begin(), spans.end(),
                       [name](const TraceSpan& s) { return s.name == name; });
  };
  EXPECT_TRUE(has_span("prepare"));
  EXPECT_TRUE(has_span("mine"));
  EXPECT_TRUE(has_span("merge"));
}

TEST_F(ParallelObsTest, ClassCounterAndHistogramMatchSpans) {
  const Database db = SmallQuestDb();
  MineOptions options;
  options.algorithm = Algorithm::kLcm;
  options.min_support = 8;
  options.execution.num_threads = 2;
  options.execution.nested = false;
  CollectingSink sink;
  ASSERT_TRUE(Mine(db, options, &sink).ok());

  size_t class_spans = 0;
  for (const TraceSpan& s : Tracer::Default().CollectSpans()) {
    if (s.name == "class") ++class_spans;
  }
  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snap.counter("fpm.parallel.classes"), class_spans);
  const HistogramSample* sizes = snap.histogram("fpm.parallel.class_entries");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->count(), class_spans);
}

TEST_F(ParallelObsTest, PoolCountersTrackSubmitsAndSteals) {
  // Drive the pool directly so the submit count is exact.
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  constexpr uint64_t kTasks = 64;
  {
    ThreadPool pool(4);
    std::atomic<uint64_t> ran{0};
    for (uint64_t i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), kTasks);
  }
  const MetricsSnapshot delta =
      MetricsRegistry::Default().Snapshot(/*per_thread=*/true).DeltaSince(
          before);
  EXPECT_EQ(delta.counter("fpm.pool.submits"), kTasks);
  // Steals and idle waits depend on scheduling; only their registration
  // is guaranteed.
  auto registered = [&delta](std::string_view name) {
    return std::any_of(
        delta.counters.begin(), delta.counters.end(),
        [name](const CounterSample& c) { return c.name == name; });
  };
  EXPECT_TRUE(registered("fpm.pool.steals"));
  EXPECT_TRUE(registered("fpm.pool.idle_waits"));
}

}  // namespace
}  // namespace fpm
