// Observability of the nested driver: fpm.task.* spawn/cutoff counters,
// depth and wall histograms, load-balance gauges, and "task" trace
// spans tying detached subtrees back to their class.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/core/mine.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"
#include "fpm/parallel/nested_miner.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

Database SmallQuestDb() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 60;
  p.num_patterns = 40;
  auto db = GenerateQuest(p);
  EXPECT_TRUE(db.ok());
  return db.value();
}

NestedParallelMiner MakeNested(uint32_t threads, uint64_t spawn_min_entries) {
  NestedParallelMinerOptions no;
  no.execution.num_threads = threads;
  no.spawn_min_entries = spawn_min_entries;
  no.kernel_name = "eclat";
  no.factory = [] {
    return CreateMiner(Algorithm::kEclat, PatternSet::None());
  };
  return NestedParallelMiner(std::move(no));
}

class NestedObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Default().Clear();
    Tracer::Default().set_enabled(true);
    MetricsRegistry::Default().Reset();
    MetricsRegistry::Default().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Default().set_enabled(false);
    Tracer::Default().Clear();
    MetricsRegistry::Default().set_enabled(false);
    MetricsRegistry::Default().Reset();
  }
};

TEST_F(NestedObsTest, SpawnsRecordedWhenCutoffForcedLow) {
  const Database db = SmallQuestDb();
  NestedParallelMiner miner = MakeNested(/*threads=*/4, /*spawn=*/1);
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 8, &sink).ok());

  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  const uint64_t spawns = snap.counter("fpm.task.spawns");
  const uint64_t classes = snap.counter("fpm.parallel.classes");
  EXPECT_GT(spawns, 0u) << "spawn_min_entries=1 must force spawning";
  EXPECT_GT(classes, 0u);

  // One depth observation per spawn; one wall observation per task
  // (class tasks and detached subtree tasks alike).
  const HistogramSample* depths = snap.histogram("fpm.task.depth");
  ASSERT_NE(depths, nullptr);
  EXPECT_EQ(depths->count(), spawns);
  const HistogramSample* walls = snap.histogram("fpm.task.wall_micros");
  ASSERT_NE(walls, nullptr);
  EXPECT_EQ(walls->count(), spawns + classes);

  // Load-balance gauges: max over workers >= mean over workers, and the
  // imbalance ratio is >= 1000 (milli) whenever any work was measured.
  const uint64_t busy_max = snap.gauge("fpm.task.busy_max_micros");
  const uint64_t busy_mean = snap.gauge("fpm.task.busy_mean_micros");
  EXPECT_GE(busy_max, busy_mean);
  if (busy_mean > 0) {
    EXPECT_GE(snap.gauge("fpm.task.imbalance_milli"), 1000u);
  }

  // Every spawned subtree ran under a "task" span carrying its depth,
  // owning class item, and output size.
  const std::vector<TraceSpan> spans = Tracer::Default().CollectSpans();
  std::vector<const TraceSpan*> task_spans;
  for (const TraceSpan& s : spans) {
    if (s.name == "task") task_spans.push_back(&s);
  }
  EXPECT_EQ(task_spans.size(), spawns);
  for (const TraceSpan* s : task_spans) {
    auto has_arg = [s](std::string_view key) {
      return std::any_of(s->args.begin(), s->args.end(),
                         [key](const auto& kv) { return kv.first == key; });
    };
    EXPECT_TRUE(has_arg("depth"));
    EXPECT_TRUE(has_arg("item"));
    EXPECT_TRUE(has_arg("itemsets"));
  }
}

TEST_F(NestedObsTest, CutoffsRecordedWhenSpawningSuppressed) {
  const Database db = SmallQuestDb();
  // A cutoff no subtree of this tiny database can clear.
  NestedParallelMiner miner =
      MakeNested(/*threads=*/4, /*spawn=*/uint64_t{1} << 40);
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 8, &sink).ok());

  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snap.counter("fpm.task.spawns"), 0u);
  EXPECT_GT(snap.counter("fpm.task.cutoffs"), 0u)
      << "declined offers must be counted";
  const HistogramSample* walls = snap.histogram("fpm.task.wall_micros");
  ASSERT_NE(walls, nullptr);
  EXPECT_EQ(walls->count(), snap.counter("fpm.parallel.classes"));
}

TEST_F(NestedObsTest, InlinePathOffersNothing) {
  // num_threads == 1 runs without a spawner: no offers, no spawns, no
  // cutoffs — but class tasks are still measured.
  const Database db = SmallQuestDb();
  NestedParallelMiner miner = MakeNested(/*threads=*/1, /*spawn=*/1);
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 8, &sink).ok());

  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snap.counter("fpm.task.spawns"), 0u);
  EXPECT_EQ(snap.counter("fpm.task.cutoffs"), 0u);
  const HistogramSample* walls = snap.histogram("fpm.task.wall_micros");
  ASSERT_NE(walls, nullptr);
  EXPECT_EQ(walls->count(), snap.counter("fpm.parallel.classes"));
}

TEST_F(NestedObsTest, HelpRunsCounterRegistered) {
  // A worker that joins a group with pending tasks executes them via
  // HelpWhile; the counter must at least be registered (whether any
  // helping happened depends on scheduling).
  const Database db = SmallQuestDb();
  NestedParallelMiner miner = MakeNested(/*threads=*/2, /*spawn=*/1);
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 8, &sink).ok());

  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_TRUE(std::any_of(
      snap.counters.begin(), snap.counters.end(),
      [](const CounterSample& c) { return c.name == "fpm.pool.help_runs"; }));
}

}  // namespace
}  // namespace fpm
