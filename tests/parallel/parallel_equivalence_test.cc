// Parallel-vs-sequential equivalence: the task-parallel driver must
// emit exactly the itemsets of the sequential kernel it wraps — same
// sets, same supports — at every thread count, and byte-identical
// output order in deterministic mode.

#include "fpm/parallel/parallel_miner.h"

#include <gtest/gtest.h>

#include "fpm/core/mine.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/standin_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::MineCanonical;

Database SmallQuestDb() {
  QuestParams p;
  p.num_transactions = 400;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 60;
  p.num_patterns = 40;
  auto db = GenerateQuest(p);
  EXPECT_TRUE(db.ok());
  return db.value();
}

Database SmallWebDocsDb() {
  WebDocsLikeParams p;
  p.num_transactions = 300;
  p.vocabulary = 80;
  p.avg_length = 10;
  p.num_topics = 6;
  p.topic_vocabulary = 20;
  auto db = GenerateWebDocsLike(p);
  EXPECT_TRUE(db.ok());
  return db.value();
}

struct Case {
  Algorithm algorithm;
  Support min_support;
};

class ParallelEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelEquivalenceTest, MatchesSequentialOnQuest) {
  const Case c = GetParam();
  const Database db = SmallQuestDb();

  MineOptions options;
  options.algorithm = c.algorithm;
  options.min_support = c.min_support;
  CollectingSink sequential;
  ASSERT_TRUE(Mine(db, options, &sequential).ok());
  sequential.Canonicalize();

  for (uint32_t threads : {1u, 2u, 4u}) {
    options.execution.num_threads = threads;
    CollectingSink parallel;
    Result<MineStats> stats = Mine(db, options, &parallel);
    ASSERT_TRUE(stats.ok()) << AlgorithmName(c.algorithm) << " x" << threads;
    EXPECT_EQ(stats->num_frequent, sequential.results().size());
    parallel.Canonicalize();
    ExpectSameResults(sequential.results(), parallel.results(),
                      std::string(AlgorithmName(c.algorithm)) + " x" +
                          std::to_string(threads) + " (quest)");
  }
}

TEST_P(ParallelEquivalenceTest, MatchesSequentialOnWebDocsStandin) {
  const Case c = GetParam();
  const Database db = SmallWebDocsDb();

  MineOptions options;
  options.algorithm = c.algorithm;
  options.min_support = c.min_support;
  CollectingSink sequential;
  ASSERT_TRUE(Mine(db, options, &sequential).ok());
  sequential.Canonicalize();

  for (uint32_t threads : {2u, 4u}) {
    options.execution.num_threads = threads;
    CollectingSink parallel;
    ASSERT_TRUE(Mine(db, options, &parallel).ok());
    parallel.Canonicalize();
    ExpectSameResults(sequential.results(), parallel.results(),
                      std::string(AlgorithmName(c.algorithm)) + " x" +
                          std::to_string(threads) + " (webdocs)");
  }
}

TEST_P(ParallelEquivalenceTest, NonDeterministicModeSameChecksum) {
  // The streaming merge gives up ordering, never content: the
  // order-insensitive checksum must match the sequential run exactly.
  const Case c = GetParam();
  const Database db = SmallQuestDb();

  MineOptions options;
  options.algorithm = c.algorithm;
  options.min_support = c.min_support;
  CountingSink sequential;
  ASSERT_TRUE(Mine(db, options, &sequential).ok());

  options.execution.num_threads = 4;
  options.execution.deterministic = false;
  CountingSink parallel;
  ASSERT_TRUE(Mine(db, options, &parallel).ok());
  EXPECT_EQ(parallel.count(), sequential.count());
  EXPECT_EQ(parallel.checksum(), sequential.checksum());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ParallelEquivalenceTest,
    ::testing::Values(Case{Algorithm::kEclat, 8}, Case{Algorithm::kLcm, 8},
                      Case{Algorithm::kFpGrowth, 8}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(AlgorithmName(info.param.algorithm));
    });

TEST(ParallelDeterminismTest, RepeatRunsAreByteIdentical) {
  // deterministic=true promises a reproducible emission order, not just
  // a reproducible set: compare *un*canonicalized results across runs.
  const Database db = SmallQuestDb();
  MineOptions options;
  options.min_support = 8;
  options.execution.num_threads = 4;

  CollectingSink first;
  ASSERT_TRUE(Mine(db, options, &first).ok());
  for (int run = 0; run < 3; ++run) {
    CollectingSink again;
    ASSERT_TRUE(Mine(db, options, &again).ok());
    ASSERT_EQ(first.results().size(), again.results().size());
    EXPECT_TRUE(first.results() == again.results())
        << "run " << run << " emitted a different order";
  }
}

TEST(ParallelMinerTest, RandomDatabasesMatchSequential) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomDbSpec spec;
    spec.num_transactions = 60;
    spec.num_items = 12;
    spec.avg_len = 5.0;
    spec.seed = seed;
    const Database db = RandomDb(spec);

    MineOptions options;
    options.min_support = 2;
    options.algorithm = Algorithm::kEclat;
    CollectingSink sequential;
    ASSERT_TRUE(Mine(db, options, &sequential).ok());
    sequential.Canonicalize();

    options.execution.num_threads = 3;
    CollectingSink parallel;
    ASSERT_TRUE(Mine(db, options, &parallel).ok());
    parallel.Canonicalize();
    ExpectSameResults(sequential.results(), parallel.results(),
                      "random seed " + std::to_string(seed));
  }
}

TEST(ParallelMinerTest, EmptyDatabase) {
  ParallelMinerOptions po;
  po.execution.num_threads = 2;
  po.factory = [] { return CreateMiner(Algorithm::kLcm, PatternSet::None()); };
  ParallelMiner miner(po);
  CollectingSink sink;
  Result<MineStats> stats = miner.Mine(Database(), 1, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(stats->num_frequent, 0u);
}

TEST(ParallelMinerTest, SupportAboveEverythingEmitsNothing) {
  Database db = MakeDb({{0, 1}, {0, 1}});
  ParallelMinerOptions po;
  po.execution.num_threads = 2;
  po.factory = [] { return CreateMiner(Algorithm::kLcm, PatternSet::None()); };
  ParallelMiner miner(po);
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 3, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
}

TEST(ParallelMinerTest, RejectsZeroThreads) {
  ParallelMinerOptions po;
  po.execution.num_threads = 0;
  po.factory = [] { return CreateMiner(Algorithm::kLcm, PatternSet::None()); };
  ParallelMiner miner(po);
  Database db = MakeDb({{0}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ParallelMinerTest, RejectsMissingFactory) {
  ParallelMinerOptions po;
  po.execution.num_threads = 2;
  ParallelMiner miner(po);
  Database db = MakeDb({{0}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ParallelMinerTest, PropagatesFactoryErrors) {
  ParallelMinerOptions po;
  po.execution.num_threads = 2;
  po.factory = []() -> Result<std::unique_ptr<Miner>> {
    return Status::Internal("factory failure");
  };
  ParallelMiner miner(po);
  // Two items in one transaction so at least one conditional class is
  // non-empty and the factory actually runs.
  Database db = MakeDb({{0, 1}, {0, 1}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ParallelMinerTest, NameReflectsConfiguration) {
  ParallelMinerOptions po;
  po.execution.num_threads = 4;
  po.kernel_name = "lcm";
  po.factory = [] { return CreateMiner(Algorithm::kLcm, PatternSet::None()); };
  EXPECT_EQ(ParallelMiner(po).name(), "parallel(4xlcm)");
  po.execution.deterministic = false;
  EXPECT_EQ(ParallelMiner(po).name(), "parallel(4xlcm,nondet)");
}

}  // namespace
}  // namespace fpm
