// TaskGroup fork-join semantics, and the continuation-safety property
// that makes nested mining possible: a worker blocked in Wait() executes
// pending tasks instead of idling, so arbitrarily deep fork-join nesting
// on a tiny pool cannot deadlock.

#include "fpm/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace fpm {
namespace {

TEST(TaskGroupTest, RunsEveryForkedTask) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<uint64_t> ran{0};
  constexpr uint64_t kTasks = 200;
  for (uint64_t i = 0; i < kTasks; ++i) {
    group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(TaskGroupTest, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Wait();  // must not hang
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(ran.load(), (round + 1) * 10);
  }
}

TEST(TaskGroupTest, TasksCanForkOntoTheirOwnGroup) {
  // The outer Wait() must cover tasks forked by tasks — the nested
  // driver forks subtree tasks onto the same group as the class tasks.
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<uint64_t> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.Run([&group, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 4; ++j) {
        group.Run([&group, &ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
          group.Run(
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        });
      }
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 8u * (1 + 4 * 2));
}

// Full binary tree of fork-joins: every interior node forks two
// children onto a fresh group and joins them from inside a pool task.
// With more tree levels than workers, progress is impossible unless a
// worker blocked in Wait() helps execute pending tasks.
uint64_t TreeSum(ThreadPool* pool, uint32_t levels) {
  if (levels == 0) return 1;
  TaskGroup group(pool);
  std::atomic<uint64_t> sum{1};
  for (int child = 0; child < 2; ++child) {
    group.Run([pool, levels, &sum] {
      sum.fetch_add(TreeSum(pool, levels - 1), std::memory_order_relaxed);
    });
  }
  group.Wait();
  return sum.load();
}

TEST(TaskGroupTest, NestedJoinsOnTinyPoolDoNotDeadlock) {
  ThreadPool pool(2);
  // 2^9 - 1 nodes, 255 interior joins, 2 workers.
  EXPECT_EQ(TreeSum(&pool, 8), (1u << 9) - 1);
}

TEST(TaskGroupTest, NestedJoinsOnSingleWorkerPool) {
  // The degenerate pool: every join must be served by the one worker
  // helping through its own blocked frames.
  ThreadPool pool(1);
  EXPECT_EQ(TreeSum(&pool, 6), (1u << 7) - 1);
}

TEST(TaskGroupTest, TwoGroupsOnOnePoolStayIndependent) {
  ThreadPool pool(4);
  TaskGroup a(&pool);
  TaskGroup b(&pool);
  std::atomic<int> ran_a{0};
  std::atomic<int> ran_b{0};
  for (int i = 0; i < 50; ++i) {
    a.Run([&ran_a] { ran_a.fetch_add(1, std::memory_order_relaxed); });
    b.Run([&ran_b] { ran_b.fetch_add(1, std::memory_order_relaxed); });
  }
  a.Wait();
  EXPECT_EQ(ran_a.load(), 50);
  b.Wait();
  EXPECT_EQ(ran_b.load(), 50);
}

TEST(ThreadPoolTest, HelpWhileFromNonWorkerBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<bool> flag{false};
  pool.Submit([&flag] { flag.store(true, std::memory_order_release); });
  pool.Submit([&pool] { pool.NotifyGroupWaiters(); });
  pool.HelpWhile(
      [&flag] { return flag.load(std::memory_order_acquire); });
  EXPECT_TRUE(flag.load());
  pool.Wait();
}

}  // namespace
}  // namespace fpm
