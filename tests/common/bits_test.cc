#include "fpm/common/bits.h"

#include <gtest/gtest.h>

#include "fpm/common/rng.h"

namespace fpm {
namespace {

TEST(BitsTest, PopCountBasics) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(1), 1);
  EXPECT_EQ(PopCount64(~0ull), 64);
  EXPECT_EQ(PopCount64(0xf0f0f0f0f0f0f0f0ull), 32);
}

TEST(BitsTest, SwarMatchesBuiltinOnRandomInputs) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.NextU64();
    EXPECT_EQ(PopCount64Swar(x), PopCount64(x)) << std::hex << x;
  }
  EXPECT_EQ(PopCount64Swar(0), 0);
  EXPECT_EQ(PopCount64Swar(~0ull), 64);
}

TEST(BitsTest, CountTrailingZeros) {
  EXPECT_EQ(CountTrailingZeros64(1), 0);
  EXPECT_EQ(CountTrailingZeros64(2), 1);
  EXPECT_EQ(CountTrailingZeros64(1ull << 63), 63);
  EXPECT_EQ(CountTrailingZeros64(0b1010000), 4);
}

TEST(BitsTest, Log2Floor) {
  EXPECT_EQ(Log2Floor64(1), 0);
  EXPECT_EQ(Log2Floor64(2), 1);
  EXPECT_EQ(Log2Floor64(3), 1);
  EXPECT_EQ(Log2Floor64(1024), 10);
  EXPECT_EQ(Log2Floor64(~0ull), 63);
}

TEST(BitsTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundUp(9, 8), 16u);
  EXPECT_EQ(RoundUp(63, 64), 64u);
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 63) + 1));
}

}  // namespace
}  // namespace fpm
