#include "fpm/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace fpm {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(19);
  double sum = 0, sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.NextNormal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonMeanConvergesSmallAndLarge) {
  Rng rng(23);
  for (double mean : {0.5, 4.0, 20.0, 60.0}) {
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(27);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(ZipfSamplerTest, RankZeroMostProbable) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.2);
  double total = 0;
  for (uint32_t r = 0; r < 50; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (uint32_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(31);
  constexpr int kN = 100000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(&rng)];
  for (uint32_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, zipf.Pmf(r),
                0.01)
        << "rank " << r;
  }
}

TEST(WeightedSamplerTest, RespectsWeights) {
  WeightedSampler sampler({1.0, 3.0, 0.0, 6.0});
  Rng rng(37);
  constexpr int kN = 100000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kN; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0], kN * 0.1, kN * 0.01);
  EXPECT_NEAR(counts[1], kN * 0.3, kN * 0.015);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], kN * 0.6, kN * 0.015);
}

TEST(WeightedSamplerTest, SingleWeight) {
  WeightedSampler sampler({5.0});
  Rng rng(41);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(&state);
  uint64_t state2 = 0;
  EXPECT_EQ(first, SplitMix64(&state2));
  EXPECT_NE(SplitMix64(&state), first);
}

}  // namespace
}  // namespace fpm
