#include "fpm/common/logging.h"

#include <gtest/gtest.h>

#include "fpm/common/status.h"

namespace fpm {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, LogDoesNotCrash) {
  FPM_LOG(Debug) << "debug " << 1;
  FPM_LOG(Info) << "info " << 2.5;
  FPM_LOG(Warning) << "warning " << "text";
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(FPM_CHECK(1 == 2) << "math broke", "Check failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(FPM_CHECK_OK(Status::Internal("bad state")), "bad state");
}

TEST(LoggingTest, CheckPassesSilently) {
  FPM_CHECK(true) << "never shown";
  FPM_CHECK_OK(Status::OK()) << "never shown";
}

TEST(LoggingTest, DcheckPassesSilently) { FPM_DCHECK(2 + 2 == 4); }

}  // namespace
}  // namespace fpm
