#include "fpm/common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

namespace fpm {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  int* a = arena.New<int>(1);
  int* b = arena.New<int>(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  (void)arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  (void)arena.Allocate(3, 1);
  void* p64 = arena.Allocate(16, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

TEST(ArenaTest, LargeAllocationSpansNewBlock) {
  Arena arena(/*block_bytes=*/4096);
  char* big = static_cast<char*>(arena.Allocate(100000));
  std::memset(big, 0xab, 100000);  // must be fully usable
  EXPECT_GE(arena.bytes_reserved(), 100000u);
}

TEST(ArenaTest, ManySmallAllocationsAllUsable) {
  Arena arena(4096);
  std::vector<uint32_t*> ptrs;
  for (uint32_t i = 0; i < 10000; ++i) ptrs.push_back(arena.New<uint32_t>(i));
  for (uint32_t i = 0; i < 10000; ++i) EXPECT_EQ(*ptrs[i], i);
  EXPECT_EQ(arena.bytes_used(), 10000 * sizeof(uint32_t));
}

TEST(ArenaTest, AllocateArrayValueInitializes) {
  Arena arena;
  uint64_t* arr = arena.AllocateArray<uint64_t>(256);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(arr[i], 0u);
}

TEST(ArenaTest, ResetRetainsBlocksForReuse) {
  Arena arena(/*initial_block_bytes=*/4096);
  for (int i = 0; i < 5000; ++i) (void)arena.New<uint64_t>(i);
  EXPECT_GT(arena.bytes_used(), 0u);
  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Blocks are retained, not freed.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // A second fill of the same size touches the system allocator zero
  // times: the reservation must not grow.
  for (int i = 0; i < 5000; ++i) {
    uint64_t* p = arena.New<uint64_t>(i);
    ASSERT_EQ(*p, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ReleaseReturnsReservation) {
  Arena arena;
  (void)arena.Allocate(1000);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.Release();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // Usable again after release.
  int* p = arena.New<int>(5);
  EXPECT_EQ(*p, 5);
}

TEST(ArenaTest, AllocationLargerThanMaxBlockGetsDedicatedBlock) {
  Arena arena(/*initial_block_bytes=*/64, /*max_block_bytes=*/4096);
  char* big = static_cast<char*>(arena.Allocate(1 << 20));
  std::memset(big, 0x5a, 1 << 20);  // must be fully usable
  EXPECT_GE(arena.bytes_reserved(), static_cast<size_t>(1 << 20));
  // The oversized block does not poison subsequent small allocations.
  int* p = arena.New<int>(7);
  EXPECT_EQ(*p, 7);
}

TEST(ArenaTest, AlignmentHoldsAcrossBlockBoundary) {
  Arena arena(/*initial_block_bytes=*/64, /*max_block_bytes=*/64);
  // Leave the cursor misaligned right before the block fills up, so the
  // aligned allocation must start a new block and re-align there.
  (void)arena.Allocate(61, 1);
  void* p = arena.Allocate(32, 32);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 32, 0u);
  std::memset(p, 0xcd, 32);
}

TEST(ArenaTest, ResetReusesOversizedRetainedBlock) {
  Arena arena(/*initial_block_bytes=*/4096);
  (void)arena.Allocate(100000);
  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  // The retained first block is large enough for the refill.
  (void)arena.Allocate(100000);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, MoveTransfersBlocksAndEmptiesSource) {
  Arena a;
  int* p = a.New<int>(42);
  const size_t used = a.bytes_used();
  Arena b(std::move(a));
  EXPECT_EQ(*p, 42);  // heap blocks move with the arena
  EXPECT_EQ(b.bytes_used(), used);
  EXPECT_EQ(a.bytes_used(), 0u);
  EXPECT_EQ(a.bytes_reserved(), 0u);
}

TEST(ArenaPoolTest, LeaseReturnsArenaResetButWarm) {
  ArenaPool pool;
  size_t reserved = 0;
  {
    ArenaPool::Lease lease = pool.Acquire();
    (void)lease->Allocate(10000);
    reserved = lease->bytes_reserved();
    EXPECT_GT(reserved, 0u);
  }
  EXPECT_EQ(pool.arenas_created(), 1u);
  ArenaPool::Lease again = pool.Acquire();
  // Same arena, rewound but with its blocks retained.
  EXPECT_EQ(pool.arenas_created(), 1u);
  EXPECT_EQ(again->bytes_used(), 0u);
  EXPECT_EQ(again->bytes_reserved(), reserved);
}

TEST(ArenaPoolTest, ConcurrentLeasesGetDistinctArenas) {
  ArenaPool pool;
  ArenaPool::Lease a = pool.Acquire();
  ArenaPool::Lease b = pool.Acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.arenas_created(), 2u);
}

TEST(ArenaTest, BytesUsedExcludesPadding) {
  Arena arena;
  (void)arena.Allocate(1, 1);
  (void)arena.Allocate(1, 64);
  EXPECT_EQ(arena.bytes_used(), 2u);
}

}  // namespace
}  // namespace fpm
