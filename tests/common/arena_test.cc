#include "fpm/common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace fpm {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  int* a = arena.New<int>(1);
  int* b = arena.New<int>(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  (void)arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  (void)arena.Allocate(3, 1);
  void* p64 = arena.Allocate(16, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

TEST(ArenaTest, LargeAllocationSpansNewBlock) {
  Arena arena(/*block_bytes=*/4096);
  char* big = static_cast<char*>(arena.Allocate(100000));
  std::memset(big, 0xab, 100000);  // must be fully usable
  EXPECT_GE(arena.bytes_reserved(), 100000u);
}

TEST(ArenaTest, ManySmallAllocationsAllUsable) {
  Arena arena(4096);
  std::vector<uint32_t*> ptrs;
  for (uint32_t i = 0; i < 10000; ++i) ptrs.push_back(arena.New<uint32_t>(i));
  for (uint32_t i = 0; i < 10000; ++i) EXPECT_EQ(*ptrs[i], i);
  EXPECT_EQ(arena.bytes_used(), 10000 * sizeof(uint32_t));
}

TEST(ArenaTest, AllocateArrayValueInitializes) {
  Arena arena;
  uint64_t* arr = arena.AllocateArray<uint64_t>(256);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(arr[i], 0u);
}

TEST(ArenaTest, ResetReleasesAccounting) {
  Arena arena;
  (void)arena.Allocate(1000);
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // Usable again after reset.
  int* p = arena.New<int>(5);
  EXPECT_EQ(*p, 5);
}

TEST(ArenaTest, BytesUsedExcludesPadding) {
  Arena arena;
  (void)arena.Allocate(1, 1);
  (void)arena.Allocate(1, 64);
  EXPECT_EQ(arena.bytes_used(), 2u);
}

}  // namespace
}  // namespace fpm
