#include "fpm/common/status.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad support");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad support");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad support");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  FPM_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FPM_ASSIGN_OR_RETURN(int h, Half(x));
  FPM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 == 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH((void)r.value(), "boom");
}

TEST(ResultDeathTest, OkStatusConstructionAborts) {
  EXPECT_DEATH(Result<int>{Status::OK()}, "OK");
}

}  // namespace
}  // namespace fpm
