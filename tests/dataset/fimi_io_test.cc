#include "fpm/dataset/fimi_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace fpm {
namespace {

TEST(FimiParseTest, BasicParse) {
  auto r = ParseFimi("1 2 3\n4 5\n");
  ASSERT_TRUE(r.ok()) << r.status();
  const Database& db = r.value();
  ASSERT_EQ(db.num_transactions(), 2u);
  EXPECT_EQ(db.transaction(0).size(), 3u);
  EXPECT_EQ(db.transaction(1)[1], 5u);
}

TEST(FimiParseTest, HandlesMissingTrailingNewline) {
  auto r = ParseFimi("1 2\n3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_transactions(), 2u);
}

TEST(FimiParseTest, SkipsBlankLines) {
  auto r = ParseFimi("1 2\n\n\n3\n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_transactions(), 2u);
}

TEST(FimiParseTest, ToleratesTabsAndCarriageReturns) {
  auto r = ParseFimi("1\t2 \r\n3\r\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_transactions(), 2u);
  EXPECT_EQ(r->transaction(0).size(), 2u);
}

TEST(FimiParseTest, RejectsGarbage) {
  auto r = ParseFimi("1 2\nx y\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  // The diagnostic names the offending token, not just its first byte.
  EXPECT_NE(r.status().message().find("'x'"), std::string::npos);
}

TEST(FimiParseTest, ErrorNamesFullOffendingToken) {
  auto r = ParseFimi("1 2 3\n4 5\n6 12ab34 8\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(r.status().message().find("'12ab34'"), std::string::npos);
}

TEST(FimiParseTest, ErrorClipsVeryLongTokens) {
  const std::string long_token(100, 'z');
  auto r = ParseFimi("1\n" + long_token + "\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(r.status().message().find(std::string(32, 'z') + "..."),
            std::string::npos);
  EXPECT_EQ(r.status().message().find(std::string(33, 'z')),
            std::string::npos);
}

TEST(FimiParseTest, RejectsNegativeNumbers) {
  auto r = ParseFimi("-1 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'-1'"), std::string::npos);
}

TEST(FimiParseTest, RejectsOverflowingItem) {
  auto r = ParseFimi("99999999999\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overflows"), std::string::npos);
  EXPECT_NE(r.status().message().find("'99999999999'"), std::string::npos);
}

TEST(FimiParseTest, EmptyInputYieldsEmptyDatabase) {
  auto r = ParseFimi("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_transactions(), 0u);
}

TEST(FimiRoundTripTest, ParseSerializeParse) {
  const std::string text = "1 2 3\n10 20\n7\n";
  auto db = ParseFimi(text);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(ToFimi(db.value()), text);
}

TEST(FimiRoundTripTest, WeightedTransactionsExpand) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2}, 3);
  const std::string text = ToFimi(b.Build());
  EXPECT_EQ(text, "1 2\n1 2\n1 2\n");
}

TEST(FimiFileTest, WriteAndReadBack) {
  DatabaseBuilder b;
  b.AddTransaction({4, 2});
  b.AddTransaction({9});
  Database db = b.Build();
  const std::string path = testing::TempDir() + "/fimi_io_test.dat";
  ASSERT_TRUE(WriteFimiFile(db, path).ok());
  auto back = ReadFimiFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_transactions(), 2u);
  EXPECT_EQ(back->transaction(0)[0], 4u);
  EXPECT_EQ(back->transaction(1)[0], 9u);
  std::remove(path.c_str());
}

TEST(FimiFileTest, MissingFileIsIOError) {
  auto r = ReadFimiFile("/nonexistent/path/to/nothing.dat");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace fpm
