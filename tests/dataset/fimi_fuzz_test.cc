// Robustness: the FIMI parser must never crash and must classify every
// input as either a valid database or a clean InvalidArgument —
// including random byte soup, pathological whitespace, and huge tokens.

#include <gtest/gtest.h>

#include <string>

#include "fpm/common/rng.h"
#include "fpm/dataset/fimi_io.h"

namespace fpm {
namespace {

TEST(FimiFuzzTest, RandomPrintableGarbageNeverCrashes) {
  Rng rng(2024);
  constexpr const char kAlphabet[] =
      "0123456789 \t\r\nabcXYZ-+.,;#!\"'\\";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      text += kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
    }
    auto result = ParseFimi(text);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FimiFuzzTest, RandomBinaryGarbageNeverCrashes) {
  Rng rng(2025);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t len = rng.NextBounded(128);
    for (size_t i = 0; i < len; ++i) {
      text += static_cast<char>(rng.NextBounded(256));
    }
    auto result = ParseFimi(text);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FimiFuzzTest, ValidNumericSoupAlwaysParses) {
  // Inputs made only of digits and separators must always parse —
  // unless a token overflows 32 bits.
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const size_t tokens = rng.NextBounded(40);
    for (size_t i = 0; i < tokens; ++i) {
      text += std::to_string(rng.NextBounded(1000000));
      text += (rng.NextBool(0.2)) ? "\n" : " ";
    }
    auto result = ParseFimi(text);
    ASSERT_TRUE(result.ok()) << "input: " << text;
  }
}

TEST(FimiFuzzTest, ParsedDatabasesRoundTrip) {
  // Any successfully parsed input must survive serialize -> parse with
  // identical structure.
  Rng rng(2027);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    const size_t lines = 1 + rng.NextBounded(10);
    for (size_t l = 0; l < lines; ++l) {
      const size_t items = rng.NextBounded(8);
      for (size_t i = 0; i < items; ++i) {
        text += std::to_string(rng.NextBounded(50));
        text += ' ';
      }
      text += '\n';
    }
    auto first = ParseFimi(text);
    ASSERT_TRUE(first.ok());
    auto second = ParseFimi(ToFimi(first.value()));
    ASSERT_TRUE(second.ok());
    ASSERT_EQ(first->num_transactions(), second->num_transactions());
    for (Tid t = 0; t < first->num_transactions(); ++t) {
      const auto a = first->transaction(t);
      const auto b = second->transaction(t);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
}

TEST(FimiFuzzTest, HugeTokenRejectedCleanly) {
  std::string text(500, '9');
  auto result = ParseFimi(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fpm
