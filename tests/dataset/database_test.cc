#include "fpm/dataset/database.h"

#include <gtest/gtest.h>

#include <vector>

namespace fpm {
namespace {

TEST(DatabaseBuilderTest, EmptyDatabase) {
  DatabaseBuilder b;
  Database db = b.Build();
  EXPECT_EQ(db.num_transactions(), 0u);
  EXPECT_EQ(db.num_items(), 0u);
  EXPECT_EQ(db.num_entries(), 0u);
  EXPECT_EQ(db.total_weight(), 0u);
  EXPECT_EQ(db.average_length(), 0.0);
}

TEST(DatabaseBuilderTest, SingleTransaction) {
  DatabaseBuilder b;
  b.AddTransaction({3, 1, 4});
  Database db = b.Build();
  ASSERT_EQ(db.num_transactions(), 1u);
  EXPECT_EQ(db.num_items(), 5u);  // bound = max item + 1
  auto tx = db.transaction(0);
  ASSERT_EQ(tx.size(), 3u);
  EXPECT_EQ(tx[0], 3u);  // stored order preserved
  EXPECT_EQ(tx[1], 1u);
  EXPECT_EQ(tx[2], 4u);
}

TEST(DatabaseBuilderTest, FrequenciesCounted) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1});
  b.AddTransaction({1, 2});
  b.AddTransaction({1});
  Database db = b.Build();
  const auto& f = db.item_frequencies();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], 1u);
  EXPECT_EQ(f[1], 3u);
  EXPECT_EQ(f[2], 1u);
  EXPECT_EQ(db.total_weight(), 3u);
}

TEST(DatabaseBuilderTest, DuplicateItemsWithinTransactionRemoved) {
  DatabaseBuilder b;
  b.AddTransaction({5, 3, 5, 3, 7, 5});
  Database db = b.Build();
  auto tx = db.transaction(0);
  ASSERT_EQ(tx.size(), 3u);
  EXPECT_EQ(tx[0], 5u);  // first occurrence order
  EXPECT_EQ(tx[1], 3u);
  EXPECT_EQ(tx[2], 7u);
  EXPECT_EQ(db.item_frequencies()[5], 1u);
}

TEST(DatabaseBuilderTest, WeightsTracked) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 3);
  b.AddTransaction({1}, 1);
  Database db = b.Build();
  EXPECT_TRUE(db.has_weights());
  EXPECT_EQ(db.weight(0), 3u);
  EXPECT_EQ(db.weight(1), 1u);
  EXPECT_EQ(db.total_weight(), 4u);
  EXPECT_EQ(db.item_frequencies()[1], 4u);
  EXPECT_EQ(db.item_frequencies()[0], 3u);
}

TEST(DatabaseBuilderTest, UnweightedDatabaseHasNoWeightArray) {
  DatabaseBuilder b;
  b.AddTransaction({0});
  b.AddTransaction({1});
  Database db = b.Build();
  EXPECT_FALSE(db.has_weights());
  EXPECT_EQ(db.weight(0), 1u);
  EXPECT_EQ(db.weight(1), 1u);
}

TEST(DatabaseBuilderTest, EmptyTransactionKept) {
  DatabaseBuilder b;
  b.AddTransaction(std::span<const Item>{});
  b.AddTransaction({2});
  Database db = b.Build();
  ASSERT_EQ(db.num_transactions(), 2u);
  EXPECT_EQ(db.transaction(0).size(), 0u);
  EXPECT_EQ(db.total_weight(), 2u);
}

TEST(DatabaseBuilderTest, BuilderIsReusableAfterBuild) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1});
  Database first = b.Build();
  b.AddTransaction({5});
  Database second = b.Build();
  EXPECT_EQ(first.num_transactions(), 1u);
  EXPECT_EQ(second.num_transactions(), 1u);
  EXPECT_EQ(second.transaction(0)[0], 5u);
  EXPECT_EQ(second.num_items(), 6u);
}

TEST(DatabaseTest, AverageLength) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1, 2});
  b.AddTransaction({0});
  Database db = b.Build();
  EXPECT_DOUBLE_EQ(db.average_length(), 2.0);
}

TEST(DatabaseTest, CsrArraysConsistent) {
  DatabaseBuilder b;
  b.AddTransaction({9, 4});
  b.AddTransaction({2});
  b.AddTransaction({7, 3, 1});
  Database db = b.Build();
  const auto& offsets = db.offsets();
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[3], db.items().size());
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    EXPECT_EQ(db.transaction(t).size(), offsets[t + 1] - offsets[t]);
  }
}

TEST(DatabaseTest, MemoryBytesPositive) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1, 2});
  Database db = b.Build();
  EXPECT_GT(db.memory_bytes(), 0u);
}

}  // namespace
}  // namespace fpm
