#include "fpm/dataset/versioned.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace fpm {
namespace {

Database BuildDb(const std::vector<Itemset>& txns) {
  DatabaseBuilder b;
  for (const Itemset& t : txns) b.AddTransaction(t);
  return b.Build();
}

/// Byte-level database equality: transactions (content and order),
/// weights, frequencies and the derived aggregates.
void ExpectSameDatabase(const Database& expected, const Database& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.num_transactions(), actual.num_transactions()) << label;
  EXPECT_EQ(expected.num_items(), actual.num_items()) << label;
  EXPECT_EQ(expected.total_weight(), actual.total_weight()) << label;
  for (Tid t = 0; t < expected.num_transactions(); ++t) {
    const auto want = expected.transaction(t);
    const auto got = actual.transaction(t);
    ASSERT_EQ(want.size(), got.size()) << label << " txn " << t;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i], got[i]) << label << " txn " << t << " pos " << i;
    }
    EXPECT_EQ(expected.weight(t), actual.weight(t)) << label << " txn " << t;
  }
  EXPECT_TRUE(std::ranges::equal(expected.item_frequencies(),
                                 actual.item_frequencies()))
      << label;
}

TEST(VersionedDatasetTest, BaseIsVersionOne) {
  VersionedDataset ds(BuildDb({{1, 2}, {2, 3}}), "base-digest");
  ASSERT_EQ(ds.versions().size(), 1u);
  const DatasetVersion& v1 = ds.latest();
  EXPECT_EQ(v1.number, 1u);
  EXPECT_EQ(v1.digest, "base-digest");
  EXPECT_TRUE(v1.parent_digest.empty());
  EXPECT_EQ(v1.delta, nullptr);
  EXPECT_EQ(v1.num_transactions, 2u);
  EXPECT_EQ(ds.live_transactions(), 2u);
  EXPECT_EQ(ds.version(1), &ds.versions()[0]);
  EXPECT_EQ(ds.version(0), nullptr);
  EXPECT_EQ(ds.version(2), nullptr);
}

TEST(VersionedDatasetTest, AppendCreatesImmutableChildVersion) {
  VersionedDataset ds(BuildDb({{1, 2}, {2, 3}}), "base");
  std::shared_ptr<const Database> v1_db = ds.latest().database;

  auto appended = ds.Append({{3, 4}, {1}});
  ASSERT_TRUE(appended.ok()) << appended.status();
  const DatasetVersion& v2 = *appended.value();
  EXPECT_EQ(v2.number, 2u);
  EXPECT_EQ(v2.parent_digest, "base");
  EXPECT_EQ(v2.digest, ChainDigest("base", *v2.delta));
  ASSERT_NE(v2.delta, nullptr);
  EXPECT_EQ(v2.delta->appended.size(), 2u);
  EXPECT_TRUE(v2.delta->expired.empty());
  EXPECT_EQ(v2.delta->appended_weight, 2u);
  EXPECT_EQ(v2.num_transactions, 4u);

  // Readers of version 1 are unaffected: same object, same contents.
  EXPECT_EQ(ds.version(1)->database.get(), v1_db.get());
  ExpectSameDatabase(BuildDb({{1, 2}, {2, 3}}), *v1_db, "v1 after append");
  ExpectSameDatabase(BuildDb({{1, 2}, {2, 3}, {3, 4}, {1}}), *v2.database,
                     "v2");
}

TEST(VersionedDatasetTest, AppendValidatesInput) {
  VersionedDataset ds(BuildDb({{1}}), "d");
  EXPECT_FALSE(ds.Append({}).ok());
  EXPECT_FALSE(ds.Append({{1, 2}}, {1.0, 2.0}).ok());  // length mismatch
  EXPECT_FALSE(ds.Append({Itemset{}}).ok());           // empty transaction
  EXPECT_EQ(ds.versions().size(), 1u);  // failed ops create no version
}

TEST(VersionedDatasetTest, AppendNormalizesDuplicateItems) {
  VersionedDataset ds(BuildDb({{1}}), "d");
  auto v = ds.Append({{5, 3, 5, 3, 7, 5}});
  ASSERT_TRUE(v.ok());
  // Same first-occurrence dedup as DatabaseBuilder::AddTransaction.
  ExpectSameDatabase(BuildDb({{1}, {5, 3, 7}}), *v.value()->database,
                     "dedup");
  EXPECT_EQ(v.value()->delta->appended[0], (Itemset{5, 3, 7}));
}

TEST(VersionedDatasetTest, ExpireDropsOldestTransactions) {
  VersionedDataset ds(BuildDb({{1, 2}, {2, 3}, {3, 4}}), "d");
  auto v = ds.Expire(2);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v.value()->number, 2u);
  EXPECT_EQ(v.value()->delta->expired.size(), 2u);
  EXPECT_EQ(v.value()->delta->expired_weight, 2u);
  EXPECT_EQ(ds.live_transactions(), 1u);
  ExpectSameDatabase(BuildDb({{3, 4}}), *v.value()->database, "after expire");
}

TEST(VersionedDatasetTest, ExpireValidatesCount) {
  VersionedDataset ds(BuildDb({{1}, {2}}), "d");
  EXPECT_FALSE(ds.Expire(0).ok());
  EXPECT_FALSE(ds.Expire(3).ok());
  EXPECT_TRUE(ds.Expire(2).ok());
  EXPECT_EQ(ds.live_transactions(), 0u);
}

TEST(VersionedDatasetTest, InterleavedMatchesFromScratchBuild) {
  VersionedDataset ds(BuildDb({{1, 2, 3}, {2, 3}}), "d");
  std::vector<Itemset> live = {{1, 2, 3}, {2, 3}};

  const auto append = [&](std::vector<Itemset> txns) {
    auto v = ds.Append(txns);
    ASSERT_TRUE(v.ok()) << v.status();
    for (Itemset& t : txns) live.push_back(std::move(t));
    ExpectSameDatabase(BuildDb(live), *v.value()->database, "append step");
  };
  const auto expire = [&](uint64_t n) {
    auto v = ds.Expire(n);
    ASSERT_TRUE(v.ok()) << v.status();
    live.erase(live.begin(), live.begin() + static_cast<long>(n));
    ExpectSameDatabase(BuildDb(live), *v.value()->database, "expire step");
  };

  append({{3, 4}, {1, 4}});
  expire(1);
  append({{5, 1}});
  expire(2);
  append({{2, 5}, {5}, {1, 2, 5}});
  EXPECT_EQ(ds.latest().number, 6u);
  EXPECT_EQ(ds.live_transactions(), live.size());

  // Every historical version still matches its own snapshot count.
  for (const DatasetVersion& v : ds.versions()) {
    EXPECT_EQ(v.num_transactions, v.database->num_transactions());
  }
}

TEST(ChainDigestTest, DeterministicAndParentSensitive) {
  VersionDelta delta;
  delta.appended = {{1, 2}, {3}};
  delta.appended_weights = {1, 1};
  delta.appended_weight = 2;
  const std::string d1 = ChainDigest("parent-a", delta);
  EXPECT_EQ(d1.size(), 16u);
  EXPECT_EQ(d1, ChainDigest("parent-a", delta));
  EXPECT_NE(d1, ChainDigest("parent-b", delta));

  VersionDelta other = delta;
  other.appended[1] = {4};
  EXPECT_NE(d1, ChainDigest("parent-a", other));

  VersionDelta with_expiry = delta;
  with_expiry.expired = {{9}};
  with_expiry.expired_weights = {1};
  with_expiry.expired_weight = 1;
  EXPECT_NE(d1, ChainDigest("parent-a", with_expiry));
}

TEST(ChainDigestTest, TimestampsDoNotAffectDigest) {
  VersionedDataset a(BuildDb({{1}}), "d");
  VersionedDataset b(BuildDb({{1}}), "d");
  auto va = a.Append({{2, 3}}, {10.0});
  auto vb = b.Append({{2, 3}}, {99.0});
  ASSERT_TRUE(va.ok() && vb.ok());
  EXPECT_EQ(va.value()->digest, vb.value()->digest);
}

TEST(VersionedDatasetTest, LastNWindowExpiresOverflowInSameVersion) {
  VersionedDataset ds(BuildDb({{1}, {2}, {3}}), "d");
  WindowPolicy policy;
  policy.last_n = 3;
  EXPECT_EQ(ds.SetPolicy(policy)->number, 1u);  // already within bounds

  auto v = ds.Append({{4}, {5}});
  ASSERT_TRUE(v.ok());
  // One version: two appended, two expired to hold the window at 3.
  EXPECT_EQ(v.value()->number, 2u);
  EXPECT_EQ(v.value()->delta->appended_weight, 2u);
  EXPECT_EQ(v.value()->delta->expired_weight, 2u);
  EXPECT_EQ(ds.live_transactions(), 3u);
  ExpectSameDatabase(BuildDb({{3}, {4}, {5}}), *v.value()->database,
                     "windowed");
}

TEST(VersionedDatasetTest, SetPolicyExpiresExistingOverflowImmediately) {
  VersionedDataset ds(BuildDb({{1}, {2}, {3}, {4}}), "d");
  WindowPolicy policy;
  policy.last_n = 2;
  const DatasetVersion* v = ds.SetPolicy(policy);
  EXPECT_EQ(v->number, 2u);  // installing the policy expired two
  EXPECT_EQ(v->delta->expired_weight, 2u);
  ExpectSameDatabase(BuildDb({{3}, {4}}), *v->database, "post-policy");
  EXPECT_TRUE(ds.policy().bounded());
}

TEST(VersionedDatasetTest, LastSecondsWindowUsesTimestamps) {
  VersionedDataset ds(BuildDb({{1}}), "d");
  WindowPolicy policy;
  policy.last_seconds = 10.0;
  ds.SetPolicy(policy);

  // The t=100 append moves the cutoff to 90, expiring the base row
  // (implicit t=0); t=112 then moves it to 102, expiring the t=100 row.
  ASSERT_TRUE(ds.Append({{2}}, {100.0}).ok());
  ASSERT_TRUE(ds.Append({{3}}, {105.0}).ok());
  auto v = ds.Append({{4}}, {112.0});
  ASSERT_TRUE(v.ok());
  ExpectSameDatabase(BuildDb({{3}, {4}}), *v.value()->database,
                     "time window");
}

TEST(VersionedDatasetTest, MemoryBytesGrowsWithHistory) {
  VersionedDataset ds(BuildDb({{1, 2}}), "d");
  const size_t before = ds.memory_bytes();
  ASSERT_TRUE(ds.Append({{1, 2, 3, 4, 5}}).ok());
  EXPECT_GT(ds.memory_bytes(), before);
}

}  // namespace
}  // namespace fpm
