#include "fpm/dataset/quest_gen.h"

#include <gtest/gtest.h>

#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/stats.h"

namespace fpm {
namespace {

QuestParams SmallParams() {
  QuestParams p;
  p.num_transactions = 2000;
  p.avg_transaction_len = 10;
  p.avg_pattern_len = 4;
  p.num_items = 200;
  p.num_patterns = 100;
  return p;
}

TEST(QuestNameTest, ParsesPaperNames) {
  auto p = QuestParams::FromName("T60I10D300K");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_DOUBLE_EQ(p->avg_transaction_len, 60);
  EXPECT_DOUBLE_EQ(p->avg_pattern_len, 10);
  EXPECT_EQ(p->num_transactions, 300000u);
}

TEST(QuestNameTest, ParsesMillionSuffixAndPlainCount) {
  auto m = QuestParams::FromName("T10I4D2M");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_transactions, 2000000u);
  auto plain = QuestParams::FromName("T10I4D500");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->num_transactions, 500u);
}

TEST(QuestNameTest, RejectsMalformedNames) {
  EXPECT_FALSE(QuestParams::FromName("").ok());
  EXPECT_FALSE(QuestParams::FromName("X60I10D300K").ok());
  EXPECT_FALSE(QuestParams::FromName("T60D300K").ok());
  EXPECT_FALSE(QuestParams::FromName("T60I10").ok());
  EXPECT_FALSE(QuestParams::FromName("T60I10D300K!").ok());
}

TEST(QuestNameTest, NameRoundTrips) {
  auto p = QuestParams::FromName("T60I10D300K");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Name(), "T60I10D300K");
  QuestParams q;
  q.num_transactions = 1234;
  q.avg_transaction_len = 5;
  q.avg_pattern_len = 2;
  EXPECT_EQ(q.Name(), "T5I2D1234");
}

TEST(QuestValidateTest, RejectsBadRanges) {
  QuestParams p = SmallParams();
  p.num_transactions = 0;
  EXPECT_FALSE(GenerateQuest(p).ok());
  p = SmallParams();
  p.correlation = 1.5;
  EXPECT_FALSE(GenerateQuest(p).ok());
  p = SmallParams();
  p.avg_transaction_len = 0;
  EXPECT_FALSE(GenerateQuest(p).ok());
  p = SmallParams();
  p.corruption_mean = -0.1;
  EXPECT_FALSE(GenerateQuest(p).ok());
}

TEST(QuestGenTest, ProducesRequestedShape) {
  auto db = GenerateQuest(SmallParams());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_transactions(), 2000u);
  EXPECT_LE(db->num_items(), 200u);
  // Mean length should land near T (within generous tolerance; the
  // carry-over mechanism biases it slightly).
  EXPECT_GT(db->average_length(), 5.0);
  EXPECT_LT(db->average_length(), 20.0);
}

TEST(QuestGenTest, DeterministicForSeed) {
  auto a = GenerateQuest(SmallParams());
  auto b = GenerateQuest(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(ToFimi(a.value()), ToFimi(b.value()));
}

TEST(QuestGenTest, SeedChangesOutput) {
  QuestParams p = SmallParams();
  auto a = GenerateQuest(p);
  p.seed += 1;
  auto b = GenerateQuest(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(ToFimi(a.value()), ToFimi(b.value()));
}

TEST(QuestGenTest, TransactionsHaveNoDuplicateItems) {
  auto db = GenerateQuest(SmallParams());
  ASSERT_TRUE(db.ok());
  for (Tid t = 0; t < db->num_transactions(); ++t) {
    auto tx = db->transaction(t);
    std::vector<Item> sorted(tx.begin(), tx.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(QuestGenTest, PatternPoolCreatesCooccurrence) {
  // A Quest database must contain genuinely frequent co-occurring
  // itemsets (that's its purpose); a crude proxy: the top item pair
  // frequency should far exceed the independence expectation.
  QuestParams p = SmallParams();
  p.num_transactions = 5000;
  auto dbr = GenerateQuest(p);
  ASSERT_TRUE(dbr.ok());
  const Database& db = dbr.value();
  // Count co-occurrences of the two most frequent items.
  const auto& freq = db.item_frequencies();
  Item top1 = 0, top2 = 1;
  if (freq[top2] > freq[top1]) std::swap(top1, top2);
  for (Item i = 0; i < freq.size(); ++i) {
    if (freq[i] > freq[top1]) {
      top2 = top1;
      top1 = i;
    } else if (i != top1 && freq[i] > freq[top2]) {
      top2 = i;
    }
  }
  size_t both = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    auto tx = db.transaction(t);
    bool has1 = false, has2 = false;
    for (Item it : tx) {
      has1 |= (it == top1);
      has2 |= (it == top2);
    }
    if (has1 && has2) ++both;
  }
  const double expected_independent =
      static_cast<double>(freq[top1]) * freq[top2] / db.num_transactions();
  EXPECT_GT(static_cast<double>(both), 0.8 * expected_independent);
}

TEST(QuestGenTest, TinyUniverseStillWorks) {
  QuestParams p;
  p.num_transactions = 50;
  p.avg_transaction_len = 3;
  p.avg_pattern_len = 2;
  p.num_items = 4;
  p.num_patterns = 5;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_transactions(), 50u);
  for (Tid t = 0; t < db->num_transactions(); ++t) {
    EXPECT_GE(db->transaction(t).size(), 1u);
    EXPECT_LE(db->transaction(t).size(), 4u);
  }
}

}  // namespace
}  // namespace fpm
