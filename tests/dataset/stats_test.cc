#include "fpm/dataset/stats.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

Database MakeDb(std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

TEST(StatsTest, EmptyDatabase) {
  DatabaseStats s = ComputeStats(Database());
  EXPECT_EQ(s.num_transactions, 0u);
  EXPECT_EQ(s.density, 0.0);
  EXPECT_EQ(s.consecutive_jaccard, 0.0);
}

TEST(StatsTest, BasicCounts) {
  Database db = MakeDb({{0, 1, 2}, {1, 2}, {5}});
  DatabaseStats s = ComputeStats(db);
  EXPECT_EQ(s.num_transactions, 3u);
  EXPECT_EQ(s.num_items, 6u);
  EXPECT_EQ(s.num_used_items, 4u);  // 0,1,2,5
  EXPECT_EQ(s.num_entries, 6u);
  EXPECT_DOUBLE_EQ(s.avg_transaction_len, 2.0);
  EXPECT_EQ(s.max_transaction_len, 3u);
  EXPECT_DOUBLE_EQ(s.density, 6.0 / (3 * 4));
}

TEST(StatsTest, UniformFrequenciesHaveZeroGini) {
  Database db = MakeDb({{0, 1}, {2, 3}, {4, 5}});
  DatabaseStats s = ComputeStats(db);
  EXPECT_NEAR(s.frequency_gini, 0.0, 1e-12);
}

TEST(StatsTest, SkewedFrequenciesHavePositiveGini) {
  DatabaseBuilder b;
  for (int i = 0; i < 100; ++i) b.AddTransaction({0});
  for (Item i = 1; i <= 20; ++i) b.AddTransaction({i});
  Database db = b.Build();
  DatabaseStats s = ComputeStats(db);
  // One item holds 100 of 120 occurrences across 21 items.
  EXPECT_GT(s.frequency_gini, 0.75);
}

TEST(JaccardTest, IdenticalConsecutiveTransactions) {
  Database db = MakeDb({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
  EXPECT_DOUBLE_EQ(ConsecutiveJaccard(db), 1.0);
}

TEST(JaccardTest, DisjointConsecutiveTransactions) {
  Database db = MakeDb({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_DOUBLE_EQ(ConsecutiveJaccard(db), 0.0);
}

TEST(JaccardTest, PartialOverlap) {
  // {1,2} vs {2,3}: 1/3.
  Database db = MakeDb({{1, 2}, {2, 3}});
  EXPECT_NEAR(ConsecutiveJaccard(db), 1.0 / 3.0, 1e-12);
}

TEST(JaccardTest, OrderInsensitiveWithinTransaction) {
  Database a = MakeDb({{1, 2, 3}, {3, 2, 1}});
  EXPECT_DOUBLE_EQ(ConsecutiveJaccard(a), 1.0);
}

TEST(JaccardTest, SingleTransactionIsZero) {
  Database db = MakeDb({{1, 2}});
  EXPECT_DOUBLE_EQ(ConsecutiveJaccard(db), 0.0);
}

TEST(StatsTest, ToStringMentionsEveryField) {
  Database db = MakeDb({{0, 1}, {1}});
  const std::string s = ComputeStats(db).ToString();
  EXPECT_NE(s.find("transactions"), std::string::npos);
  EXPECT_NE(s.find("density"), std::string::npos);
  EXPECT_NE(s.find("gini"), std::string::npos);
  EXPECT_NE(s.find("jaccard"), std::string::npos);
}

}  // namespace
}  // namespace fpm
