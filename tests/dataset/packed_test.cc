// Packed-format tests: round-trip fidelity, the golden header layout,
// corruption diagnostics, and the storage-backend correctness contract
// — mining a mapped database is byte-identical to mining the same data
// parsed to heap, for every kernel, every task verb, and at any thread
// count.

#include "fpm/dataset/packed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/rules.h"
#include "fpm/core/mine.h"
#include "fpm/dataset/fimi_io.h"

namespace fpm {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The FIMI workload the identity tests mine: small but non-trivial
// (shared prefixes, a long tail item, duplicate transactions so the
// weighted path is exercised after ParseFimi merges them).
constexpr char kFimiText[] =
    "1 2 3\n1 2\n1 3\n2 3\n1 2 3 4\n1 2\n2 3 5\n1 2 3\n4 5\n1 2 3 4 5\n";

Database MapRoundTrip(const Database& db, const std::string& name,
                      std::string* digest_out = nullptr) {
  const std::string path = TempPath(name);
  const Status written = WritePacked(db, path);
  EXPECT_TRUE(written.ok()) << written;
  auto mapped = OpenMapped(path, digest_out);
  EXPECT_TRUE(mapped.ok()) << mapped.status();
  return std::move(mapped).value();
}

TEST(PackedRoundTripTest, PreservesArraysAndAggregates) {
  DatabaseBuilder b;
  b.AddTransaction({3, 1, 4});
  b.AddTransaction({1, 5});
  b.AddTransaction(std::span<const Item>{});  // empty rows survive too
  b.AddTransaction({9});
  const Database db = b.Build();
  const Database mapped = MapRoundTrip(db, "roundtrip.fpk");

  EXPECT_EQ(mapped.storage_kind(), StorageKind::kPacked);
  EXPECT_EQ(db.storage_kind(), StorageKind::kMemory);
  ASSERT_EQ(mapped.num_transactions(), db.num_transactions());
  EXPECT_EQ(mapped.num_items(), db.num_items());
  EXPECT_EQ(mapped.num_entries(), db.num_entries());
  EXPECT_EQ(mapped.total_weight(), db.total_weight());
  EXPECT_EQ(mapped.has_weights(), db.has_weights());
  EXPECT_TRUE(std::ranges::equal(mapped.items(), db.items()));
  EXPECT_TRUE(std::ranges::equal(mapped.offsets(), db.offsets()));
  EXPECT_TRUE(
      std::ranges::equal(mapped.item_frequencies(), db.item_frequencies()));
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    EXPECT_TRUE(std::ranges::equal(mapped.transaction(t), db.transaction(t)))
        << "txn " << t;
  }
}

TEST(PackedRoundTripTest, PreservesWeights) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2}, 3);
  b.AddTransaction({2}, 1);
  b.AddTransaction({1, 2, 4}, 7);
  const Database db = b.Build();
  ASSERT_TRUE(db.has_weights());
  const Database mapped = MapRoundTrip(db, "roundtrip_weights.fpk");
  ASSERT_TRUE(mapped.has_weights());
  EXPECT_TRUE(std::ranges::equal(mapped.weights(), db.weights()));
  EXPECT_EQ(mapped.total_weight(), 11u);
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    EXPECT_EQ(mapped.weight(t), db.weight(t)) << "txn " << t;
  }
}

TEST(PackedRoundTripTest, ByteAccountingSplitsResidentFromMapped) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2, 3});
  const Database db = b.Build();
  EXPECT_GT(db.resident_bytes(), 0u);
  EXPECT_EQ(db.mapped_bytes(), 0u);
  EXPECT_EQ(db.memory_bytes(), db.resident_bytes());

  const Database mapped = MapRoundTrip(db, "roundtrip_bytes.fpk");
  EXPECT_EQ(mapped.resident_bytes(), 0u);
  EXPECT_GT(mapped.mapped_bytes(), kPackedHeaderBytes);
  EXPECT_EQ(mapped.memory_bytes(), mapped.mapped_bytes());
}

TEST(PackedRoundTripTest, HeaderDigestRoundTrips) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2});
  const Database db = b.Build();

  // An explicit digest is stored verbatim.
  const std::string path = TempPath("digest_explicit.fpk");
  ASSERT_TRUE(WritePacked(db, path, "00deadbeef00cafe").ok());
  std::string digest;
  ASSERT_TRUE(OpenMapped(path, &digest).ok());
  EXPECT_EQ(digest, "00deadbeef00cafe");

  // The default digest is the canonical FIMI serialization's.
  std::string derived;
  MapRoundTrip(db, "digest_default.fpk", &derived);
  EXPECT_EQ(derived, ContentDigest(ToFimi(db)));

  // Anything that is not 16 chars is rejected up front.
  EXPECT_FALSE(WritePacked(db, path, "abc").ok());
}

TEST(PackedGoldenTest, HeaderBytesAreStable) {
  // Freezes the on-disk header: endianness, field order, version. If
  // this test fails the format changed and kPackedFormatVersion must be
  // bumped with a migration story — not silently.
  DatabaseBuilder b;
  b.AddTransaction({1, 2});
  b.AddTransaction({2});
  const Database db = b.Build();
  const std::string path = TempPath("golden.fpk");
  ASSERT_TRUE(WritePacked(db, path, "0123456789abcdef").ok());

  const std::string bytes = ReadAll(path);
  // 80-byte header + offsets (3 x u64) + items (3 x u32) + freqs
  // (3 x u32); no weights array for an unweighted database.
  ASSERT_EQ(bytes.size(), 128u);

  const unsigned char kExpectedHeader[kPackedHeaderBytes] = {
      // magic
      'F', 'P', 'M', 'P', 'A', 'C', 'K', '1',
      // format version 1 (u32 LE)
      1, 0, 0, 0,
      // endian check 0x01020304 (u32 LE)
      0x04, 0x03, 0x02, 0x01,
      // num_transactions = 2 (u64 LE)
      2, 0, 0, 0, 0, 0, 0, 0,
      // num_items = 3 (u64 LE)
      3, 0, 0, 0, 0, 0, 0, 0,
      // num_entries = 3 (u64 LE)
      3, 0, 0, 0, 0, 0, 0, 0,
      // total_weight = 2 (u64 LE)
      2, 0, 0, 0, 0, 0, 0, 0,
      // flags = 0 (no weights), reserved u32
      0, 0, 0, 0, 0, 0, 0, 0,
      // digest, 16 hex chars
      '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'a', 'b', 'c', 'd',
      'e', 'f',
      // reserved u64
      0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < kPackedHeaderBytes; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), kExpectedHeader[i])
        << "header byte " << i;
  }

  // Body: offsets 0,2,3 then items 1,2,2 then frequencies 0,1,2.
  const unsigned char kExpectedBody[48] = {
      0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0,
      3, 0, 0, 0, 0, 0, 0, 0,                          // offsets
      1, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0,              // items
      0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0};             // frequencies
  for (size_t i = 0; i < sizeof(kExpectedBody); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[kPackedHeaderBytes + i]),
              kExpectedBody[i])
        << "body byte " << i;
  }
}

TEST(PackedDiagnosticsTest, MagicSniffDistinguishesFormats) {
  DatabaseBuilder b;
  b.AddTransaction({1});
  const std::string packed = TempPath("sniff.fpk");
  ASSERT_TRUE(WritePacked(b.Build(), packed).ok());
  EXPECT_TRUE(IsPackedFile(packed));

  const std::string fimi = TempPath("sniff.dat");
  WriteAll(fimi, "1 2 3\n");
  EXPECT_FALSE(IsPackedFile(fimi));
  EXPECT_FALSE(IsPackedFile(TempPath("sniff_missing.fpk")));
}

TEST(PackedDiagnosticsTest, CorruptMagicNamesPathAndOffset) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2});
  const std::string path = TempPath("badmagic.fpk");
  ASSERT_TRUE(WritePacked(b.Build(), path).ok());
  std::string bytes = ReadAll(path);
  bytes[0] = 'X';
  WriteAll(path, bytes);

  auto opened = OpenMapped(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find(path), std::string::npos)
      << opened.status();
  EXPECT_NE(opened.status().message().find("bad magic"), std::string::npos);
  EXPECT_NE(opened.status().message().find("at offset 0"), std::string::npos);
}

TEST(PackedDiagnosticsTest, TruncationNamesPathAndOffset) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2, 3});
  const std::string path = TempPath("truncated.fpk");
  ASSERT_TRUE(WritePacked(b.Build(), path).ok());
  const std::string bytes = ReadAll(path);

  // Shorter than the header.
  WriteAll(path, bytes.substr(0, 40));
  auto header_cut = OpenMapped(path);
  ASSERT_FALSE(header_cut.ok());
  EXPECT_NE(header_cut.status().message().find(path), std::string::npos);
  EXPECT_NE(header_cut.status().message().find("truncated header"),
            std::string::npos);
  EXPECT_NE(header_cut.status().message().find("at offset 40"),
            std::string::npos);

  // Header intact, body cut short.
  WriteAll(path, bytes.substr(0, bytes.size() - 4));
  auto body_cut = OpenMapped(path);
  ASSERT_FALSE(body_cut.ok());
  EXPECT_NE(body_cut.status().message().find(path), std::string::npos);
  EXPECT_NE(body_cut.status().message().find("truncated or oversized body"),
            std::string::npos)
      << body_cut.status();
}

TEST(PackedDiagnosticsTest, VersionAndEndianMismatchesAreRejected) {
  DatabaseBuilder b;
  b.AddTransaction({1});
  const std::string path = TempPath("badversion.fpk");
  ASSERT_TRUE(WritePacked(b.Build(), path).ok());
  std::string bytes = ReadAll(path);

  std::string v2 = bytes;
  v2[8] = 2;  // format version field
  WriteAll(path, v2);
  auto bad_version = OpenMapped(path);
  ASSERT_FALSE(bad_version.ok());
  EXPECT_NE(
      bad_version.status().message().find("unsupported format version 2"),
      std::string::npos)
      << bad_version.status();
  EXPECT_NE(bad_version.status().message().find("at offset 8"),
            std::string::npos);

  std::string swapped = bytes;
  std::swap(swapped[12], swapped[15]);  // endian check word
  std::swap(swapped[13], swapped[14]);
  WriteAll(path, swapped);
  auto bad_endian = OpenMapped(path);
  ASSERT_FALSE(bad_endian.ok());
  EXPECT_NE(bad_endian.status().message().find("endian check mismatch"),
            std::string::npos)
      << bad_endian.status();
  EXPECT_NE(bad_endian.status().message().find("at offset 12"),
            std::string::npos);
}

TEST(PackedDiagnosticsTest, CorruptOffsetsAreRejectedBeforeMining) {
  DatabaseBuilder b;
  b.AddTransaction({1, 2});
  b.AddTransaction({3});
  const std::string path = TempPath("badoffsets.fpk");
  ASSERT_TRUE(WritePacked(b.Build(), path).ok());
  std::string bytes = ReadAll(path);
  // offsets[1] lives at 88; 0xff breaks monotonicity against offsets[2].
  bytes[88] = static_cast<char>(0xff);
  WriteAll(path, bytes);

  auto opened = OpenMapped(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("corrupt offsets array"),
            std::string::npos)
      << opened.status();
  EXPECT_NE(opened.status().message().find(path), std::string::npos);
}

// ---------------------------------------------------------------------------
// The correctness contract: a mapped database mines byte-identically to
// the heap-parsed one. Kernel emission order is deterministic, so raw
// (uncanonicalized) emissions must match entry for entry.

struct IdentityCase {
  Algorithm algorithm;
  const char* name;
};

class PackedMineIdentityTest : public ::testing::TestWithParam<IdentityCase> {
 protected:
  static constexpr Support kMinSupport = 2;

  void SetUp() override {
    auto parsed = ParseFimi(kFimiText);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    heap_ = std::move(parsed).value();
    const std::string path =
        TempPath(std::string("identity_") + GetParam().name + ".fpk");
    ASSERT_TRUE(WritePacked(heap_, path).ok());
    auto mapped = OpenMapped(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    mapped_ = std::move(mapped).value();
  }

  std::vector<CollectingSink::Entry> Run(const Database& db,
                                         const MiningQuery& query) {
    auto miner = CreateMiner(GetParam().algorithm,
                             PatternSet::ApplicableTo(GetParam().algorithm));
    EXPECT_TRUE(miner.ok()) << miner.status();
    CollectingSink sink;
    auto stats = miner.value()->Mine(db, query, &sink);
    EXPECT_TRUE(stats.ok()) << stats.status();
    return sink.results();
  }

  Database heap_;
  Database mapped_;
};

TEST_P(PackedMineIdentityTest, AllTaskVerbsMatchTheHeapRun) {
  const MiningQuery queries[] = {
      MiningQuery::Frequent(kMinSupport), MiningQuery::Closed(kMinSupport),
      MiningQuery::Maximal(kMinSupport),
      MiningQuery::TopK(/*k=*/7, /*floor=*/kMinSupport)};
  for (const MiningQuery& q : queries) {
    EXPECT_EQ(Run(heap_, q), Run(mapped_, q))
        << GetParam().name << " task " << TaskName(q.task);
  }

  // Rules go through their own surface.
  auto miner = CreateMiner(GetParam().algorithm,
                           PatternSet::ApplicableTo(GetParam().algorithm));
  ASSERT_TRUE(miner.ok());
  const MiningQuery rules_query =
      MiningQuery::Rules(kMinSupport, /*min_confidence=*/0.5);
  std::vector<AssociationRule> heap_rules, mapped_rules;
  ASSERT_TRUE(miner.value()->MineRules(heap_, rules_query, &heap_rules).ok());
  ASSERT_TRUE(
      miner.value()->MineRules(mapped_, rules_query, &mapped_rules).ok());
  EXPECT_EQ(heap_rules, mapped_rules) << GetParam().name;
  EXPECT_FALSE(heap_rules.empty());
}

TEST_P(PackedMineIdentityTest, ParallelRunsMatchAtOneAndFourThreads) {
  for (uint32_t threads : {1u, 4u}) {
    MineOptions options;
    options.algorithm = GetParam().algorithm;
    options.min_support = kMinSupport;
    options.patterns = PatternSet::ApplicableTo(options.algorithm);
    options.execution.num_threads = threads;

    CollectingSink heap_sink, mapped_sink;
    auto heap_stats = Mine(heap_, options, &heap_sink);
    ASSERT_TRUE(heap_stats.ok()) << heap_stats.status();
    auto mapped_stats = Mine(mapped_, options, &mapped_sink);
    ASSERT_TRUE(mapped_stats.ok()) << mapped_stats.status();
    EXPECT_EQ(heap_sink.results(), mapped_sink.results())
        << GetParam().name << " at " << threads << " threads";
    EXPECT_FALSE(heap_sink.results().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PackedMineIdentityTest,
    ::testing::Values(IdentityCase{Algorithm::kLcm, "lcm"},
                      IdentityCase{Algorithm::kEclat, "eclat"},
                      IdentityCase{Algorithm::kFpGrowth, "fpgrowth"}),
    [](const ::testing::TestParamInfo<IdentityCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace fpm
