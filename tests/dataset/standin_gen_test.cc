#include "fpm/dataset/standin_gen.h"

#include <gtest/gtest.h>

#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/stats.h"

namespace fpm {
namespace {

WebDocsLikeParams SmallWebDocs() {
  WebDocsLikeParams p;
  p.num_transactions = 1500;
  p.vocabulary = 2000;
  p.avg_length = 30;
  p.num_topics = 8;
  p.topic_vocabulary = 150;
  return p;
}

ApLikeParams SmallAp() {
  ApLikeParams p;
  p.num_transactions = 3000;
  p.vocabulary = 5000;
  p.avg_length = 8;
  return p;
}

TEST(WebDocsLikeTest, ShapeMatchesParams) {
  auto db = GenerateWebDocsLike(SmallWebDocs());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_transactions(), 1500u);
  EXPECT_LE(db->num_items(), 2000u);
  EXPECT_NEAR(db->average_length(), 30, 6);
}

TEST(WebDocsLikeTest, Deterministic) {
  auto a = GenerateWebDocsLike(SmallWebDocs());
  auto b = GenerateWebDocsLike(SmallWebDocs());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(ToFimi(a.value()), ToFimi(b.value()));
}

TEST(WebDocsLikeTest, HeavySkew) {
  auto db = GenerateWebDocsLike(SmallWebDocs());
  ASSERT_TRUE(db.ok());
  DatabaseStats s = ComputeStats(db.value());
  EXPECT_GT(s.frequency_gini, 0.5) << "web corpus should be Zipf-skewed";
}

TEST(WebDocsLikeTest, ValidationCatchesBadParams) {
  WebDocsLikeParams p = SmallWebDocs();
  p.topic_vocabulary = p.vocabulary + 1;
  EXPECT_FALSE(GenerateWebDocsLike(p).ok());
  p = SmallWebDocs();
  p.topic_mix = 2.0;
  EXPECT_FALSE(GenerateWebDocsLike(p).ok());
  p = SmallWebDocs();
  p.num_transactions = 0;
  EXPECT_FALSE(GenerateWebDocsLike(p).ok());
}

TEST(ApLikeTest, ShapeMatchesParams) {
  auto db = GenerateApLike(SmallAp());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_transactions(), 3000u);
  EXPECT_NEAR(db->average_length(), 8, 2);
}

TEST(ApLikeTest, Deterministic) {
  auto a = GenerateApLike(SmallAp());
  auto b = GenerateApLike(SmallAp());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(ToFimi(a.value()), ToFimi(b.value()));
}

TEST(ApLikeTest, SparserAndLessClusteredThanWebDocs) {
  auto web = GenerateWebDocsLike(SmallWebDocs());
  auto ap = GenerateApLike(SmallAp());
  ASSERT_TRUE(web.ok() && ap.ok());
  DatabaseStats ws = ComputeStats(web.value());
  DatabaseStats as = ComputeStats(ap.value());
  EXPECT_LT(as.density, ws.density)
      << "AP stand-in must be sparser (paper: DS4 'very sparse')";
  EXPECT_LT(as.avg_transaction_len, ws.avg_transaction_len);
}

TEST(ApLikeTest, ValidationCatchesBadParams) {
  ApLikeParams p = SmallAp();
  p.avg_length = 0;
  EXPECT_FALSE(GenerateApLike(p).ok());
  p = SmallAp();
  p.zipf_exponent = -1;
  EXPECT_FALSE(GenerateApLike(p).ok());
}

}  // namespace
}  // namespace fpm
