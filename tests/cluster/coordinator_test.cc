// Coordinator routing, failover and scatter tests — everything runs
// against an injected fake Transport (no sockets), which also carries
// the membership pings, so health is under test control too.

#include "fpm/cluster/coordinator.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/cluster/hash_ring.h"
#include "fpm/cluster/shard_exec.h"
#include "fpm/core/mine.h"
#include "fpm/dataset/packed.h"
#include "fpm/service/protocol.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::MineCanonical;

const std::vector<std::string> kPeers = {"n1:7100", "n2:7100", "n3:7100"};

ClusterOptions MakeOptions(const std::string& self, uint32_t replicas) {
  ClusterOptions options;
  options.self = self;
  options.peers = kPeers;
  options.replicas = replicas;
  options.ping_interval_seconds = 0.0;  // no pinger thread in tests
  return options;
}

/// A digest-shaped key whose owner set (at `replicas`) does or does not
/// include `self`, found by scanning — placement is deterministic, so
/// the scan is too.
std::string FindDigest(const ClusterOptions& options, bool self_owns) {
  const ConsistentHashRing ring(options.peers, options.virtual_nodes);
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "digest" + std::to_string(i);
    const std::vector<std::string> owners =
        ring.Owners(key, options.replicas);
    const bool owns = std::find(owners.begin(), owners.end(),
                                options.self) != owners.end();
    if (owns == self_owns) return key;
  }
  ADD_FAILURE() << "no digest found with self_owns=" << self_owns;
  return "";
}

MineRequest MakeQuery(Support min_support) {
  MineRequest request;
  request.dataset_path = "/data/test.dat";
  request.query.min_support = min_support;
  return request;
}

MineResponse CannedResponse() {
  MineResponse response;
  response.task = MiningTask::kFrequent;
  response.num_frequent = 1;
  response.itemsets = {{{1, 2}, 5}};
  response.cache = CacheOutcome::kExact;
  return response;
}

/// Scripted fake transport: per-op handlers keyed on the decoded
/// request, with a per-endpoint call log.
struct FakePeers {
  using Handler = std::function<Result<std::string>(
      const std::string& endpoint, const ServiceRequest& request)>;

  Handler on_probe;
  Handler on_shard;
  std::map<std::string, int> calls;  // endpoint -> transport calls

  Coordinator::Transport transport() {
    return [this](const std::string& endpoint, const std::string& line,
                  double /*deadline*/, const std::function<bool()>& /*abort*/)
               -> Result<std::string> {
      ++calls[endpoint];
      Result<ServiceRequest> request = DecodeRequest(line);
      if (!request.ok()) return request.status();
      switch (request->op) {
        case ServiceRequest::Op::kPing:
          return std::string("{\"ok\":true}");
        case ServiceRequest::Op::kCacheProbe:
          return on_probe(endpoint, request.value());
        case ServiceRequest::Op::kShardQuery:
          return on_shard(endpoint, request.value());
        default:
          return Status::InvalidArgument("fake peer: unexpected op");
      }
    };
  }
};

/// For tests that never touch the wire: a transport that fails loudly.
Coordinator::Transport NoTransport() {
  return [](const std::string&, const std::string&, double,
            const std::function<bool()>&) -> Result<std::string> {
    ADD_FAILURE() << "unexpected transport call";
    return Status::Internal("no transport in this test");
  };
}

TEST(CoordinatorTest, OwnersMatchRingPlacement) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  Coordinator coordinator(options, NoTransport());
  const ConsistentHashRing ring(options.peers, options.virtual_nodes);
  for (int i = 0; i < 50; ++i) {
    const std::string digest = "d" + std::to_string(i);
    const std::vector<std::string> owners =
        coordinator.OwnersForDigest(digest);
    EXPECT_EQ(owners, ring.Owners(digest, 2)) << digest;
    EXPECT_EQ(coordinator.SelfOwns(digest),
              std::find(owners.begin(), owners.end(), "n1:7100") !=
                  owners.end())
        << digest;
  }
}

TEST(CoordinatorTest, ProbeHitAnswersWithoutForwarding) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);

  FakePeers peers;
  std::string probed_digest;
  peers.on_probe = [&](const std::string&, const ServiceRequest& request)
      -> Result<std::string> {
    probed_digest = request.cluster.digest;
    return EncodeCacheProbeResponse(true, CannedResponse());
  };
  peers.on_shard = [&](const std::string&, const ServiceRequest&)
      -> Result<std::string> {
    ADD_FAILURE() << "probe hit must not forward";
    return Status::Internal("unreachable");
  };

  Coordinator coordinator(options, peers.transport());
  Result<MineResponse> response =
      coordinator.ExecuteRemote(MakeQuery(2), digest, {});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(probed_digest, digest);
  EXPECT_EQ(response->served_by, coordinator.OwnersForDigest(digest)[0]);
  EXPECT_EQ(response->num_frequent, 1u);
  EXPECT_EQ(response->cache, CacheOutcome::kExact);

  const Coordinator::Counters c = coordinator.counters();
  EXPECT_EQ(c.remote_queries, 1u);
  EXPECT_EQ(c.probe_hits, 1u);
  EXPECT_EQ(c.probe_misses, 0u);
  EXPECT_EQ(c.forwards, 0u);
  EXPECT_EQ(c.failovers, 0u);
}

TEST(CoordinatorTest, ProbeMissForwardsToPrimaryOwner) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);

  FakePeers peers;
  peers.on_probe = [](const std::string&, const ServiceRequest&)
      -> Result<std::string> {
    return EncodeCacheProbeResponse(false, {});
  };
  std::string forwarded_to;
  peers.on_shard = [&](const std::string& endpoint,
                       const ServiceRequest& request)
      -> Result<std::string> {
    EXPECT_EQ(request.cluster.shard_mode,
              ClusterOpRequest::ShardMode::kExecute);
    EXPECT_EQ(request.mine.query.min_support, 2u);
    EXPECT_EQ(request.mine.dataset_path, "/data/test.dat");
    forwarded_to = endpoint;
    MineResponse mined = CannedResponse();
    mined.cache = CacheOutcome::kMiss;
    return EncodeQueryResponse(mined);
  };

  Coordinator coordinator(options, peers.transport());
  Result<MineResponse> response =
      coordinator.ExecuteRemote(MakeQuery(2), digest, {});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(forwarded_to, coordinator.OwnersForDigest(digest)[0]);
  EXPECT_EQ(response->served_by, forwarded_to);
  EXPECT_EQ(response->cache, CacheOutcome::kMiss);
  ASSERT_EQ(response->itemsets.size(), 1u);
  EXPECT_EQ(response->itemsets[0].second, 5u);

  const Coordinator::Counters c = coordinator.counters();
  EXPECT_EQ(c.probe_hits, 0u);
  EXPECT_EQ(c.probe_misses, 2u);  // both replicas probed, both missed
  EXPECT_EQ(c.forwards, 1u);
  EXPECT_EQ(c.failovers, 0u);
}

TEST(CoordinatorTest, DeadReplicaFailsOverAndTurnsUnhealthy) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);

  const std::string primary =
      ConsistentHashRing(options.peers, options.virtual_nodes)
          .Owners(digest, options.replicas)[0];
  Coordinator coordinator(
      options,
      [primary](const std::string& endpoint, const std::string& line, double,
                const std::function<bool()>&) -> Result<std::string> {
        // The primary owner is down for everything; the replica
        // answers probes with a miss and forwards with a result.
        if (endpoint == primary) {
          return Status::Unavailable("peer " + endpoint +
                                     ": connection refused");
        }
        Result<ServiceRequest> request = DecodeRequest(line);
        if (!request.ok()) return request.status();
        if (request->op == ServiceRequest::Op::kCacheProbe) {
          return EncodeCacheProbeResponse(false, {});
        }
        MineResponse mined = CannedResponse();
        mined.cache = CacheOutcome::kMiss;
        return EncodeQueryResponse(mined);
      });

  Result<MineResponse> response =
      coordinator.ExecuteRemote(MakeQuery(2), digest, {});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->served_by, coordinator.OwnersForDigest(digest)[1]);

  const Coordinator::Counters c = coordinator.counters();
  EXPECT_EQ(c.probe_misses, 1u);  // the dead primary's probe failed
  EXPECT_EQ(c.forwards, 2u);      // primary attempted, then the replica
  EXPECT_EQ(c.failovers, 1u);
  EXPECT_FALSE(coordinator.membership().IsHealthy(
      coordinator.OwnersForDigest(digest)[0]));
  EXPECT_TRUE(coordinator.membership().IsHealthy(
      coordinator.OwnersForDigest(digest)[1]));
}

TEST(CoordinatorTest, AllOwnersDownIsUnavailable) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);

  Coordinator coordinator(
      options,
      [](const std::string& endpoint, const std::string&, double,
         const std::function<bool()>&) -> Result<std::string> {
        return Status::Unavailable("peer " + endpoint + ": down");
      });

  Result<MineResponse> response =
      coordinator.ExecuteRemote(MakeQuery(2), digest, {});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().message().find("all 2 owner(s) of digest"),
            std::string::npos)
      << response.status().message();
  EXPECT_EQ(coordinator.counters().failovers, 2u);
}

TEST(CoordinatorTest, DeterministicRejectionDoesNotFailOver) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);

  FakePeers peers;
  peers.on_probe = [](const std::string&, const ServiceRequest&)
      -> Result<std::string> {
    return EncodeCacheProbeResponse(false, {});
  };
  int forward_attempts = 0;
  peers.on_shard = [&](const std::string&, const ServiceRequest&)
      -> Result<std::string> {
    ++forward_attempts;
    // The peer rejected the query itself (not a peer failure): every
    // replica would answer the same, so no retry.
    return EncodeError(Status::NotFound("unknown dataset id 'ds-9'"));
  };

  Coordinator coordinator(options, peers.transport());
  Result<MineResponse> response =
      coordinator.ExecuteRemote(MakeQuery(2), digest, {});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(response.status().message(), "unknown dataset id 'ds-9'");
  EXPECT_EQ(forward_attempts, 1);
  EXPECT_EQ(coordinator.counters().failovers, 0u);
}

TEST(CoordinatorTest, AbortCancelsBeforeAnyCall) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);
  FakePeers peers;
  Coordinator coordinator(options, peers.transport());
  Result<MineResponse> response =
      coordinator.ExecuteRemote(MakeQuery(2), digest, [] { return true; });
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(peers.calls.empty());
}

/// A fake cluster whose peers actually execute shard_query mine/count
/// over a shared database via the in-process shard primitives — the
/// exact code fpmd runs for those ops.
FakePeers::Handler ShardExecutingPeers(const Database& db) {
  return [&db](const std::string&, const ServiceRequest& request)
             -> Result<std::string> {
    const ShardSlice slice = {request.cluster.partition_index,
                              request.cluster.partition_count};
    if (request.cluster.shard_mode == ClusterOpRequest::ShardMode::kMine) {
      FPM_ASSIGN_OR_RETURN(
          std::vector<CollectingSink::Entry> local,
          MineShardPartition(db, slice, request.mine.query.min_support,
                             request.mine.algorithm, request.mine.patterns));
      return EncodeShardMineResponse(local);
    }
    FPM_ASSIGN_OR_RETURN(
        std::vector<Support> counts,
        CountShardPartition(db, slice, request.cluster.candidates));
    return EncodeShardCountResponse(counts);
  };
}

TEST(CoordinatorTest, ScatterMatchesDirectCanonicalMine) {
  const Database db = MakeDb({{1, 2, 3},
                              {1, 2},
                              {2, 3},
                              {1, 3},
                              {1, 2, 3, 4},
                              {4},
                              {2, 4},
                              {1, 4}});
  // replicas = 3 on a 3-node ring: every node owns every digest, so
  // scatter fans out over all three.
  const ClusterOptions options = MakeOptions("n1:7100", 3);

  FakePeers peers;
  peers.on_shard = ShardExecutingPeers(db);
  Coordinator coordinator(options, peers.transport());

  const MineRequest request = MakeQuery(2);
  Result<MineResponse> response =
      coordinator.ExecuteScatter(request, "some-digest", {});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->shard_count, 3u);
  EXPECT_EQ(response->cache, CacheOutcome::kMiss);
  // served_by lists every participating owner.
  for (const std::string& peer : kPeers) {
    EXPECT_NE(response->served_by.find(peer), std::string::npos)
        << response->served_by;
  }

  Result<std::unique_ptr<Miner>> miner =
      CreateMiner(Algorithm::kLcm, PatternSet::None());
  ASSERT_TRUE(miner.ok()) << miner.status();
  const std::vector<CollectingSink::Entry> direct =
      MineCanonical(**miner, db, 2);
  EXPECT_EQ(response->itemsets, direct);
  EXPECT_EQ(response->num_frequent, direct.size());
  EXPECT_EQ(coordinator.counters().scatter_queries, 1u);
}

TEST(CoordinatorTest, ScatterSurvivesOneDeadOwner) {
  const Database db = MakeDb({{1, 2}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}});
  const ClusterOptions options = MakeOptions("n1:7100", 3);

  FakePeers peers;
  const FakePeers::Handler execute = ShardExecutingPeers(db);
  peers.on_shard = [&](const std::string& endpoint,
                       const ServiceRequest& request)
      -> Result<std::string> {
    if (endpoint == "n2:7100") {
      return Status::Unavailable("peer n2:7100: down");
    }
    return execute(endpoint, request);
  };
  Coordinator coordinator(options, peers.transport());

  Result<MineResponse> response =
      coordinator.ExecuteScatter(MakeQuery(2), "some-digest", {});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_GE(coordinator.counters().failovers, 1u);

  Result<std::unique_ptr<Miner>> miner =
      CreateMiner(Algorithm::kLcm, PatternSet::None());
  ASSERT_TRUE(miner.ok()) << miner.status();
  EXPECT_EQ(response->itemsets, MineCanonical(**miner, db, 2));
}

TEST(CoordinatorTest, ScatterRejectsNonFrequentTasks) {
  const ClusterOptions options = MakeOptions("n1:7100", 3);
  FakePeers peers;
  Coordinator coordinator(options, peers.transport());
  MineRequest request = MakeQuery(2);
  request.query.task = MiningTask::kClosed;
  Result<MineResponse> response =
      coordinator.ExecuteScatter(request, "d", {});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(response.status().message(),
            "cluster: scatter supports task 'frequent' only");
}

TEST(CoordinatorTest, ScatterNeedsTwoHealthyOwners) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  const std::string digest = FindDigest(options, /*self_owns=*/false);
  FakePeers peers;
  Coordinator coordinator(options, peers.transport());
  // Kill one of the two owners: one healthy owner is not enough to
  // scatter, the caller should run the query whole instead.
  coordinator.membership().RecordFailure(
      coordinator.OwnersForDigest(digest)[0]);
  Result<MineResponse> response =
      coordinator.ExecuteScatter(MakeQuery(2), digest, {});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(response.status().message(),
            "cluster: scatter needs >= 2 healthy owners, have 1");
}

TEST(CoordinatorTest, DigestForPathFimiMatchesRegistryDigest) {
  const std::string path = testing::TempDir() + "/coord_digest.dat";
  const std::string bytes = "1 2 3\n1 2\n2 3\n";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  Coordinator coordinator(options, NoTransport());
  Result<std::string> digest = coordinator.DigestForPath(path);
  ASSERT_TRUE(digest.ok()) << digest.status();
  EXPECT_EQ(digest.value(), ContentDigest(bytes));

  // Memoized: rewriting the file does not re-digest (placement must
  // not drift while a node is up).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "9 9 9\n";
  }
  Result<std::string> again = coordinator.DigestForPath(path);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again.value(), ContentDigest(bytes));
}

TEST(CoordinatorTest, DigestForPathReadsPackedHeader) {
  const std::string path = testing::TempDir() + "/coord_digest.fpk";
  const Database db = MakeDb({{1, 2}, {2, 3}});
  const std::string digest = "00deadbeef001234";
  ASSERT_TRUE(WritePacked(db, path, digest).ok());
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  Coordinator coordinator(options, NoTransport());
  Result<std::string> read = coordinator.DigestForPath(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value(), digest);
}

TEST(CoordinatorTest, DigestForPathMissingFileError) {
  const ClusterOptions options = MakeOptions("n1:7100", 2);
  Coordinator coordinator(options, NoTransport());
  Result<std::string> digest =
      coordinator.DigestForPath("/nonexistent-fpm-test/absent.dat");
  ASSERT_FALSE(digest.ok());
  EXPECT_EQ(digest.status().message(),
            "cluster: cannot open dataset '/nonexistent-fpm-test/absent.dat'");
}

TEST(CoordinatorTest, InfoJsonReportsPeersCountersAndPlacement) {
  const ClusterOptions options = MakeOptions("n2:7100", 2);
  FakePeers peers;
  Coordinator coordinator(options, peers.transport());
  coordinator.NoteProbeServed(true);
  coordinator.NoteProbeServed(false);
  coordinator.NoteLocalFallback();

  std::vector<DatasetRegistryStats::Dataset> datasets(1);
  datasets[0].id = "ds-1";
  datasets[0].path = "/data/test.dat";
  datasets[0].digest = "abcdef0123456789";

  const JsonValue info = coordinator.InfoJson(datasets, "abcdef0123456789");
  EXPECT_TRUE(info["enabled"].bool_value());
  EXPECT_EQ(info["self"].string_value(), "n2:7100");
  EXPECT_EQ(info["replicas"].int_value(), 2);
  ASSERT_EQ(info["peers"].array_items().size(), kPeers.size());
  // Peer rows cover the full configured cluster, self included.
  uint64_t owned_total = 0;
  for (const JsonValue& row : info["peers"].array_items()) {
    EXPECT_TRUE(row["healthy"].bool_value());
    owned_total +=
        static_cast<uint64_t>(row["datasets_owned"].int_value());
    if (row["endpoint"].string_value() == "n2:7100") {
      EXPECT_TRUE(row["self"].bool_value());
    }
  }
  // One dataset placed on `replicas` owners.
  EXPECT_EQ(owned_total, 2u);

  EXPECT_EQ(info["counters"]["probe_hits_served"].int_value(), 1);
  EXPECT_EQ(info["counters"]["probe_misses_served"].int_value(), 1);
  EXPECT_EQ(info["counters"]["local_fallbacks"].int_value(), 1);

  EXPECT_EQ(info["placement"]["digest"].string_value(), "abcdef0123456789");
  const std::vector<std::string> owners =
      coordinator.OwnersForDigest("abcdef0123456789");
  ASSERT_EQ(info["placement"]["owners"].array_items().size(), owners.size());
  for (size_t i = 0; i < owners.size(); ++i) {
    EXPECT_EQ(info["placement"]["owners"].array_items()[i].string_value(),
              owners[i]);
  }
}

}  // namespace
}  // namespace fpm
