// ConsistentHashRing placement properties — the contract the cluster's
// correctness and stability rest on (see fpm/cluster/hash_ring.h):
// determinism across instances and insertion orders, balance within the
// documented bound at the default virtual-node count, and minimal key
// movement when nodes join or leave.

#include "fpm/cluster/hash_ring.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fpm {
namespace {

std::vector<std::string> SixNodes() {
  return {"10.0.0.1:7100", "10.0.0.2:7100", "10.0.0.3:7100",
          "10.0.0.4:7100", "10.0.0.5:7100", "10.0.0.6:7100"};
}

std::vector<std::string> ManyKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Shaped like the FNV content digests the coordinator places.
    keys.push_back("digest-" + std::to_string(i * 2654435761u));
  }
  return keys;
}

TEST(HashRingTest, EmptyRingHasNoOwners) {
  ConsistentHashRing ring;
  EXPECT_TRUE(ring.Owners("anything", 2).empty());
  EXPECT_EQ(ring.PrimaryOwner("anything"), "");
  EXPECT_FALSE(ring.HasNode("a:1"));
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  ConsistentHashRing ring({"solo:7100"});
  for (const std::string& key : ManyKeys(50)) {
    EXPECT_EQ(ring.PrimaryOwner(key), "solo:7100");
    EXPECT_EQ(ring.Owners(key, 3),
              std::vector<std::string>({"solo:7100"}));
  }
}

TEST(HashRingTest, OwnersAreDistinctAndCapped) {
  ConsistentHashRing ring(SixNodes());
  for (const std::string& key : ManyKeys(200)) {
    const std::vector<std::string> owners = ring.Owners(key, 3);
    ASSERT_EQ(owners.size(), 3u) << key;
    const std::set<std::string> unique(owners.begin(), owners.end());
    EXPECT_EQ(unique.size(), owners.size()) << key << ": duplicate owner";
    EXPECT_EQ(owners.front(), ring.PrimaryOwner(key));
  }
  // Asking for more replicas than nodes returns every node once.
  const std::vector<std::string> all = ring.Owners("k", 99);
  EXPECT_EQ(all.size(), SixNodes().size());
}

TEST(HashRingTest, PlacementIsDeterministicAcrossInstancesAndOrder) {
  // Every fpmd builds its ring from its own --cluster flag; a shuffled
  // flag or a restart must not change placement.
  std::vector<std::string> shuffled = SixNodes();
  std::reverse(shuffled.begin(), shuffled.end());
  ConsistentHashRing a(SixNodes());
  ConsistentHashRing b(shuffled);
  ConsistentHashRing c;  // incremental joins, another order
  c.AddNode("10.0.0.4:7100");
  c.AddNode("10.0.0.1:7100");
  c.AddNode("10.0.0.6:7100");
  c.AddNode("10.0.0.2:7100");
  c.AddNode("10.0.0.5:7100");
  c.AddNode("10.0.0.3:7100");
  for (const std::string& key : ManyKeys(500)) {
    const std::vector<std::string> owners = a.Owners(key, 2);
    EXPECT_EQ(owners, b.Owners(key, 2)) << key;
    EXPECT_EQ(owners, c.Owners(key, 2)) << key;
  }
}

TEST(HashRingTest, DuplicateNodesCollapse) {
  std::vector<std::string> doubled = SixNodes();
  const std::vector<std::string> nodes = SixNodes();
  doubled.insert(doubled.end(), nodes.begin(), nodes.end());
  ConsistentHashRing a(SixNodes());
  ConsistentHashRing b(doubled);
  EXPECT_EQ(a.nodes(), b.nodes());
  for (const std::string& key : ManyKeys(100)) {
    EXPECT_EQ(a.Owners(key, 2), b.Owners(key, 2)) << key;
  }
}

TEST(HashRingTest, BalanceBound) {
  // The DESIGN/ROADMAP partition-balance target: at 64 virtual nodes
  // the most-loaded node carries at most ~1.25x the mean.
  ConsistentHashRing ring(SixNodes(),
                          ConsistentHashRing::kDefaultVirtualNodes);
  std::map<std::string, size_t> load;
  const std::vector<std::string> keys = ManyKeys(10000);
  for (const std::string& key : keys) ++load[ring.PrimaryOwner(key)];
  const double mean =
      static_cast<double>(keys.size()) / static_cast<double>(SixNodes().size());
  size_t max_load = 0;
  for (const auto& [node, count] : load) {
    max_load = std::max(max_load, count);
  }
  EXPECT_LE(static_cast<double>(max_load) / mean, 1.25)
      << "max " << max_load << " vs mean " << mean;
  // Every node should own something at this key count.
  EXPECT_EQ(load.size(), SixNodes().size());
}

TEST(HashRingTest, RemoveMovesOnlyTheLeaversKeys) {
  ConsistentHashRing ring(SixNodes());
  const std::vector<std::string> keys = ManyKeys(5000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.PrimaryOwner(key);

  const std::string leaver = "10.0.0.3:7100";
  ring.RemoveNode(leaver);
  EXPECT_FALSE(ring.HasNode(leaver));
  size_t moved = 0;
  for (const std::string& key : keys) {
    const std::string now = ring.PrimaryOwner(key);
    if (before[key] == leaver) {
      EXPECT_NE(now, leaver);
      ++moved;
    } else {
      // Keys the leaver did not own must not move at all.
      EXPECT_EQ(now, before[key]) << key;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, JoinStealsOnlyForTheJoiner) {
  ConsistentHashRing ring(SixNodes());
  const std::vector<std::string> keys = ManyKeys(5000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.PrimaryOwner(key);

  const std::string joiner = "10.0.0.7:7100";
  ring.AddNode(joiner);
  size_t stolen = 0;
  for (const std::string& key : keys) {
    const std::string now = ring.PrimaryOwner(key);
    if (now != before[key]) {
      // Any key that moved must have moved *to* the joiner.
      EXPECT_EQ(now, joiner) << key;
      ++stolen;
    }
  }
  // The joiner takes roughly 1/7th; it must take something and far
  // less than half.
  EXPECT_GT(stolen, 0u);
  EXPECT_LT(stolen, keys.size() / 2);
}

TEST(HashRingTest, AddRemoveRoundTripRestoresPlacement) {
  ConsistentHashRing ring(SixNodes());
  const std::vector<std::string> keys = ManyKeys(1000);
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& key : keys) before[key] = ring.Owners(key, 2);
  ring.AddNode("transient:7100");
  ring.RemoveNode("transient:7100");
  for (const std::string& key : keys) {
    EXPECT_EQ(ring.Owners(key, 2), before[key]) << key;
  }
}

TEST(HashRingTest, HashKeyIsFnv1a64) {
  // Pin the hash so a refactor cannot silently reshuffle every
  // cluster's placement: FNV-1a 64 of "a" is the published constant.
  EXPECT_EQ(ConsistentHashRing::HashKey(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(ConsistentHashRing::HashKey("a"), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace fpm
