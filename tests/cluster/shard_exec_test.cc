// Distributed SON pipeline equivalence: running phase 1 (per-shard
// mine at the scaled threshold), the candidate merge, phase 2
// (per-shard exact counts) and the final filter through
// fpm/cluster/shard_exec.h must produce exactly the canonical frequent
// set a direct single-machine mine produces — for any shard count,
// including shards that are empty or hold every transaction.

#include "fpm/cluster/shard_exec.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/core/mine.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::MineCanonical;
using testutil::RandomDb;
using testutil::RandomDbSpec;

/// Runs the full coordinator-side pipeline in-process over k shards.
std::vector<CollectingSink::Entry> MineViaShards(const Database& db,
                                                 Support min_support,
                                                 uint32_t k) {
  std::vector<std::vector<CollectingSink::Entry>> locals;
  for (uint32_t p = 0; p < k; ++p) {
    Result<std::vector<CollectingSink::Entry>> local = MineShardPartition(
        db, {p, k}, min_support, Algorithm::kLcm, PatternSet::None());
    EXPECT_TRUE(local.ok()) << "shard " << p << ": " << local.status();
    locals.push_back(std::move(local).value());
  }
  const std::vector<Itemset> candidates =
      MergeShardCandidates(std::move(locals));
  std::vector<std::vector<Support>> per_shard;
  for (uint32_t p = 0; p < k; ++p) {
    Result<std::vector<Support>> counts =
        CountShardPartition(db, {p, k}, candidates);
    EXPECT_TRUE(counts.ok()) << "shard " << p << ": " << counts.status();
    per_shard.push_back(std::move(counts).value());
  }
  return MergeShardCounts(candidates, per_shard, min_support);
}

std::vector<CollectingSink::Entry> DirectCanonical(const Database& db,
                                                   Support min_support) {
  Result<std::unique_ptr<Miner>> miner =
      CreateMiner(Algorithm::kLcm, PatternSet::None());
  EXPECT_TRUE(miner.ok()) << miner.status();
  return MineCanonical(**miner, db, min_support);
}

TEST(ShardExecTest, BuildShardPartitionTilesTheDatabase) {
  const Database db = RandomDb({.num_transactions = 31, .seed = 7});
  for (uint32_t k : {1u, 2u, 3u, 5u, 31u, 40u}) {
    size_t total = 0;
    Support weight = 0;
    for (uint32_t p = 0; p < k; ++p) {
      Support part_weight = 0;
      const Database part = BuildShardPartition(db, {p, k}, &part_weight);
      total += part.num_transactions();
      weight += part_weight;
    }
    EXPECT_EQ(total, db.num_transactions()) << "k=" << k;
    EXPECT_EQ(weight, db.total_weight()) << "k=" << k;
  }
}

TEST(ShardExecTest, PipelineMatchesDirectMineSmallLiteral) {
  const Database db = MakeDb({{1, 2, 3},
                              {1, 2},
                              {2, 3},
                              {1, 3},
                              {1, 2, 3, 4},
                              {4},
                              {2, 4}});
  for (Support s : {1, 2, 3}) {
    const auto direct = DirectCanonical(db, s);
    for (uint32_t k : {1u, 2u, 3u, 5u}) {
      ExpectSameResults(direct, MineViaShards(db, s, k),
                        "s=" + std::to_string(s) + " k=" + std::to_string(k));
    }
  }
}

TEST(ShardExecTest, PipelineMatchesDirectMineRandom) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RandomDbSpec spec;
    spec.num_transactions = 60;
    spec.num_items = 10;
    spec.avg_len = 5.0;
    spec.seed = seed;
    const Database db = RandomDb(spec);
    const Support min_support = 4;
    const auto direct = DirectCanonical(db, min_support);
    for (uint32_t k : {2u, 3u, 5u}) {
      ExpectSameResults(direct, MineViaShards(db, min_support, k),
                        "seed=" + std::to_string(seed) +
                            " k=" + std::to_string(k));
    }
  }
}

TEST(ShardExecTest, MoreShardsThanTransactionsLeavesEmptyShards) {
  // k > n means some slices are empty; they contribute nothing and the
  // merge must still be exact.
  const Database db = MakeDb({{1, 2}, {1, 2}, {1, 3}});
  const auto direct = DirectCanonical(db, 2);
  ExpectSameResults(direct, MineViaShards(db, 2, 8), "k=8 over n=3");
}

TEST(ShardExecTest, EmptyShardMinesToNothing) {
  const Database db = MakeDb({{1, 2}, {1, 2}});
  // Slice 3 of 5 over 2 transactions is [2*3/5, 2*4/5) = [1, 1): empty.
  Result<std::vector<CollectingSink::Entry>> local = MineShardPartition(
      db, {3, 5}, 1, Algorithm::kLcm, PatternSet::None());
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_TRUE(local->empty());
}

TEST(ShardExecTest, CountShardPartitionNormalizesCandidateOrder) {
  // Wire candidates arrive unsorted; counting must normalize them.
  const Database db = MakeDb({{1, 2, 3}, {1, 2}, {2, 3}});
  const std::vector<Itemset> candidates = {{2, 1}, {3, 2}, {2}};
  Result<std::vector<Support>> counts =
      CountShardPartition(db, {0, 1}, candidates);
  ASSERT_TRUE(counts.ok()) << counts.status();
  EXPECT_EQ(*counts, (std::vector<Support>{2, 2, 3}));
}

TEST(ShardExecTest, InvalidSliceError) {
  const Database db = MakeDb({{1}});
  Result<std::vector<CollectingSink::Entry>> bad = MineShardPartition(
      db, {3, 3}, 1, Algorithm::kLcm, PatternSet::None());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(),
            "shard slice index 3 out of range for count 3");
}

TEST(ShardExecTest, EmptyCandidateError) {
  const Database db = MakeDb({{1}});
  Result<std::vector<Support>> bad =
      CountShardPartition(db, {0, 1}, {{1}, {}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "candidate 1 is empty");
}

TEST(ShardExecTest, MergeShardCandidatesDedupesAndSorts) {
  std::vector<std::vector<CollectingSink::Entry>> locals(2);
  locals[0] = {{{2, 3}, 5}, {{1}, 7}};
  locals[1] = {{{1}, 4}, {{1, 2}, 3}};
  const std::vector<Itemset> merged = MergeShardCandidates(std::move(locals));
  EXPECT_EQ(merged,
            (std::vector<Itemset>{{1}, {1, 2}, {2, 3}}));
}

TEST(ShardExecTest, MergeShardCountsFiltersAtGlobalThreshold) {
  const std::vector<Itemset> candidates = {{1}, {2}, {3}};
  const std::vector<std::vector<Support>> per_shard = {{3, 1, 0},
                                                       {2, 1, 1}};
  const std::vector<CollectingSink::Entry> kept =
      MergeShardCounts(candidates, per_shard, 2);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], (CollectingSink::Entry{{1}, 5}));
  EXPECT_EQ(kept[1], (CollectingSink::Entry{{2}, 2}));
}

}  // namespace
}  // namespace fpm
