// Endpoint grammar and dialer tests. The parse-error strings are part
// of the user-facing contract — fpm_client prints them verbatim when
// --endpoint is malformed and the fpmd --cluster flag validation
// surfaces them at startup — so they are pinned EXACTLY here; change
// the wording in endpoint.cc and here together, deliberately.

#include "fpm/cluster/endpoint.h"

#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(EndpointTest, ParsesTcpHostPort) {
  const Result<Endpoint> ep = ParseEndpoint("127.0.0.1:7101");
  ASSERT_TRUE(ep.ok()) << ep.status();
  EXPECT_FALSE(ep->is_unix());
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 7101);
  EXPECT_EQ(ep->ToString(), "127.0.0.1:7101");
}

TEST(EndpointTest, ParsesHostname) {
  const Result<Endpoint> ep = ParseEndpoint("node3:65535");
  ASSERT_TRUE(ep.ok()) << ep.status();
  EXPECT_EQ(ep->host, "node3");
  EXPECT_EQ(ep->port, 65535);
}

TEST(EndpointTest, AnythingWithASlashIsAUnixPath) {
  for (const std::string spec :
       {"/tmp/fpmd.sock", "./fpmd.sock", "/with:colon/sock"}) {
    const Result<Endpoint> ep = ParseEndpoint(spec);
    ASSERT_TRUE(ep.ok()) << spec << ": " << ep.status();
    EXPECT_TRUE(ep->is_unix()) << spec;
    EXPECT_EQ(ep->unix_path, spec);
    EXPECT_EQ(ep->ToString(), spec);
  }
}

TEST(EndpointTest, EmptySpecError) {
  const Result<Endpoint> ep = ParseEndpoint("");
  ASSERT_FALSE(ep.ok());
  EXPECT_EQ(ep.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ep.status().message(), "endpoint must not be empty");
}

TEST(EndpointTest, MissingColonError) {
  const Result<Endpoint> ep = ParseEndpoint("localhost");
  ASSERT_FALSE(ep.ok());
  EXPECT_EQ(ep.status().message(),
            "endpoint 'localhost': expected HOST:PORT or a Unix socket path");
}

TEST(EndpointTest, EmptyHostError) {
  const Result<Endpoint> ep = ParseEndpoint(":7100");
  ASSERT_FALSE(ep.ok());
  EXPECT_EQ(ep.status().message(), "endpoint ':7100': host must not be empty");
}

TEST(EndpointTest, BadPortErrors) {
  const struct {
    const char* spec;
    const char* message;
  } cases[] = {
      {"host:", "endpoint 'host:': port '' must be a number in [1, 65535]"},
      {"host:abc",
       "endpoint 'host:abc': port 'abc' must be a number in [1, 65535]"},
      {"host:0", "endpoint 'host:0': port '0' must be a number in [1, 65535]"},
      {"host:65536",
       "endpoint 'host:65536': port '65536' must be a number in [1, 65535]"},
      {"host:-1", "endpoint 'host:-1': port '-1' must be a number in "
                  "[1, 65535]"},
  };
  for (const auto& c : cases) {
    const Result<Endpoint> ep = ParseEndpoint(c.spec);
    ASSERT_FALSE(ep.ok()) << c.spec;
    EXPECT_EQ(ep.status().code(), StatusCode::kInvalidArgument) << c.spec;
    EXPECT_EQ(ep.status().message(), c.message);
  }
}

TEST(EndpointListTest, ParsesCommaSeparatedPeers) {
  const Result<std::vector<Endpoint>> list =
      ParseEndpointList("a:1,b:2,c:3");
  ASSERT_TRUE(list.ok()) << list.status();
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].ToString(), "a:1");
  EXPECT_EQ((*list)[1].ToString(), "b:2");
  EXPECT_EQ((*list)[2].ToString(), "c:3");
}

TEST(EndpointListTest, EmptyEntryError) {
  const Result<std::vector<Endpoint>> list = ParseEndpointList("a:1,,b:2");
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.status().message(), "endpoint list 'a:1,,b:2': empty entry");
}

TEST(EndpointListTest, RejectsUnixPaths) {
  const Result<std::vector<Endpoint>> list =
      ParseEndpointList("a:1,/tmp/fpmd.sock");
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.status().message(),
            "endpoint list 'a:1,/tmp/fpmd.sock': '/tmp/fpmd.sock' is a Unix "
            "socket path; cluster peers must be HOST:PORT");
}

TEST(DialTest, MissingUnixSocketNamesTheEndpoint) {
  Endpoint ep;
  ep.unix_path = "/nonexistent-fpm-test-dir/fpmd.sock";
  const Result<int> fd = DialEndpoint(ep, 1.0);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kUnavailable);
  // "dial <endpoint>: connect: <strerror>" — pin the prefix, not the
  // locale-dependent errno text.
  EXPECT_EQ(fd.status().message().rfind(
                "dial /nonexistent-fpm-test-dir/fpmd.sock: connect: ", 0),
            0u)
      << fd.status().message();
}

TEST(DialTest, RefusedTcpPortNamesTheEndpoint) {
  // Port 1 on localhost is essentially never listening; a refused
  // connect must fail fast (within the dial timeout) and name the
  // endpoint and stage.
  Endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = 1;
  const Result<int> fd = DialEndpoint(ep, 2.0);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().message().rfind("dial 127.0.0.1:1: ", 0), 0u)
      << fd.status().message();
}

}  // namespace
}  // namespace fpm
