// Shared helpers for miner tests: small database literals, random
// database generation, and canonical mining wrappers for equivalence
// checks.

#ifndef FPM_TESTS_TESTING_DB_TESTUTIL_H_
#define FPM_TESTS_TESTING_DB_TESTUTIL_H_

#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/miner.h"
#include "fpm/common/rng.h"
#include "fpm/dataset/database.h"

namespace fpm::testutil {

inline Database MakeDb(
    std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

/// Knobs for random database generation.
struct RandomDbSpec {
  uint32_t num_transactions = 30;
  uint32_t num_items = 8;
  double avg_len = 4.0;
  uint64_t seed = 1;
};

/// Uniform random database (no structure) — the adversarial input for
/// equivalence testing.
inline Database RandomDb(const RandomDbSpec& spec) {
  Rng rng(spec.seed);
  DatabaseBuilder b;
  std::vector<Item> tx;
  for (uint32_t t = 0; t < spec.num_transactions; ++t) {
    tx.clear();
    const uint32_t len =
        1 + rng.NextPoisson(spec.avg_len > 1 ? spec.avg_len - 1 : 0.0);
    for (uint32_t i = 0; i < len; ++i) {
      tx.push_back(static_cast<Item>(rng.NextBounded(spec.num_items)));
    }
    b.AddTransaction(tx);  // duplicates removed by the builder
  }
  return b.Build();
}

/// Mines and returns the canonicalized (itemset, support) list.
inline std::vector<CollectingSink::Entry> MineCanonical(Miner& miner,
                                                        const Database& db,
                                                        Support min_support) {
  CollectingSink sink;
  const Status s = miner.Mine(db, min_support, &sink).status();
  EXPECT_TRUE(s.ok()) << miner.name() << ": " << s;
  sink.Canonicalize();
  return sink.results();
}

/// EXPECT-level comparison with a readable diff on mismatch.
inline void ExpectSameResults(
    const std::vector<CollectingSink::Entry>& expected,
    const std::vector<CollectingSink::Entry>& actual,
    const std::string& label) {
  EXPECT_EQ(expected.size(), actual.size()) << label << ": itemset count";
  const size_t n = std::min(expected.size(), actual.size());
  size_t mismatches = 0;
  for (size_t i = 0; i < n && mismatches < 5; ++i) {
    if (expected[i] != actual[i]) {
      ++mismatches;
      std::string want, got;
      for (Item it : expected[i].first) want += std::to_string(it) + " ";
      for (Item it : actual[i].first) got += std::to_string(it) + " ";
      ADD_FAILURE() << label << ": entry " << i << " want {" << want << "}:"
                    << expected[i].second << " got {" << got
                    << "}:" << actual[i].second;
    }
  }
}

}  // namespace fpm::testutil

#endif  // FPM_TESTS_TESTING_DB_TESTUTIL_H_
