// Wire protocol coverage for the v2 streaming ops (open / append /
// expire / window / dataset_info) and handle-based query addressing:
// decode shapes, the exact `op 'X': field 'Y'` error convention, and
// encode goldens for the handle/info response lines.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fpm/service/protocol.h"

namespace fpm {
namespace {

std::string DecodeErrorOf(const std::string& line) {
  auto r = DecodeRequest(line);
  EXPECT_FALSE(r.ok()) << line;
  return r.ok() ? std::string() : std::string(r.status().message());
}

TEST(StreamingDecodeTest, OpenRequiresDatasetPath) {
  auto r = DecodeRequest("{\"op\":\"open\",\"dataset\":\"/tmp/t10.dat\"}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kOpen);
  EXPECT_EQ(r->version, 2);
  EXPECT_EQ(r->dataset_op.path, "/tmp/t10.dat");

  EXPECT_EQ(DecodeErrorOf("{\"op\":\"open\"}"),
            "op 'open': field 'dataset': missing or not a string");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"open\",\"dataset\":\"\"}"),
            "op 'open': field 'dataset': missing or not a string");
}

TEST(StreamingDecodeTest, AppendDecodesTransactionsAndTimestamps) {
  auto r = DecodeRequest(
      "{\"op\":\"append\",\"id\":\"ds-1\","
      "\"transactions\":[[1,2,3],[4]],\"timestamps\":[10.5,11]}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kAppend);
  EXPECT_EQ(r->dataset_op.id, "ds-1");
  ASSERT_EQ(r->dataset_op.transactions.size(), 2u);
  EXPECT_EQ(r->dataset_op.transactions[0], (Itemset{1, 2, 3}));
  EXPECT_EQ(r->dataset_op.transactions[1], (Itemset{4}));
  ASSERT_EQ(r->dataset_op.timestamps.size(), 2u);
  EXPECT_DOUBLE_EQ(r->dataset_op.timestamps[0], 10.5);

  // Timestamps are optional.
  auto bare = DecodeRequest(
      "{\"op\":\"append\",\"id\":\"ds-1\",\"transactions\":[[7]]}");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->dataset_op.timestamps.empty());
}

TEST(StreamingDecodeTest, AppendErrorConvention) {
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"append\",\"transactions\":[[1]]}"),
            "op 'append': field 'id': missing or not a string");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"append\",\"id\":\"ds-1\"}"),
            "op 'append': field 'transactions': "
            "missing or not a non-empty array");
  EXPECT_EQ(
      DecodeErrorOf(
          "{\"op\":\"append\",\"id\":\"ds-1\",\"transactions\":[]}"),
      "op 'append': field 'transactions': missing or not a non-empty array");
  EXPECT_EQ(
      DecodeErrorOf(
          "{\"op\":\"append\",\"id\":\"ds-1\",\"transactions\":[[1],[]]}"),
      "op 'append': field 'transactions[1]': not a non-empty array");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"append\",\"id\":\"ds-1\","
                          "\"transactions\":[[1,\"x\"]]}"),
            "op 'append': field 'transactions[0]': "
            "items must be numbers >= 0");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"append\",\"id\":\"ds-1\","
                          "\"transactions\":[[1],[2]],\"timestamps\":[1]}"),
            "op 'append': field 'timestamps': "
            "length must match 'transactions'");
}

TEST(StreamingDecodeTest, ExpireRequiresPositiveCount) {
  auto r = DecodeRequest("{\"op\":\"expire\",\"id\":\"ds-2\",\"count\":3}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kExpire);
  EXPECT_EQ(r->dataset_op.id, "ds-2");
  EXPECT_EQ(r->dataset_op.count, 3u);

  EXPECT_EQ(DecodeErrorOf("{\"op\":\"expire\",\"id\":\"ds-2\"}"),
            "op 'expire': field 'count': missing or not a number >= 1");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"expire\",\"id\":\"ds-2\",\"count\":0}"),
            "op 'expire': field 'count': missing or not a number >= 1");
}

TEST(StreamingDecodeTest, WindowDecodesPolicyFields) {
  auto r = DecodeRequest(
      "{\"op\":\"window\",\"id\":\"ds-1\",\"last_n\":100,"
      "\"last_seconds\":3.5}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kWindow);
  EXPECT_EQ(r->dataset_op.window.last_n, 100u);
  EXPECT_DOUBLE_EQ(r->dataset_op.window.last_seconds, 3.5);

  // Zero clears a dimension; negatives are rejected.
  auto cleared = DecodeRequest(
      "{\"op\":\"window\",\"id\":\"ds-1\",\"last_n\":0}");
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(cleared->dataset_op.window.last_n, 0u);
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"window\",\"id\":\"ds-1\","
                          "\"last_n\":-1}"),
            "op 'window': field 'last_n': not a number >= 0");
}

TEST(StreamingDecodeTest, DatasetInfoRequiresId) {
  auto r = DecodeRequest("{\"op\":\"dataset_info\",\"id\":\"ds-4\"}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kDatasetInfo);
  EXPECT_EQ(r->dataset_op.id, "ds-4");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"dataset_info\"}"),
            "op 'dataset_info': field 'id': missing or not a string");
}

TEST(StreamingDecodeTest, QueryAcceptsHandleAddressing) {
  auto latest = DecodeRequest(
      "{\"op\":\"query\",\"id\":\"ds-1\",\"min_support\":2}");
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(latest->mine.dataset_id, "ds-1");
  EXPECT_EQ(latest->mine.dataset_version, 0u);  // chain head
  EXPECT_TRUE(latest->mine.dataset_path.empty());

  auto pinned = DecodeRequest(
      "{\"op\":\"query\",\"id\":\"ds-1\",\"version\":3,\"min_support\":2}");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->mine.dataset_version, 3u);

  auto named = DecodeRequest(
      "{\"op\":\"query\",\"id\":\"ds-1\",\"version\":\"latest\","
      "\"min_support\":2}");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->mine.dataset_version, 0u);
}

TEST(StreamingDecodeTest, QueryHandleAddressingErrors) {
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"query\",\"id\":\"ds-1\","
                          "\"dataset\":\"d.dat\",\"min_support\":2}"),
            "op 'query': field 'dataset': mutually exclusive with 'id'");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"query\",\"id\":\"\","
                          "\"min_support\":2}"),
            "op 'query': field 'id': not a non-empty string");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"query\",\"id\":\"ds-1\","
                          "\"version\":0,\"min_support\":2}"),
            "op 'query': field 'version': not a number >= 1 or 'latest'");
  EXPECT_EQ(DecodeErrorOf("{\"op\":\"query\",\"id\":\"ds-1\","
                          "\"version\":\"newest\",\"min_support\":2}"),
            "op 'query': field 'version': not a number >= 1 or 'latest'");
}

TEST(StreamingDecodeTest, FrozenMineOpIgnoresHandleFields) {
  // v1 "mine" predates handles: "id" is not an address there, and the
  // path remains required.
  auto r = DecodeRequest(
      "{\"op\":\"mine\",\"id\":\"ds-1\",\"min_support\":2}");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "op 'mine': field 'dataset': missing or not a string");
}

std::shared_ptr<const Database> TinyDb() {
  DatabaseBuilder b;
  b.AddTransaction({1, 2});
  b.AddTransaction({2, 3});
  return std::make_shared<const Database>(b.Build());
}

TEST(StreamingEncodeTest, HandleResponseGolden) {
  DatasetHandle handle;
  handle.id = "ds-1";
  handle.version = 2;
  handle.latest_version = 2;
  handle.digest = "beef";
  handle.parent_digest = "cafe";
  handle.database = TinyDb();
  EXPECT_EQ(EncodeHandleResponse(handle),
            "{\"digest\":\"beef\",\"id\":\"ds-1\",\"latest_version\":2,"
            "\"num_transactions\":2,\"ok\":true,\"parent_digest\":\"cafe\","
            "\"total_weight\":2,\"version\":2}");
}

TEST(StreamingEncodeTest, BaseVersionHandleOmitsParentDigest) {
  DatasetHandle handle;
  handle.id = "ds-1";
  handle.digest = "beef";
  handle.database = TinyDb();
  const std::string line = EncodeHandleResponse(handle);
  EXPECT_EQ(line.find("parent_digest"), std::string::npos);
  EXPECT_NE(line.find("\"version\":1"), std::string::npos);
}

TEST(StreamingEncodeTest, DatasetInfoResponseGolden) {
  DatasetInfo info;
  info.id = "ds-1";
  info.path = "/tmp/t10.dat";
  info.storage = "packed";
  info.live_transactions = 4;
  info.window.last_n = 6;
  info.versions.push_back({1, "cafe", 5, 0, 0});
  info.versions.push_back({2, "beef", 4, 1, 2});
  EXPECT_EQ(
      EncodeDatasetInfoResponse(info),
      "{\"id\":\"ds-1\",\"live_transactions\":4,\"ok\":true,"
      "\"path\":\"/tmp/t10.dat\",\"storage\":\"packed\",\"versions\":["
      "{\"appended_weight\":0,\"digest\":\"cafe\",\"expired_weight\":0,"
      "\"num_transactions\":5,\"version\":1},"
      "{\"appended_weight\":1,\"digest\":\"beef\",\"expired_weight\":2,"
      "\"num_transactions\":4,\"version\":2}],"
      "\"window\":{\"last_n\":6,\"last_seconds\":0}}");
}

}  // namespace
}  // namespace fpm
