#include "fpm/service/job_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "fpm/parallel/thread_pool.h"

namespace fpm {
namespace {

/// A manually released gate: jobs submitted behind it stay queued until
/// the test opens it, which makes queue-order observations race-free.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void WaitOpen() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(JobSchedulerTest, RunsSubmittedJobs) {
  ThreadPool pool(2);
  JobSchedulerOptions options;
  options.pool = &pool;
  JobScheduler scheduler(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(scheduler.Submit(0, [&] { ran.fetch_add(1); }).ok());
  }
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(scheduler.stats().submitted, 16u);
  EXPECT_EQ(scheduler.stats().completed, 16u);
  EXPECT_EQ(scheduler.stats().queue_depth, 0u);
}

TEST(JobSchedulerTest, HigherPriorityOvertakesFifoWithinPriority) {
  ThreadPool pool(1);
  JobSchedulerOptions options;
  options.pool = &pool;
  options.max_concurrency = 1;  // one runner -> strictly ordered pops
  JobScheduler scheduler(options);

  Gate gate;
  std::vector<int> order;
  std::mutex order_mu;
  // The gate job occupies the single runner while the real jobs queue.
  ASSERT_TRUE(scheduler.Submit(100, [&] { gate.WaitOpen(); }).ok());
  auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(scheduler.Submit(1, record(1)).ok());
  ASSERT_TRUE(scheduler.Submit(5, record(50)).ok());
  ASSERT_TRUE(scheduler.Submit(3, record(3)).ok());
  ASSERT_TRUE(scheduler.Submit(5, record(51)).ok());
  gate.Open();
  scheduler.Drain();

  const std::vector<int> expected = {50, 51, 3, 1};
  EXPECT_EQ(order, expected);
}

TEST(JobSchedulerTest, BackpressureRejectsWhenFull) {
  ThreadPool pool(1);
  JobSchedulerOptions options;
  options.pool = &pool;
  options.max_concurrency = 1;
  options.max_queue_depth = 2;
  JobScheduler scheduler(options);

  Gate gate;
  ASSERT_TRUE(scheduler.Submit(0, [&] { gate.WaitOpen(); }).ok());
  // The runner may or may not have picked the gate job up yet; give it
  // a moment so the queue is empty before we fill it.
  while (scheduler.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(scheduler.Submit(0, [] {}).ok());
  ASSERT_TRUE(scheduler.Submit(0, [] {}).ok());
  const Status rejected = scheduler.Submit(0, [] {});
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.stats().rejected, 1u);

  gate.Open();
  scheduler.Drain();
  // Space freed up: submissions are accepted again.
  EXPECT_TRUE(scheduler.Submit(0, [] {}).ok());
  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().completed, 4u);
}

TEST(JobSchedulerTest, DestructorDrains) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  {
    JobSchedulerOptions options;
    options.pool = &pool;
    JobScheduler scheduler(options);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(scheduler.Submit(0, [&] { ran.fetch_add(1); }).ok());
    }
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(JobSchedulerTest, ConcurrencyIsBounded) {
  ThreadPool pool(4);
  JobSchedulerOptions options;
  options.pool = &pool;
  options.max_concurrency = 2;
  options.max_queue_depth = 64;
  JobScheduler scheduler(options);

  std::atomic<int> inflight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(0,
                            [&] {
                              const int now = inflight.fetch_add(1) + 1;
                              int seen = peak.load();
                              while (now > seen &&
                                     !peak.compare_exchange_weak(seen, now)) {
                              }
                              std::this_thread::sleep_for(
                                  std::chrono::milliseconds(1));
                              inflight.fetch_sub(1);
                            })
                    .ok());
  }
  scheduler.Drain();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(scheduler.stats().completed, 32u);
}

}  // namespace
}  // namespace fpm
