#include "fpm/service/json.h"

#include <gtest/gtest.h>

#include <string>

namespace fpm {
namespace {

TEST(JsonValueTest, DumpScalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Int(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, DumpEscapesStrings) {
  const std::string dumped =
      JsonValue::Str("a\"b\\c\n\t").Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(JsonValueTest, ObjectsSerializeDeterministically) {
  JsonValue o = JsonValue::Object();
  o.Set("zeta", JsonValue::Int(1));
  o.Set("alpha", JsonValue::Int(2));
  // Map-ordered keys: insertion order does not matter.
  EXPECT_EQ(o.Dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(JsonValueTest, ArraysKeepOrder) {
  JsonValue a = JsonValue::Array();
  a.Append(JsonValue::Int(3));
  a.Append(JsonValue::Int(1));
  a.Append(JsonValue::Str("x"));
  EXPECT_EQ(a.Dump(), "[3,1,\"x\"]");
}

TEST(JsonValueTest, AbsentKeyIsNull) {
  JsonValue o = JsonValue::Object();
  EXPECT_TRUE(o["nope"].is_null());
  EXPECT_TRUE(o["nope"]["deeper"].is_null());
}

TEST(JsonParseTest, RoundTripsNestedDocument) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":true}],\"c\":\"s\",\"d\":null,\"e\":-2.5}";
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonParseTest, ParsesWhitespaceAndEscapes) {
  auto parsed = ParseJson("  { \"k\" : \"a\\u0041\\n\" }  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value()["k"].string_value(), "aA\n");
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{\"a\":1} extra").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("truthy").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
  // A comfortably shallow document is fine.
  EXPECT_TRUE(ParseJson("[[[[[[[[1]]]]]]]]").ok());
}

TEST(JsonParseTest, NumbersSurviveRoundTrip) {
  auto parsed = ParseJson("[0,-1,3.25,1e3]");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& items = parsed->array_items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].number_value(), 0.0);
  EXPECT_EQ(items[1].number_value(), -1.0);
  EXPECT_EQ(items[2].number_value(), 3.25);
  EXPECT_EQ(items[3].number_value(), 1000.0);
}

}  // namespace
}  // namespace fpm
