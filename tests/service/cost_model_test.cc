#include "fpm/service/cost_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/core/mine.h"
#include "fpm/dataset/database.h"

namespace fpm {
namespace {

Database MakeDb(const std::vector<std::vector<Item>>& rows) {
  DatabaseBuilder b;
  for (const auto& row : rows) b.AddTransaction(row);
  return b.Build();
}

TEST(CostModelTest, EmptyDatabaseIsFree) {
  const Database db = MakeDb({});
  const CostEstimate est = EstimateMiningCost(db, 1);
  EXPECT_EQ(est.max_frequent_itemsets, 0.0);
  EXPECT_EQ(est.max_itemset_size, 0u);
  EXPECT_EQ(est.num_frequent_items, 0u);
}

TEST(CostModelTest, HandComputedBound) {
  // Transactions {1,2}, {1,2}, {3}; minsup 2: items 1 and 2 are
  // frequent, item 3 is not. Per-transaction frequent-item counts are
  // 2, 2, 0, so L = 2 and the Geerts bound is
  //   k=1: (C(2,1)+C(2,1))/2 = 2,  k=2: (C(2,2)+C(2,2))/2 = 1.
  const Database db = MakeDb({{1, 2}, {1, 2}, {3}});
  const CostEstimate est = EstimateMiningCost(db, 2);
  EXPECT_EQ(est.num_frequent_items, 2u);
  EXPECT_EQ(est.max_itemset_size, 2u);
  EXPECT_DOUBLE_EQ(est.max_frequent_itemsets, 3.0);
}

TEST(CostModelTest, BoundDominatesActualCount) {
  const Database db = MakeDb(
      {{1, 2, 3}, {1, 2}, {2, 3, 4}, {1, 3, 4}, {1, 2, 3, 4}, {2, 4}});
  for (Support minsup : {1u, 2u, 3u, 4u}) {
    const CostEstimate est = EstimateMiningCost(db, minsup);
    MineOptions options;
    options.min_support = minsup;
    CollectingSink sink;
    ASSERT_TRUE(Mine(db, options, &sink).ok());
    EXPECT_GE(est.max_frequent_itemsets, static_cast<double>(sink.size()))
        << "minsup=" << minsup;
    for (const auto& entry : sink.results()) {
      EXPECT_LE(entry.first.size(), est.max_itemset_size)
          << "minsup=" << minsup;
    }
  }
}

TEST(CostModelTest, LengthBoundTracksThreshold) {
  // Only one transaction has 4 items, so at minsup 2 no 4-itemset can
  // be frequent even though one exists at minsup 1.
  const Database db = MakeDb({{1, 2, 3, 4}, {1, 2, 3}, {1, 2, 3}});
  EXPECT_EQ(EstimateMiningCost(db, 1).max_itemset_size, 4u);
  EXPECT_EQ(EstimateMiningCost(db, 2).max_itemset_size, 3u);
  EXPECT_EQ(EstimateMiningCost(db, 3).max_itemset_size, 3u);
  EXPECT_EQ(EstimateMiningCost(db, 4).max_itemset_size, 0u);
}

TEST(CostModelTest, SaturatesInsteadOfOverflowing) {
  // One transaction with 1100 distinct items at minsup 1: the bound is
  // 2^1100 - 1, far beyond double range — it must saturate, not become
  // inf/nan.
  std::vector<Item> wide(1100);
  for (size_t i = 0; i < wide.size(); ++i) wide[i] = static_cast<Item>(i);
  DatabaseBuilder b;
  b.AddTransaction(wide);
  const CostEstimate est = EstimateMiningCost(b.Build(), 1);
  EXPECT_EQ(est.max_frequent_itemsets, CostEstimate::kUnbounded);
  EXPECT_EQ(est.max_itemset_size, 1100u);
}

}  // namespace
}  // namespace fpm
