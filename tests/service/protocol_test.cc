#include "fpm/service/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace fpm {
namespace {

TEST(DecodeRequestTest, DecodesControlOps) {
  auto ping = DecodeRequest("{\"op\":\"ping\"}");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->op, ServiceRequest::Op::kPing);

  auto metrics = DecodeRequest("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->op, ServiceRequest::Op::kMetrics);

  auto shutdown = DecodeRequest("{\"op\":\"shutdown\"}");
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(shutdown->op, ServiceRequest::Op::kShutdown);
}

TEST(DecodeRequestTest, DecodesFullMineRequest) {
  auto r = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"/tmp/x.dat\",\"min_support\":7,"
      "\"algorithm\":\"eclat\",\"patterns\":\"none\",\"priority\":3,"
      "\"timeout_s\":1.5,\"count_only\":true}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kMine);
  const MineRequest& mine = r->mine;
  EXPECT_EQ(mine.dataset_path, "/tmp/x.dat");
  EXPECT_EQ(mine.min_support, 7u);
  EXPECT_EQ(mine.algorithm, Algorithm::kEclat);
  EXPECT_TRUE(mine.patterns.empty());
  EXPECT_EQ(mine.priority, 3);
  EXPECT_DOUBLE_EQ(mine.timeout_seconds, 1.5);
  EXPECT_TRUE(mine.count_only);
}

TEST(DecodeRequestTest, MineDefaults) {
  auto r = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"d.dat\",\"min_support\":2}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->mine.algorithm, Algorithm::kLcm);
  EXPECT_EQ(r->mine.patterns, PatternSet::All());
  EXPECT_EQ(r->mine.priority, 0);
  EXPECT_DOUBLE_EQ(r->mine.timeout_seconds, 0.0);
  EXPECT_FALSE(r->mine.count_only);
}

TEST(DecodeRequestTest, RejectsMalformedRequests) {
  EXPECT_FALSE(DecodeRequest("not json").ok());
  EXPECT_FALSE(DecodeRequest("[]").ok());
  EXPECT_FALSE(DecodeRequest("{\"op\":\"explode\"}").ok());
  EXPECT_FALSE(DecodeRequest("{\"op\":42}").ok());
  // mine without its required fields, or with bad values.
  EXPECT_FALSE(DecodeRequest("{\"op\":\"mine\"}").ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\"}").ok());
  EXPECT_FALSE(DecodeRequest(
                   "{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":0}")
                   .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"algorithm\":\"nope\"}")
          .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"patterns\":\"P1\"}")
          .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"timeout_s\":-1}")
          .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"count_only\":\"yes\"}")
          .ok());
}

TEST(EncodeTest, MineResponseGolden) {
  MineResponse response;
  response.num_frequent = 2;
  response.itemsets = {{{1, 2}, 4}, {{3}, 2}};
  response.cache = CacheOutcome::kDominated;
  response.dataset_digest = "cafe";
  response.queue_seconds = 0.5;   // exact in binary: stable golden text
  response.mine_seconds = 0.25;
  EXPECT_EQ(EncodeMineResponse(response),
            "{\"cache\":\"dominated\",\"digest\":\"cafe\","
            "\"itemsets\":[{\"items\":[1,2],\"support\":4},"
            "{\"items\":[3],\"support\":2}],\"mine_ms\":250,"
            "\"num_frequent\":2,\"ok\":true,\"queue_ms\":500}");
}

TEST(EncodeTest, CountOnlyResponseOmitsItemsets) {
  MineResponse response;
  response.num_frequent = 9;
  const std::string line = EncodeMineResponse(response);
  EXPECT_EQ(line.find("itemsets"), std::string::npos);
  EXPECT_NE(line.find("\"num_frequent\":9"), std::string::npos);
  EXPECT_NE(line.find("\"cache\":\"miss\""), std::string::npos);
}

TEST(EncodeTest, ErrorCarriesCodeAndMessage) {
  const std::string line =
      EncodeError(Status::DeadlineExceeded("mining deadline exceeded"));
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc.value()["ok"].bool_value());
  EXPECT_EQ(doc.value()["error"]["code"].string_value(), "DEADLINE_EXCEEDED");
  EXPECT_EQ(doc.value()["error"]["message"].string_value(),
            "mining deadline exceeded");
}

TEST(EncodeTest, OkIsMinimal) {
  EXPECT_EQ(EncodeOk(), "{\"ok\":true}");
}

TEST(EncodeTest, ResponsesRoundTripThroughTheParser) {
  MineResponse response;
  response.num_frequent = 1;
  response.itemsets = {{{5}, 3}};
  auto doc = ParseJson(EncodeMineResponse(response));
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value()["ok"].bool_value());
  EXPECT_EQ(doc.value()["itemsets"].array_items()[0]["support"].int_value(),
            3);
}

}  // namespace
}  // namespace fpm
