#include "fpm/service/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace fpm {
namespace {

TEST(DecodeRequestTest, DecodesControlOps) {
  auto ping = DecodeRequest("{\"op\":\"ping\"}");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->op, ServiceRequest::Op::kPing);

  auto metrics = DecodeRequest("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->op, ServiceRequest::Op::kMetrics);

  auto shutdown = DecodeRequest("{\"op\":\"shutdown\"}");
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(shutdown->op, ServiceRequest::Op::kShutdown);
}

TEST(DecodeRequestTest, DecodesFullMineRequest) {
  auto r = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"/tmp/x.dat\",\"min_support\":7,"
      "\"algorithm\":\"eclat\",\"patterns\":\"none\",\"priority\":3,"
      "\"timeout_s\":1.5,\"count_only\":true}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kMine);
  const MineRequest& mine = r->mine;
  EXPECT_EQ(mine.dataset_path, "/tmp/x.dat");
  EXPECT_EQ(mine.query.min_support, 7u);
  EXPECT_EQ(mine.query.task, MiningTask::kFrequent);
  EXPECT_EQ(mine.algorithm, Algorithm::kEclat);
  EXPECT_TRUE(mine.patterns.empty());
  EXPECT_EQ(mine.priority, 3);
  EXPECT_DOUBLE_EQ(mine.timeout_seconds, 1.5);
  EXPECT_TRUE(mine.count_only);
}

TEST(DecodeRequestTest, MineDefaults) {
  auto r = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"d.dat\",\"min_support\":2}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->mine.algorithm, Algorithm::kLcm);
  EXPECT_EQ(r->mine.patterns, PatternSet::All());
  EXPECT_EQ(r->mine.priority, 0);
  EXPECT_DOUBLE_EQ(r->mine.timeout_seconds, 0.0);
  EXPECT_FALSE(r->mine.count_only);
}

TEST(DecodeRequestTest, RejectsMalformedRequests) {
  EXPECT_FALSE(DecodeRequest("not json").ok());
  EXPECT_FALSE(DecodeRequest("[]").ok());
  EXPECT_FALSE(DecodeRequest("{\"op\":\"explode\"}").ok());
  EXPECT_FALSE(DecodeRequest("{\"op\":42}").ok());
  // mine without its required fields, or with bad values.
  EXPECT_FALSE(DecodeRequest("{\"op\":\"mine\"}").ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\"}").ok());
  EXPECT_FALSE(DecodeRequest(
                   "{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":0}")
                   .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"algorithm\":\"nope\"}")
          .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"patterns\":\"P1\"}")
          .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"timeout_s\":-1}")
          .ok());
  EXPECT_FALSE(
      DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\",\"min_support\":2,"
                    "\"count_only\":\"yes\"}")
          .ok());
}

TEST(DecodeRequestTest, DecodesQueryRequestWithTaskFamily) {
  auto r = DecodeRequest(
      "{\"op\":\"query\",\"dataset\":\"d.dat\",\"min_support\":3,"
      "\"task\":\"top_k\",\"k\":25}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kQuery);
  EXPECT_EQ(r->version, 2);
  EXPECT_EQ(r->mine.query.task, MiningTask::kTopK);
  EXPECT_EQ(r->mine.query.k, 25u);
  EXPECT_EQ(r->mine.query.min_support, 3u);

  auto rules = DecodeRequest(
      "{\"op\":\"query\",\"dataset\":\"d.dat\",\"min_support\":3,"
      "\"task\":\"rules\",\"min_confidence\":0.7,\"min_lift\":1.1,"
      "\"max_consequent\":2}");
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ(rules->mine.query.task, MiningTask::kRules);
  EXPECT_DOUBLE_EQ(rules->mine.query.min_confidence, 0.7);
  EXPECT_DOUBLE_EQ(rules->mine.query.min_lift, 1.1);
  EXPECT_EQ(rules->mine.query.max_consequent, 2u);

  // Task omitted: a plain frequent query on the v2 encoding.
  auto plain = DecodeRequest(
      "{\"op\":\"query\",\"dataset\":\"d.dat\",\"min_support\":3}");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->mine.query.task, MiningTask::kFrequent);
}

TEST(DecodeRequestTest, MineOpStaysOnTheFrozenV1FieldSet) {
  // "task" is not part of protocol v1: the mine op ignores it and always
  // runs frequent, so old clients keep byte-identical behavior.
  auto r = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"d.dat\",\"min_support\":2,"
      "\"task\":\"closed\"}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->version, 1);
  EXPECT_EQ(r->mine.query.task, MiningTask::kFrequent);
}

TEST(DecodeRequestTest, ErrorsNameTheOpAndField) {
  EXPECT_EQ(DecodeRequest("{\"op\":\"query\",\"min_support\":2}")
                .status()
                .message(),
            "op 'query': field 'dataset': missing or not a string");
  EXPECT_EQ(DecodeRequest("{\"op\":\"query\",\"dataset\":\"d\","
                          "\"min_support\":2,\"task\":\"bogus\"}")
                .status()
                .message(),
            "op 'query': field 'task': unknown task 'bogus' "
            "(want frequent|closed|maximal|top_k|rules)");
  EXPECT_EQ(DecodeRequest("{\"op\":\"query\",\"dataset\":\"d\","
                          "\"min_support\":2,\"task\":\"top_k\"}")
                .status()
                .message(),
            "op 'query': top_k query needs k >= 1");
  EXPECT_EQ(DecodeRequest("{\"op\":\"explode\"}").status().message(),
            "request: field 'op': unknown op 'explode'");
  EXPECT_EQ(DecodeRequest("{\"op\":\"mine\",\"dataset\":\"d\","
                          "\"min_support\":0}")
                .status()
                .message(),
            "op 'mine': field 'min_support': missing or not a number >= 1");
}

TEST(DecodeRequestTest, BatchDecodesAndIsolatesEntryErrors) {
  auto r = DecodeRequest(
      "{\"op\":\"batch\",\"queries\":["
      "{\"dataset\":\"a.dat\",\"min_support\":2,\"task\":\"closed\"},"
      "{\"dataset\":\"b.dat\"},"
      "{\"dataset\":\"c.dat\",\"min_support\":5}]}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->op, ServiceRequest::Op::kBatch);
  EXPECT_EQ(r->version, 2);
  ASSERT_EQ(r->batch.size(), 3u);
  // Entry 0 and 2 decode; entry 1's error names its position and field
  // and does not poison its neighbors.
  EXPECT_TRUE(r->batch[0].status.ok());
  EXPECT_EQ(r->batch[0].request.query.task, MiningTask::kClosed);
  EXPECT_FALSE(r->batch[1].status.ok());
  EXPECT_EQ(r->batch[1].status.message(),
            "op 'batch': queries[1]: field 'min_support': "
            "missing or not a number >= 1");
  EXPECT_TRUE(r->batch[2].status.ok());
  EXPECT_EQ(r->batch[2].request.query.min_support, 5u);

  // A non-object entry is also an entry-level error, not a batch error.
  auto mixed = DecodeRequest("{\"op\":\"batch\",\"queries\":[42]}");
  ASSERT_TRUE(mixed.ok());
  ASSERT_EQ(mixed->batch.size(), 1u);
  EXPECT_EQ(mixed->batch[0].status.message(),
            "op 'batch': queries[0]: not an object");
}

TEST(DecodeRequestTest, BatchRejectsMissingOrEmptyQueries) {
  EXPECT_EQ(DecodeRequest("{\"op\":\"batch\"}").status().message(),
            "op 'batch': field 'queries': missing or not an array");
  EXPECT_EQ(
      DecodeRequest("{\"op\":\"batch\",\"queries\":[]}").status().message(),
      "op 'batch': field 'queries': must not be empty");
}

TEST(EncodeTest, MineResponseGolden) {
  MineResponse response;
  response.num_frequent = 2;
  response.itemsets = {{{1, 2}, 4}, {{3}, 2}};
  response.cache = CacheOutcome::kDominated;
  response.dataset_digest = "cafe";
  response.queue_seconds = 0.5;   // exact in binary: stable golden text
  response.mine_seconds = 0.25;
  EXPECT_EQ(EncodeMineResponse(response),
            "{\"cache\":\"dominated\",\"digest\":\"cafe\","
            "\"itemsets\":[{\"items\":[1,2],\"support\":4},"
            "{\"items\":[3],\"support\":2}],\"mine_ms\":250,"
            "\"num_frequent\":2,\"ok\":true,\"queue_ms\":500}");
}

TEST(EncodeTest, QueryResponseGolden) {
  MineResponse response;
  response.task = MiningTask::kClosed;
  response.num_frequent = 2;
  response.itemsets = {{{1, 2}, 4}, {{3}, 2}};
  response.cache = CacheOutcome::kCrossTask;
  response.dataset_digest = "cafe";
  response.queue_seconds = 0.5;
  response.mine_seconds = 0.25;
  response.query_id = 17;
  response.trace_id = "req-9";
  EXPECT_EQ(EncodeQueryResponse(response),
            "{\"cache\":\"cross_task\",\"digest\":\"cafe\","
            "\"itemsets\":[{\"items\":[1,2],\"support\":4},"
            "{\"items\":[3],\"support\":2}],\"mine_ms\":250,"
            "\"num_results\":2,\"ok\":true,\"query_id\":17,"
            "\"queue_ms\":500,\"task\":\"closed\","
            "\"trace_id\":\"req-9\"}");
}

TEST(EncodeTest, RulesResponseCarriesTheRuleTable) {
  MineResponse response;
  response.task = MiningTask::kRules;
  response.num_frequent = 1;
  AssociationRule rule;
  rule.antecedent = {1};
  rule.consequent = {2};
  rule.itemset_support = 4;
  rule.confidence = 0.5;
  rule.lift = 2.0;
  response.rules = {rule};
  response.dataset_digest = "d";
  EXPECT_EQ(EncodeQueryResponse(response),
            "{\"cache\":\"miss\",\"digest\":\"d\",\"mine_ms\":0,"
            "\"num_results\":1,\"ok\":true,\"query_id\":0,"
            "\"queue_ms\":0,"
            "\"rules\":[{\"antecedent\":[1],\"confidence\":0.5,"
            "\"consequent\":[2],\"lift\":2,\"support\":4}],"
            "\"task\":\"rules\"}");
}

TEST(EncodeTest, BatchLinesCarryTheQueryId) {
  MineResponse response;
  response.num_frequent = 0;
  response.query_id = 21;
  const std::string tagged = EncodeQueryResponseWithId(3, response);
  auto doc = ParseJson(tagged);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()["id"].int_value(), 3);
  // Batch lines carry both ids: "id" is the entry's index within the
  // batch, "query_id" the service-wide request id.
  EXPECT_EQ(doc.value()["query_id"].int_value(), 21);
  EXPECT_TRUE(doc.value()["ok"].bool_value());

  const std::string error =
      EncodeErrorWithId(7, Status::InvalidArgument("nope"));
  auto err = ParseJson(error);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value()["id"].int_value(), 7);
  EXPECT_FALSE(err.value()["ok"].bool_value());
}

TEST(EncodeTest, CountOnlyResponseOmitsItemsets) {
  MineResponse response;
  response.num_frequent = 9;
  const std::string line = EncodeMineResponse(response);
  EXPECT_EQ(line.find("itemsets"), std::string::npos);
  EXPECT_NE(line.find("\"num_frequent\":9"), std::string::npos);
  EXPECT_NE(line.find("\"cache\":\"miss\""), std::string::npos);
}

TEST(EncodeTest, ErrorCarriesCodeAndMessage) {
  const std::string line =
      EncodeError(Status::DeadlineExceeded("mining deadline exceeded"));
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc.value()["ok"].bool_value());
  EXPECT_EQ(doc.value()["error"]["code"].string_value(), "DEADLINE_EXCEEDED");
  EXPECT_EQ(doc.value()["error"]["message"].string_value(),
            "mining deadline exceeded");
}

TEST(EncodeTest, OkIsMinimal) {
  EXPECT_EQ(EncodeOk(), "{\"ok\":true}");
}

TEST(EncodeTest, ResponsesRoundTripThroughTheParser) {
  MineResponse response;
  response.num_frequent = 1;
  response.itemsets = {{{5}, 3}};
  auto doc = ParseJson(EncodeMineResponse(response));
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value()["ok"].bool_value());
  EXPECT_EQ(doc.value()["itemsets"].array_items()[0]["support"].int_value(),
            3);
}

TEST(DecodeRequestTest, DecodesStatsAndMetricsTextOps) {
  auto stats = DecodeRequest("{\"op\":\"stats\"}");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->op, ServiceRequest::Op::kStats);
  EXPECT_EQ(stats->version, 2);

  auto text = DecodeRequest("{\"op\":\"metrics_text\"}");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->op, ServiceRequest::Op::kMetricsText);
  EXPECT_EQ(text->version, 2);
}

TEST(DecodeRequestTest, QueryAcceptsTraceIdMineIgnoresIt) {
  auto query = DecodeRequest(
      "{\"op\":\"query\",\"dataset\":\"d.dat\",\"min_support\":2,"
      "\"trace_id\":\"req-42\"}");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->mine.trace_id, "req-42");

  EXPECT_EQ(DecodeRequest("{\"op\":\"query\",\"dataset\":\"d.dat\","
                          "\"min_support\":2,\"trace_id\":7}")
                .status()
                .message(),
            "op 'query': field 'trace_id': not a string");

  // trace_id is v2-only: the frozen v1 mine op does not pick it up, so
  // its responses stay byte-identical.
  auto mine = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"d.dat\",\"min_support\":2,"
      "\"trace_id\":\"req-42\"}");
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_TRUE(mine->mine.trace_id.empty());
}

TEST(EncodeTest, StatsResponseGolden) {
  ServiceStats stats;
  stats.uptime_seconds = 1.5;
  stats.registry.loads = 2;
  stats.registry.hits = 3;
  stats.registry.resident_bytes = 64;
  stats.registry.mapped_bytes = 128;
  DatasetRegistryStats::Dataset row;
  row.id = "ds-1";
  row.path = "/tmp/x.dat";
  row.storage = "packed";
  row.versions = 2;
  row.live_transactions = 9;
  row.bytes = 64;
  row.mapped_bytes = 128;
  row.pinned_versions = 1;
  stats.registry.datasets.push_back(row);
  stats.cache.hits = 4;
  stats.cache.misses = 5;
  stats.scheduler.submitted = 6;
  stats.scheduler.running = 1;
  stats.scheduler.in_flight.push_back(InFlightJob{11, 0.25});
  ServiceWindowStats window;
  window.window_seconds = 10;
  window.count = 6;
  window.qps = 0.5;
  window.p50_ms = 1.5;
  window.p99_ms = 3.5;
  window.max_ms = 4.5;
  stats.windows.push_back(window);
  stats.watchdog.sweeps = 7;
  stats.watchdog.flagged = 1;
  stats.watchdog.stuck_now = 1;
  EXPECT_EQ(
      EncodeStatsResponse(stats),
      "{\"cache\":{\"cross_task_hits\":0,\"dominated_hits\":0,"
      "\"evictions\":0,\"hits\":4,\"insertions\":0,\"misses\":5,"
      "\"resident_bytes\":0,\"resident_entries\":0},\"ok\":true,"
      "\"registry\":{\"appends\":0,\"datasets\":[{\"bytes\":64,"
      "\"id\":\"ds-1\",\"live_transactions\":9,\"mapped_bytes\":128,"
      "\"path\":\"/tmp/x.dat\",\"pinned_versions\":1,"
      "\"storage\":\"packed\",\"versions\":2}],\"evictions\":0,"
      "\"hits\":3,\"loads\":2,\"mapped_bytes\":128,"
      "\"resident_bytes\":64},"
      "\"scheduler\":{\"completed\":0,\"in_flight\":[{\"age_seconds\":0.25,"
      "\"query_id\":11}],\"queue_depth\":0,\"rejected\":0,\"running\":1,"
      "\"submitted\":6},\"uptime_seconds\":1.5,"
      "\"watchdog\":{\"flagged\":1,\"stuck_now\":1,\"sweeps\":7},"
      "\"windows\":[{\"count\":6,\"max_ms\":4.5,\"p50_ms\":1.5,"
      "\"p99_ms\":3.5,\"qps\":0.5,\"window_s\":10}]}");
}

TEST(EncodeTest, MetricsTextResponseWrapsTheExposition) {
  const std::string line =
      EncodeMetricsTextResponse("# TYPE fpm_x counter\nfpm_x 1\n");
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value()["ok"].bool_value());
  EXPECT_EQ(doc.value()["text"].string_value(),
            "# TYPE fpm_x counter\nfpm_x 1\n");
}

TEST(DecodeRequestTest, DecodesClusterInfoOp) {
  auto bare = DecodeRequest("{\"op\":\"cluster_info\"}");
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_EQ(bare->op, ServiceRequest::Op::kClusterInfo);
  EXPECT_EQ(bare->version, 2);
  EXPECT_TRUE(bare->cluster.path.empty());

  auto with_dataset = DecodeRequest(
      "{\"op\":\"cluster_info\",\"dataset\":\"/tmp/x.dat\"}");
  ASSERT_TRUE(with_dataset.ok()) << with_dataset.status();
  EXPECT_EQ(with_dataset->cluster.path, "/tmp/x.dat");

  EXPECT_EQ(DecodeRequest("{\"op\":\"cluster_info\",\"dataset\":7}")
                .status()
                .message(),
            "op 'cluster_info': field 'dataset': not a non-empty string");
}

TEST(DecodeRequestTest, DecodesCacheProbeOp) {
  auto probe = DecodeRequest(
      "{\"op\":\"cache_probe\",\"digest\":\"abcdef0123456789\","
      "\"min_support\":4,\"task\":\"closed\",\"count_only\":true}");
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(probe->op, ServiceRequest::Op::kCacheProbe);
  EXPECT_EQ(probe->cluster.digest, "abcdef0123456789");
  EXPECT_EQ(probe->mine.query.min_support, 4u);
  EXPECT_EQ(probe->mine.query.task, MiningTask::kClosed);
  EXPECT_TRUE(probe->mine.count_only);
  // The probe body carries no dataset — the digest IS the address.
  EXPECT_TRUE(probe->mine.dataset_path.empty());

  EXPECT_EQ(DecodeRequest("{\"op\":\"cache_probe\",\"min_support\":2}")
                .status()
                .message(),
            "op 'cache_probe': field 'digest': missing or not a string");
}

TEST(DecodeRequestTest, DecodesShardQueryModes) {
  auto execute = DecodeRequest(
      "{\"op\":\"shard_query\",\"mode\":\"execute\","
      "\"dataset\":\"/tmp/x.dat\",\"min_support\":3}");
  ASSERT_TRUE(execute.ok()) << execute.status();
  EXPECT_EQ(execute->op, ServiceRequest::Op::kShardQuery);
  EXPECT_EQ(execute->cluster.shard_mode,
            ClusterOpRequest::ShardMode::kExecute);

  auto mine = DecodeRequest(
      "{\"op\":\"shard_query\",\"mode\":\"mine\","
      "\"dataset\":\"/tmp/x.dat\",\"min_support\":3,"
      "\"partition\":{\"index\":1,\"count\":4}}");
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_EQ(mine->cluster.shard_mode, ClusterOpRequest::ShardMode::kMine);
  EXPECT_EQ(mine->cluster.partition_index, 1u);
  EXPECT_EQ(mine->cluster.partition_count, 4u);

  auto count = DecodeRequest(
      "{\"op\":\"shard_query\",\"mode\":\"count\","
      "\"dataset\":\"/tmp/x.dat\",\"min_support\":3,"
      "\"partition\":{\"index\":0,\"count\":2},"
      "\"candidates\":[[1,2],[7]]}");
  ASSERT_TRUE(count.ok()) << count.status();
  ASSERT_EQ(count->cluster.candidates.size(), 2u);
  EXPECT_EQ(count->cluster.candidates[0], (Itemset{1, 2}));
  EXPECT_EQ(count->cluster.candidates[1], (Itemset{7}));
}

TEST(DecodeRequestTest, ShardQueryErrorsNameTheField) {
  EXPECT_EQ(DecodeRequest("{\"op\":\"shard_query\",\"mode\":\"explode\","
                          "\"dataset\":\"d\",\"min_support\":1}")
                .status()
                .message(),
            "op 'shard_query': field 'mode': expected 'execute', 'mine' or "
            "'count'");
  EXPECT_EQ(DecodeRequest("{\"op\":\"shard_query\",\"mode\":\"mine\","
                          "\"dataset\":\"d\",\"min_support\":1}")
                .status()
                .message(),
            "op 'shard_query': field 'partition': missing or not an object");
  EXPECT_EQ(DecodeRequest("{\"op\":\"shard_query\",\"mode\":\"mine\","
                          "\"dataset\":\"d\",\"min_support\":1,"
                          "\"partition\":{\"index\":2,\"count\":2}}")
                .status()
                .message(),
            "op 'shard_query': field 'partition.index': must be < "
            "partition.count");
  EXPECT_EQ(DecodeRequest("{\"op\":\"shard_query\",\"mode\":\"count\","
                          "\"dataset\":\"d\",\"min_support\":1,"
                          "\"partition\":{\"index\":0,\"count\":2}}")
                .status()
                .message(),
            "op 'shard_query': field 'candidates': missing or not an array");
  EXPECT_EQ(DecodeRequest("{\"op\":\"shard_query\",\"mode\":\"count\","
                          "\"dataset\":\"d\",\"min_support\":1,"
                          "\"partition\":{\"index\":0,\"count\":2},"
                          "\"candidates\":[[]]}")
                .status()
                .message(),
            "op 'shard_query': field 'candidates[0]': not a non-empty array");
}

TEST(DecodeRequestTest, QueryDecodesScatterFlag) {
  auto query = DecodeRequest(
      "{\"op\":\"query\",\"dataset\":\"d.dat\",\"min_support\":2,"
      "\"scatter\":true}");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_TRUE(query->mine.scatter);

  EXPECT_EQ(DecodeRequest("{\"op\":\"query\",\"dataset\":\"d.dat\","
                          "\"min_support\":2,\"scatter\":1}")
                .status()
                .message(),
            "op 'query': field 'scatter': not a bool");

  // v1 mine has no scatter.
  auto mine = DecodeRequest(
      "{\"op\":\"mine\",\"dataset\":\"d.dat\",\"min_support\":2,"
      "\"scatter\":true}");
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_FALSE(mine->mine.scatter);
}

TEST(ClusterWireTest, CacheProbeRequestRoundTrips) {
  MineRequest request;
  request.query.min_support = 5;
  request.query.task = MiningTask::kTopK;
  request.query.k = 3;
  request.algorithm = Algorithm::kEclat;
  request.trace_id = "qid-7@n1:7100";
  const std::string line =
      EncodeCacheProbeRequest("abcdef0123456789", request);
  auto decoded = DecodeRequest(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->op, ServiceRequest::Op::kCacheProbe);
  EXPECT_EQ(decoded->cluster.digest, "abcdef0123456789");
  EXPECT_EQ(decoded->mine.query.min_support, 5u);
  EXPECT_EQ(decoded->mine.query.task, MiningTask::kTopK);
  EXPECT_EQ(decoded->mine.query.k, 3u);
  EXPECT_EQ(decoded->mine.algorithm, Algorithm::kEclat);
  EXPECT_EQ(decoded->mine.trace_id, "qid-7@n1:7100");
}

TEST(ClusterWireTest, CacheProbeResponsesRoundTrip) {
  auto miss = DecodeCacheProbeResponse(EncodeCacheProbeResponse(false, {}));
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->hit);

  MineResponse response;
  response.task = MiningTask::kFrequent;
  response.num_frequent = 2;
  response.itemsets = {{{1, 2}, 4}, {{3}, 6}};
  response.cache = CacheOutcome::kExact;
  response.dataset_digest = "abcdef0123456789";
  auto hit = DecodeCacheProbeResponse(EncodeCacheProbeResponse(true, response));
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->hit);
  EXPECT_EQ(hit->response.num_frequent, 2u);
  EXPECT_EQ(hit->response.itemsets, response.itemsets);
  EXPECT_EQ(hit->response.cache, CacheOutcome::kExact);
  EXPECT_EQ(hit->response.dataset_digest, "abcdef0123456789");
}

TEST(ClusterWireTest, ShardQueryRequestRoundTrips) {
  MineRequest request;
  request.dataset_path = "/data/retail.fpk";
  request.query.min_support = 9;
  const std::string line = EncodeShardQueryRequest(
      request, ClusterOpRequest::ShardMode::kCount, 2, 5, {{4, 1}, {2}});
  auto decoded = DecodeRequest(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->cluster.shard_mode, ClusterOpRequest::ShardMode::kCount);
  EXPECT_EQ(decoded->cluster.partition_index, 2u);
  EXPECT_EQ(decoded->cluster.partition_count, 5u);
  EXPECT_EQ(decoded->mine.dataset_path, "/data/retail.fpk");
  ASSERT_EQ(decoded->cluster.candidates.size(), 2u);
  EXPECT_EQ(decoded->cluster.candidates[0], (Itemset{4, 1}));
}

TEST(ClusterWireTest, ShardPhaseResponsesRoundTrip) {
  const std::vector<CollectingSink::Entry> entries = {{{1, 2}, 3}, {{5}, 7}};
  auto mined = DecodeShardMineResponse(EncodeShardMineResponse(entries));
  ASSERT_TRUE(mined.ok()) << mined.status();
  EXPECT_EQ(mined.value(), entries);

  const std::vector<Support> counts = {0, 4, 9};
  auto counted = DecodeShardCountResponse(EncodeShardCountResponse(counts));
  ASSERT_TRUE(counted.ok()) << counted.status();
  EXPECT_EQ(counted.value(), counts);
}

TEST(ClusterWireTest, QueryResponseCarriesPeerAndShards) {
  MineResponse response;
  response.num_frequent = 1;
  response.itemsets = {{{2}, 8}};
  response.served_by = "n2:7100";
  response.shard_count = 3;
  auto decoded = DecodeQueryResponse(EncodeQueryResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->served_by, "n2:7100");
  EXPECT_EQ(decoded->shard_count, 3u);
  EXPECT_EQ(decoded->itemsets, response.itemsets);

  // Non-cluster responses carry neither key.
  MineResponse plain;
  plain.num_frequent = 0;
  const std::string line = EncodeQueryResponse(plain);
  EXPECT_EQ(line.find("\"peer\""), std::string::npos);
  EXPECT_EQ(line.find("\"shards\""), std::string::npos);
}

TEST(ClusterWireTest, QueryResponseDecodeSurfacesPeerErrors) {
  auto decoded = DecodeQueryResponse(EncodeError(Status::NotFound("nope")));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.status().message(), "nope");
}

TEST(EncodeTest, StatsResponseEmbedsClusterSection) {
  ServiceStats stats;
  stats.uptime_seconds = 1.0;
  JsonValue cluster = JsonValue::Object();
  cluster.Set("enabled", JsonValue::Bool(true));
  cluster.Set("self", JsonValue::Str("n1:7100"));
  const std::string line = EncodeStatsResponse(stats, &cluster);
  auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value()["cluster"]["enabled"].bool_value());
  EXPECT_EQ(doc.value()["cluster"]["self"].string_value(), "n1:7100");
  // The two-arg overload with no cluster matches the plain encoding.
  EXPECT_EQ(EncodeStatsResponse(stats, nullptr), EncodeStatsResponse(stats));
}

TEST(EncodeTest, RegistryRowCarriesDigestWhenKnown) {
  ServiceStats stats;
  DatasetRegistryStats::Dataset row;
  row.id = "ds-1";
  row.path = "/tmp/x.dat";
  row.storage = "fimi";
  row.digest = "abcdef0123456789";
  stats.registry.datasets.push_back(row);
  auto doc = ParseJson(EncodeStatsResponse(stats));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()["registry"]["datasets"].array_items()[0]["digest"]
                .string_value(),
            "abcdef0123456789");
}

}  // namespace
}  // namespace fpm
