// Cooperative cancellation through the mining kernels: a pre-cancelled
// token stops every cancellation-aware kernel (and the parallel
// drivers above them), a deadline converts to DEADLINE_EXCEEDED within
// a frame or two, and the reference miners simply ignore the token.

#include <gtest/gtest.h>

#include <chrono>

#include "fpm/algo/itemset_sink.h"
#include "fpm/common/cancel.h"
#include "fpm/core/mine.h"
#include "fpm/dataset/fimi_io.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

class CancelKernelTest : public testing::TestWithParam<Algorithm> {};

TEST_P(CancelKernelTest, PreCancelledTokenStopsTheRun) {
  auto db = ParseFimi(test::DenseFimiText(/*rows=*/200));
  ASSERT_TRUE(db.ok());
  CancelToken cancel;
  cancel.RequestCancel();
  MineOptions options;
  options.algorithm = GetParam();
  options.min_support = 2;
  options.cancel = &cancel;
  CollectingSink sink;
  auto stats = Mine(*db, options, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);
}

TEST_P(CancelKernelTest, DeadlineConvertsToDeadlineExceeded) {
  // Dense data at minsup 2: the pattern space is astronomically larger
  // than anything a 30 ms budget can enumerate, so the deadline must
  // fire — and the run must wind down well within the 250 ms bound the
  // service promises.
  auto db = ParseFimi(test::DenseFimiText());
  ASSERT_TRUE(db.ok());
  CancelToken cancel;
  cancel.SetTimeout(std::chrono::milliseconds(30));
  MineOptions options;
  options.algorithm = GetParam();
  options.min_support = 2;
  options.cancel = &cancel;
  CountingSink sink;
  const auto start = std::chrono::steady_clock::now();
  auto stats = Mine(*db, options, &sink);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(cancel.deadline_exceeded());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            30 + 250);
}

TEST_P(CancelKernelTest, NestedParallelDriverPropagatesCancellation) {
  auto db = ParseFimi(test::DenseFimiText());
  ASSERT_TRUE(db.ok());
  CancelToken cancel;
  cancel.SetTimeout(std::chrono::milliseconds(30));
  MineOptions options;
  options.algorithm = GetParam();
  options.min_support = 2;
  options.cancel = &cancel;
  options.execution.num_threads = 4;
  options.execution.nested = true;
  CountingSink sink;
  const auto start = std::chrono::steady_clock::now();
  auto stats = Mine(*db, options, &sink);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            30 + 250);
}

INSTANTIATE_TEST_SUITE_P(Kernels, CancelKernelTest,
                         testing::Values(Algorithm::kLcm, Algorithm::kEclat,
                                         Algorithm::kFpGrowth),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param));
                         });

TEST(CancelReferenceMinerTest, AprioriIgnoresTheToken) {
  auto db = ParseFimi(test::SmallFimiText());
  ASSERT_TRUE(db.ok());
  CancelToken cancel;
  cancel.RequestCancel();
  MineOptions options;
  options.algorithm = Algorithm::kApriori;
  options.min_support = 2;
  options.cancel = &cancel;
  CollectingSink sink;
  auto stats = Mine(*db, options, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(sink.size(), 0u);
}

TEST(CancelTokenMineTest, UncancelledTokenChangesNothing) {
  auto db = ParseFimi(test::SmallFimiText());
  ASSERT_TRUE(db.ok());
  MineOptions plain;
  plain.min_support = 2;
  CollectingSink baseline;
  ASSERT_TRUE(Mine(*db, plain, &baseline).ok());

  CancelToken cancel;
  MineOptions with_token = plain;
  with_token.cancel = &cancel;
  CollectingSink observed;
  ASSERT_TRUE(Mine(*db, with_token, &observed).ok());
  EXPECT_EQ(observed.results(), baseline.results());
}

}  // namespace
}  // namespace fpm
