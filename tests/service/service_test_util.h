// Shared helpers for the service-layer tests: temp FIMI files and a
// dense dataset whose pattern space is far too large to mine to
// completion — the workload the cancellation tests hang a deadline on.

#ifndef FPM_TESTS_SERVICE_SERVICE_TEST_UTIL_H_
#define FPM_TESTS_SERVICE_SERVICE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "fpm/common/rng.h"
#include "fpm/dataset/database.h"

namespace fpm {
namespace test {

/// Writes `content` to a fresh file under the gtest temp dir and
/// returns its path. `name` must be unique within the test binary.
inline std::string WriteTempFimi(const std::string& name,
                                 const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

/// A small database every kernel mines in microseconds:
///   1 2 3 / 1 2 / 1 3 / 2 3 / 1 2 3 4
inline std::string SmallFimiText() {
  return "1 2 3\n1 2\n1 3\n2 3\n1 2 3 4\n";
}

/// FIMI text for a dense database: `rows` transactions, each with
/// `k` distinct items drawn from [0, universe). At low min_support the
/// frequent-itemset count is combinatorial in `k`, so a full mine takes
/// far longer than any test deadline — cancellation must kick in.
inline std::string DenseFimiText(uint32_t rows = 2000, uint32_t universe = 40,
                                 uint32_t k = 20) {
  Rng rng(0x5eedu);
  std::string out;
  std::vector<bool> in_row(universe);
  for (uint32_t r = 0; r < rows; ++r) {
    std::fill(in_row.begin(), in_row.end(), false);
    uint32_t placed = 0;
    bool first = true;
    while (placed < k) {
      const uint32_t item = static_cast<uint32_t>(rng.NextBounded(universe));
      if (in_row[item]) continue;
      in_row[item] = true;
      ++placed;
      if (!first) out.push_back(' ');
      out += std::to_string(item);
      first = false;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace test
}  // namespace fpm

#endif  // FPM_TESTS_SERVICE_SERVICE_TEST_UTIL_H_
