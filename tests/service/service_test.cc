// End-to-end MiningService tests: cache correctness (exact and
// support-dominance answers must be byte-identical to a direct
// sequential Mine()), admission control, deadlines and cancellation.

#include "fpm/service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/dataset/fimi_io.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

/// A direct sequential mine of `path` — the byte-identity baseline.
std::vector<CollectingSink::Entry> DirectMine(const std::string& path,
                                              Algorithm algorithm,
                                              Support min_support) {
  auto db = ReadFimiFile(path);
  EXPECT_TRUE(db.ok()) << db.status();
  MineOptions options;
  options.algorithm = algorithm;
  options.min_support = min_support;
  options.patterns = PatternSet::All();
  CollectingSink sink;
  EXPECT_TRUE(Mine(*db, options, &sink).ok());
  return sink.results();
}

MineRequest Request(const std::string& path, Algorithm algorithm,
                    Support min_support) {
  MineRequest request;
  request.dataset_path = path;
  request.algorithm = algorithm;
  request.patterns = PatternSet::All();
  request.min_support = min_support;
  return request;
}

TEST(MiningServiceTest, FreshQueryMatchesDirectMine) {
  const std::string path =
      test::WriteTempFimi("service_fresh.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  auto response = service.Execute(Request(path, Algorithm::kLcm, 2));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->cache, CacheOutcome::kMiss);
  EXPECT_EQ(response->itemsets, DirectMine(path, Algorithm::kLcm, 2));
  EXPECT_EQ(response->num_frequent, response->itemsets.size());
  EXPECT_EQ(response->dataset_digest.size(), 16u);
}

TEST(MiningServiceTest, RepeatedQueryIsAnExactHitWithIdenticalBytes) {
  const std::string path =
      test::WriteTempFimi("service_repeat.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  const MineRequest request = Request(path, Algorithm::kLcm, 2);
  auto first = service.Execute(request);
  auto second = service.Execute(request);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->cache, CacheOutcome::kMiss);
  EXPECT_EQ(second->cache, CacheOutcome::kExact);
  EXPECT_EQ(second->itemsets, first->itemsets);
  EXPECT_EQ(service.cache().stats().hits, 1u);
  EXPECT_EQ(service.registry().stats().loads, 1u);
}

class DominanceTest : public testing::TestWithParam<Algorithm> {};

TEST_P(DominanceTest, DominatedQueryIsByteIdenticalToAFreshMine) {
  const std::string path = test::WriteTempFimi(
      std::string("service_dom_") + AlgorithmName(GetParam()) + ".dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  // Low threshold first: the cached superset every higher-threshold
  // query filters from.
  auto low = service.Execute(Request(path, GetParam(), 4));
  ASSERT_TRUE(low.ok()) << low.status();
  EXPECT_EQ(low->cache, CacheOutcome::kMiss);

  for (Support minsup : {8u, 16u}) {
    auto dominated = service.Execute(Request(path, GetParam(), minsup));
    ASSERT_TRUE(dominated.ok()) << dominated.status();
    EXPECT_EQ(dominated->cache, CacheOutcome::kDominated)
        << "minsup=" << minsup;
    // The contract: identical to mining fresh, including emission order.
    EXPECT_EQ(dominated->itemsets, DirectMine(path, GetParam(), minsup))
        << "minsup=" << minsup;
    // Memoized: asking again is an exact hit, same bytes.
    auto again = service.Execute(Request(path, GetParam(), minsup));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->cache, CacheOutcome::kExact);
    EXPECT_EQ(again->itemsets, dominated->itemsets);
  }
  EXPECT_EQ(service.cache().stats().dominated_hits, 2u);
}

INSTANTIATE_TEST_SUITE_P(OrderStableKernels, DominanceTest,
                         testing::Values(Algorithm::kLcm, Algorithm::kEclat),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param));
                         });

TEST(MiningServiceTest, FpGrowthNeverAnswersByDominance) {
  const std::string path = test::WriteTempFimi(
      "service_fpg.dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  auto low = service.Execute(Request(path, Algorithm::kFpGrowth, 4));
  ASSERT_TRUE(low.ok()) << low.status();
  auto high = service.Execute(Request(path, Algorithm::kFpGrowth, 8));
  ASSERT_TRUE(high.ok()) << high.status();
  // Emission order is threshold-dependent for FP-Growth, so the higher
  // threshold mines fresh rather than filtering the cached run.
  EXPECT_EQ(high->cache, CacheOutcome::kMiss);
  EXPECT_EQ(high->itemsets, DirectMine(path, Algorithm::kFpGrowth, 8));
  EXPECT_EQ(service.cache().stats().dominated_hits, 0u);
}

TEST(MiningServiceTest, CountOnlyOmitsItemsetsButCachesInFull) {
  const std::string path =
      test::WriteTempFimi("service_count.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  MineRequest counting = Request(path, Algorithm::kLcm, 2);
  counting.count_only = true;
  auto counted = service.Execute(counting);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->itemsets.empty());
  EXPECT_GT(counted->num_frequent, 0u);

  // The cache stored the full result: the same query without
  // count_only replays it instead of mining again.
  auto full = service.Execute(Request(path, Algorithm::kLcm, 2));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->cache, CacheOutcome::kExact);
  EXPECT_EQ(full->itemsets, DirectMine(path, Algorithm::kLcm, 2));
  EXPECT_EQ(full->num_frequent, counted->num_frequent);
}

TEST(MiningServiceTest, QueriesAreValidatedBeforeQueueing) {
  MiningService service(MiningService::Options{.num_threads = 1});
  MineRequest no_support = Request("whatever.dat", Algorithm::kLcm, 1);
  no_support.min_support = 0;
  EXPECT_EQ(service.Submit(no_support).status().code(),
            StatusCode::kInvalidArgument);

  MineRequest no_path = Request("", Algorithm::kLcm, 2);
  EXPECT_EQ(service.Submit(no_path).status().code(),
            StatusCode::kInvalidArgument);

  MineRequest missing =
      Request("/nonexistent/service_nope.dat", Algorithm::kLcm, 2);
  EXPECT_FALSE(service.Submit(missing).ok());
}

TEST(MiningServiceTest, AdmissionControlRejectsProvablyHugeQueries) {
  const std::string path = test::WriteTempFimi(
      "service_admission.dat",
      test::DenseFimiText(/*rows=*/100, /*universe=*/30, /*k=*/15));
  MiningService::Options options;
  options.num_threads = 1;
  options.max_estimated_itemsets = 1000.0;
  MiningService service(options);
  auto rejected = service.Submit(Request(path, Algorithm::kLcm, 2));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // A sane threshold on the same dataset is admitted and completes.
  auto admitted = service.Execute(Request(path, Algorithm::kLcm, 90));
  EXPECT_TRUE(admitted.ok()) << admitted.status();
}

TEST(MiningServiceTest, DeadlineCancelledJobReturnsPromptly) {
  const std::string path =
      test::WriteTempFimi("service_deadline.dat", test::DenseFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  MineRequest request = Request(path, Algorithm::kLcm, 2);
  request.timeout_seconds = 0.05;

  const auto start = std::chrono::steady_clock::now();
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  submitted.value()->Wait();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  auto result = submitted.value()->Take();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The acceptance bound: back within 250 ms of the deadline.
  EXPECT_LT(elapsed_ms, 50.0 + 250.0);
}

TEST(MiningServiceTest, ExplicitCancelStopsAnInFlightJob) {
  const std::string path =
      test::WriteTempFimi("service_cancel.dat", test::DenseFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  auto submitted = service.Submit(Request(path, Algorithm::kEclat, 2));
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  std::shared_ptr<MineJob> job = submitted.value();
  // Let it start mining, then pull the plug.
  job->WaitFor(std::chrono::milliseconds(20));
  job->Cancel();
  job->Wait();
  auto result = job->Take();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(MiningServiceTest, TakeMovesTheResultOut) {
  const std::string path =
      test::WriteTempFimi("service_take.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 1});
  auto submitted = service.Submit(Request(path, Algorithm::kLcm, 2));
  ASSERT_TRUE(submitted.ok());
  submitted.value()->Wait();
  EXPECT_TRUE(submitted.value()->done());
  auto first = submitted.value()->Take();
  EXPECT_TRUE(first.ok());
}

}  // namespace
}  // namespace fpm
