// End-to-end MiningService tests: cache correctness (exact and
// support-dominance answers must be byte-identical to a direct
// sequential Mine()), admission control, deadlines and cancellation.

#include "fpm/service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <string>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/packed.h"
#include "fpm/obs/query_log.h"
#include "fpm/obs/trace.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

/// A direct sequential mine of `path` — the byte-identity baseline.
std::vector<CollectingSink::Entry> DirectMine(const std::string& path,
                                              Algorithm algorithm,
                                              Support min_support) {
  auto db = ReadFimiFile(path);
  EXPECT_TRUE(db.ok()) << db.status();
  MineOptions options;
  options.algorithm = algorithm;
  options.min_support = min_support;
  options.patterns = PatternSet::All();
  CollectingSink sink;
  EXPECT_TRUE(Mine(*db, options, &sink).ok());
  return sink.results();
}

MineRequest Request(const std::string& path, Algorithm algorithm,
                    Support min_support) {
  MineRequest request;
  request.dataset_path = path;
  request.algorithm = algorithm;
  request.patterns = PatternSet::All();
  request.query.min_support = min_support;
  return request;
}

TEST(MiningServiceTest, FreshQueryMatchesDirectMine) {
  const std::string path =
      test::WriteTempFimi("service_fresh.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  auto response = service.Execute(Request(path, Algorithm::kLcm, 2));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->cache, CacheOutcome::kMiss);
  EXPECT_EQ(response->itemsets, DirectMine(path, Algorithm::kLcm, 2));
  EXPECT_EQ(response->num_frequent, response->itemsets.size());
  EXPECT_EQ(response->dataset_digest.size(), 16u);
}

TEST(MiningServiceTest, RepeatedQueryIsAnExactHitWithIdenticalBytes) {
  const std::string path =
      test::WriteTempFimi("service_repeat.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  const MineRequest request = Request(path, Algorithm::kLcm, 2);
  auto first = service.Execute(request);
  auto second = service.Execute(request);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->cache, CacheOutcome::kMiss);
  EXPECT_EQ(second->cache, CacheOutcome::kExact);
  EXPECT_EQ(second->itemsets, first->itemsets);
  EXPECT_EQ(service.cache().stats().hits, 1u);
  EXPECT_EQ(service.registry().stats().loads, 1u);
}

TEST(MiningServiceTest, PackedAndFimiPathsShareTheResultCache) {
  // The packed file carries the digest of the FIMI bytes it was
  // converted from, so the same query against either path is one cache
  // entry: storage backend is invisible to the ResultCache key.
  const std::string fimi =
      test::WriteTempFimi("service_packed.dat", test::SmallFimiText());
  const std::string packed = testing::TempDir() + "/service_packed.fpk";
  auto db = ReadFimiFile(fimi);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(
      WritePacked(db.value(), packed, ContentDigest(test::SmallFimiText()))
          .ok());

  MiningService service(MiningService::Options{.num_threads = 2});
  auto from_fimi = service.Execute(Request(fimi, Algorithm::kLcm, 2));
  ASSERT_TRUE(from_fimi.ok()) << from_fimi.status();
  EXPECT_EQ(from_fimi->cache, CacheOutcome::kMiss);

  auto from_packed = service.Execute(Request(packed, Algorithm::kLcm, 2));
  ASSERT_TRUE(from_packed.ok()) << from_packed.status();
  EXPECT_EQ(from_packed->cache, CacheOutcome::kExact);
  EXPECT_EQ(from_packed->dataset_digest, from_fimi->dataset_digest);
  EXPECT_EQ(from_packed->itemsets, from_fimi->itemsets);
  EXPECT_EQ(service.cache().stats().hits, 1u);
  // Two registry entries (keyed by path), one cache entry (keyed by
  // digest).
  EXPECT_EQ(service.registry().stats().loads, 2u);
}

class DominanceTest : public testing::TestWithParam<Algorithm> {};

TEST_P(DominanceTest, DominatedQueryIsByteIdenticalToAFreshMine) {
  const std::string path = test::WriteTempFimi(
      std::string("service_dom_") + AlgorithmName(GetParam()) + ".dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  // Low threshold first: the cached superset every higher-threshold
  // query filters from.
  auto low = service.Execute(Request(path, GetParam(), 4));
  ASSERT_TRUE(low.ok()) << low.status();
  EXPECT_EQ(low->cache, CacheOutcome::kMiss);

  for (Support minsup : {8u, 16u}) {
    auto dominated = service.Execute(Request(path, GetParam(), minsup));
    ASSERT_TRUE(dominated.ok()) << dominated.status();
    EXPECT_EQ(dominated->cache, CacheOutcome::kDominated)
        << "minsup=" << minsup;
    // The contract: identical to mining fresh, including emission order.
    EXPECT_EQ(dominated->itemsets, DirectMine(path, GetParam(), minsup))
        << "minsup=" << minsup;
    // Memoized: asking again is an exact hit, same bytes.
    auto again = service.Execute(Request(path, GetParam(), minsup));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->cache, CacheOutcome::kExact);
    EXPECT_EQ(again->itemsets, dominated->itemsets);
  }
  EXPECT_EQ(service.cache().stats().dominated_hits, 2u);
}

INSTANTIATE_TEST_SUITE_P(OrderStableKernels, DominanceTest,
                         testing::Values(Algorithm::kLcm, Algorithm::kEclat),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param));
                         });

TEST(MiningServiceTest, FpGrowthNeverAnswersByDominance) {
  const std::string path = test::WriteTempFimi(
      "service_fpg.dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  auto low = service.Execute(Request(path, Algorithm::kFpGrowth, 4));
  ASSERT_TRUE(low.ok()) << low.status();
  auto high = service.Execute(Request(path, Algorithm::kFpGrowth, 8));
  ASSERT_TRUE(high.ok()) << high.status();
  // Emission order is threshold-dependent for FP-Growth, so the higher
  // threshold mines fresh rather than filtering the cached run.
  EXPECT_EQ(high->cache, CacheOutcome::kMiss);
  EXPECT_EQ(high->itemsets, DirectMine(path, Algorithm::kFpGrowth, 8));
  EXPECT_EQ(service.cache().stats().dominated_hits, 0u);
}

TEST(MiningServiceTest, CountOnlyOmitsItemsetsButCachesInFull) {
  const std::string path =
      test::WriteTempFimi("service_count.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  MineRequest counting = Request(path, Algorithm::kLcm, 2);
  counting.count_only = true;
  auto counted = service.Execute(counting);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->itemsets.empty());
  EXPECT_GT(counted->num_frequent, 0u);

  // The cache stored the full result: the same query without
  // count_only replays it instead of mining again.
  auto full = service.Execute(Request(path, Algorithm::kLcm, 2));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->cache, CacheOutcome::kExact);
  EXPECT_EQ(full->itemsets, DirectMine(path, Algorithm::kLcm, 2));
  EXPECT_EQ(full->num_frequent, counted->num_frequent);
}

TEST(MiningServiceTest, QueriesAreValidatedBeforeQueueing) {
  MiningService service(MiningService::Options{.num_threads = 1});
  MineRequest no_support = Request("whatever.dat", Algorithm::kLcm, 1);
  no_support.query.min_support = 0;
  EXPECT_EQ(service.Submit(no_support).status().code(),
            StatusCode::kInvalidArgument);

  MineRequest no_path = Request("", Algorithm::kLcm, 2);
  EXPECT_EQ(service.Submit(no_path).status().code(),
            StatusCode::kInvalidArgument);

  MineRequest missing =
      Request("/nonexistent/service_nope.dat", Algorithm::kLcm, 2);
  EXPECT_FALSE(service.Submit(missing).ok());
}

TEST(MiningServiceTest, AdmissionControlRejectsProvablyHugeQueries) {
  const std::string path = test::WriteTempFimi(
      "service_admission.dat",
      test::DenseFimiText(/*rows=*/100, /*universe=*/30, /*k=*/15));
  MiningService::Options options;
  options.num_threads = 1;
  options.max_estimated_itemsets = 1000.0;
  MiningService service(options);
  auto rejected = service.Submit(Request(path, Algorithm::kLcm, 2));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // A sane threshold on the same dataset is admitted and completes.
  auto admitted = service.Execute(Request(path, Algorithm::kLcm, 90));
  EXPECT_TRUE(admitted.ok()) << admitted.status();
}

TEST(MiningServiceTest, DeadlineCancelledJobReturnsPromptly) {
  const std::string path =
      test::WriteTempFimi("service_deadline.dat", test::DenseFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  MineRequest request = Request(path, Algorithm::kLcm, 2);
  request.timeout_seconds = 0.05;

  const auto start = std::chrono::steady_clock::now();
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  submitted.value()->Wait();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  auto result = submitted.value()->Take();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The acceptance bound: back within 250 ms of the deadline.
  EXPECT_LT(elapsed_ms, 50.0 + 250.0);
}

TEST(MiningServiceTest, ExplicitCancelStopsAnInFlightJob) {
  const std::string path =
      test::WriteTempFimi("service_cancel.dat", test::DenseFimiText());
  MiningService service(MiningService::Options{.num_threads = 2});
  auto submitted = service.Submit(Request(path, Algorithm::kEclat, 2));
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  std::shared_ptr<MineJob> job = submitted.value();
  // Let it start mining, then pull the plug.
  job->WaitFor(std::chrono::milliseconds(20));
  job->Cancel();
  job->Wait();
  auto result = job->Take();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---- the MiningQuery task family ----------------------------------------

/// Direct dispatch through a fresh sequential miner — the baseline the
/// service's task answers must match byte-for-byte.
std::vector<CollectingSink::Entry> DirectTask(const std::string& path,
                                              Algorithm algorithm,
                                              const MiningQuery& query) {
  auto db = ReadFimiFile(path);
  EXPECT_TRUE(db.ok()) << db.status();
  auto miner = CreateMiner(algorithm, PatternSet::All());
  EXPECT_TRUE(miner.ok()) << miner.status();
  CollectingSink sink;
  auto stats = miner.value()->Mine(*db, query, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return sink.results();
}

MineRequest TaskRequest(const std::string& path, Algorithm algorithm,
                        const MiningQuery& query) {
  MineRequest request = Request(path, algorithm, query.min_support);
  request.query = query;
  return request;
}

TEST(MiningServiceTaskTest, ClosedAndMaximalMatchDirectDispatch) {
  const std::string path = test::WriteTempFimi(
      "service_tasks.dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  for (const MiningQuery& query :
       {MiningQuery::Closed(6), MiningQuery::Maximal(6)}) {
    auto response = service.Execute(TaskRequest(path, Algorithm::kLcm, query));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->task, query.task);
    EXPECT_EQ(response->itemsets,
              DirectTask(path, Algorithm::kLcm, query))
        << TaskName(query.task);
    EXPECT_EQ(response->num_frequent, response->itemsets.size());
  }
}

TEST(MiningServiceTaskTest, TopKMatchesExhaustiveReference) {
  const std::string path = test::WriteTempFimi(
      "service_topk.dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  const MiningQuery query = MiningQuery::TopK(/*k=*/10, /*min_support=*/2);
  auto response = service.Execute(TaskRequest(path, Algorithm::kLcm, query));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->itemsets, DirectTask(path, Algorithm::kLcm, query));
  EXPECT_EQ(response->itemsets.size(), 10u);
  // The reference ranking: every frequent itemset, sorted by support
  // descending with the lexicographic tie-break, truncated to k.
  std::vector<CollectingSink::Entry> all =
      DirectMine(path, Algorithm::kLcm, 2);
  for (auto& entry : all) std::sort(entry.first.begin(), entry.first.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  all.resize(10);
  EXPECT_EQ(response->itemsets, all);
}

TEST(MiningServiceTaskTest, RulesMatchDirectDispatch) {
  const std::string path = test::WriteTempFimi(
      "service_rules.dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  const MiningQuery query = MiningQuery::Rules(/*min_support=*/6, 0.6);

  auto db = ReadFimiFile(path);
  ASSERT_TRUE(db.ok());
  auto miner = CreateMiner(Algorithm::kLcm, PatternSet::All());
  ASSERT_TRUE(miner.ok());
  std::vector<AssociationRule> direct;
  ASSERT_TRUE(miner.value()->MineRules(*db, query, &direct).ok());
  ASSERT_FALSE(direct.empty());

  auto response = service.Execute(TaskRequest(path, Algorithm::kLcm, query));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->itemsets.empty());
  EXPECT_EQ(response->rules, direct);
  EXPECT_EQ(response->num_frequent, direct.size());
}

TEST(MiningServiceTaskTest, TaskQueriesDeriveFromTheFrequentCache) {
  const std::string path = test::WriteTempFimi(
      "service_cross.dat",
      test::DenseFimiText(/*rows=*/60, /*universe=*/12, /*k=*/6));
  MiningService service(MiningService::Options{.num_threads = 2});
  // Warm the cache with the frequent run every task can be derived from.
  auto warm = service.Execute(Request(path, Algorithm::kLcm, 6));
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_EQ(warm->cache, CacheOutcome::kMiss);

  for (const MiningQuery& query :
       {MiningQuery::Closed(6), MiningQuery::Maximal(6),
        MiningQuery::TopK(/*k=*/5, /*min_support=*/6),
        MiningQuery::Rules(/*min_support=*/6, 0.6)}) {
    auto derived =
        service.Execute(TaskRequest(path, Algorithm::kLcm, query));
    ASSERT_TRUE(derived.ok()) << derived.status();
    EXPECT_EQ(derived->cache, CacheOutcome::kCrossTask)
        << TaskName(query.task);
    // Derived answers are byte-identical to mining the task fresh.
    if (query.task == MiningTask::kRules) {
      std::vector<AssociationRule> direct;
      auto db = ReadFimiFile(path);
      ASSERT_TRUE(db.ok());
      auto miner = CreateMiner(Algorithm::kLcm, PatternSet::All());
      ASSERT_TRUE(miner.ok());
      ASSERT_TRUE(miner.value()->MineRules(*db, query, &direct).ok());
      EXPECT_EQ(derived->rules, direct);
    } else {
      EXPECT_EQ(derived->itemsets,
                DirectTask(path, Algorithm::kLcm, query))
          << TaskName(query.task);
    }
    // And memoized: the re-ask is an exact hit.
    auto again =
        service.Execute(TaskRequest(path, Algorithm::kLcm, query));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->cache, CacheOutcome::kExact) << TaskName(query.task);
  }
  EXPECT_EQ(service.cache().stats().cross_task_hits, 4u);
  EXPECT_EQ(service.cache().stats().misses, 1u);
}

TEST(MiningServiceTaskTest, TaskSpecificValidationRunsAtSubmit) {
  MiningService service(MiningService::Options{.num_threads = 1});
  // top_k without k.
  MineRequest topk = TaskRequest("d.dat", Algorithm::kLcm,
                                 MiningQuery::TopK(/*k=*/1, 2));
  topk.query.k = 0;
  EXPECT_EQ(service.Submit(topk).status().code(),
            StatusCode::kInvalidArgument);
  // rules with an out-of-range confidence.
  MineRequest rules = TaskRequest("d.dat", Algorithm::kLcm,
                                  MiningQuery::Rules(2, 0.5));
  rules.query.min_confidence = 1.5;
  EXPECT_EQ(service.Submit(rules).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MiningServiceTest, TakeMovesTheResultOut) {
  const std::string path =
      test::WriteTempFimi("service_take.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 1});
  auto submitted = service.Submit(Request(path, Algorithm::kLcm, 2));
  ASSERT_TRUE(submitted.ok());
  submitted.value()->Wait();
  EXPECT_TRUE(submitted.value()->done());
  auto first = submitted.value()->Take();
  EXPECT_TRUE(first.ok());
}

TEST(MiningServiceTest, ResponsesCarryUniqueQueryIdsAndEchoTraceId) {
  const std::string path =
      test::WriteTempFimi("service_qid.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 1});
  MineRequest request = Request(path, Algorithm::kLcm, 2);
  request.trace_id = "client-tag";
  auto first = service.Execute(request);
  auto second = service.Execute(request);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(first->query_id, 0u);
  EXPECT_GT(second->query_id, first->query_id);
  EXPECT_EQ(first->trace_id, "client-tag");
  EXPECT_EQ(second->trace_id, "client-tag");
}

TEST(MiningServiceTest, QueryIdTagsTheServiceSpanAndNestedKernelSpans) {
  const std::string path =
      test::WriteTempFimi("service_qid_spans.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 1});
  Tracer& tracer = Tracer::Default();
  tracer.CollectSpans();  // drain anything earlier tests left behind
  tracer.set_enabled(true);
  auto response = service.Execute(Request(path, Algorithm::kLcm, 2));
  tracer.set_enabled(false);
  ASSERT_TRUE(response.ok()) << response.status();

  const auto query_id_arg =
      [](const TraceSpan& span) -> const uint64_t* {
    for (const auto& [key, value] : span.args) {
      if (key == "query_id") return &value;
    }
    return nullptr;
  };
  bool service_span_tagged = false;
  size_t nested_tagged = 0;
  for (const TraceSpan& span : tracer.CollectSpans()) {
    const uint64_t* id = query_id_arg(span);
    if (id == nullptr || *id != response->query_id) continue;
    if (span.name == "service.mine") {
      service_span_tagged = true;
    } else {
      ++nested_tagged;  // kernel phase spans inside the job
    }
  }
  // The one query_id threads from the response through the service
  // span down into the kernel's own spans.
  EXPECT_TRUE(service_span_tagged);
  EXPECT_GE(nested_tagged, 1u);
}

TEST(MiningServiceTest, StatsReportsRegistryCacheSchedulerAndWindows) {
  const std::string path =
      test::WriteTempFimi("service_stats.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{.num_threads = 1});
  ASSERT_TRUE(service.Execute(Request(path, Algorithm::kLcm, 2)).ok());
  ASSERT_TRUE(service.Execute(Request(path, Algorithm::kLcm, 2)).ok());

  // A job signals its waiter from inside the running job, so the
  // scheduler's completed/in-flight bookkeeping trails Execute() by a
  // moment — poll for the settled state.
  ServiceStats stats = service.Stats();
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((stats.scheduler.completed < 2 ||
          !stats.scheduler.in_flight.empty()) &&
         std::chrono::steady_clock::now() < settle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = service.Stats();
  }
  EXPECT_GE(stats.uptime_seconds, 0.0);
  ASSERT_EQ(stats.registry.datasets.size(), 1u);
  EXPECT_EQ(stats.registry.datasets[0].path, path);
  EXPECT_EQ(stats.registry.datasets[0].versions, 1u);
  EXPECT_GT(stats.registry.datasets[0].bytes, 0u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.scheduler.submitted, 2u);
  EXPECT_EQ(stats.scheduler.completed, 2u);
  EXPECT_EQ(stats.scheduler.queue_depth, 0u);
  EXPECT_TRUE(stats.scheduler.in_flight.empty());
  ASSERT_EQ(stats.windows.size(), 3u);
  EXPECT_EQ(stats.windows[0].window_seconds, 1u);
  EXPECT_EQ(stats.windows[1].window_seconds, 10u);
  EXPECT_EQ(stats.windows[2].window_seconds, 60u);
  // Both queries just ran, so the 60s window has seen them.
  EXPECT_EQ(stats.windows[2].count, 2u);
  EXPECT_GT(stats.windows[2].qps, 0.0);
}

TEST(MiningServiceTest, RejectedRequestsStillGetLoggedQueryIds) {
  std::ostringstream log_out;
  QueryLog log;
  log.SetStream(&log_out);
  MiningService::Options options;
  options.num_threads = 1;
  options.query_log = &log;
  MiningService service(options);

  MineRequest request = Request("/nonexistent/x.dat", Algorithm::kLcm, 2);
  EXPECT_FALSE(service.Execute(request).ok());
  EXPECT_EQ(log.lines_written(), 1u);
  const std::string line = log_out.str();
  EXPECT_NE(line.find("\"status\":\"rejected\""), std::string::npos);
  EXPECT_NE(line.find("\"query_id\":"), std::string::npos);
  EXPECT_EQ(line.find("\"query_id\":0"), std::string::npos);
}

TEST(MiningServiceTest, QueryLogRecordsCompletionsWithCacheOutcome) {
  const std::string path =
      test::WriteTempFimi("service_qlog.dat", test::SmallFimiText());
  std::ostringstream log_out;
  QueryLog log;
  log.SetStream(&log_out);
  MiningService::Options options;
  options.num_threads = 1;
  options.query_log = &log;
  MiningService service(options);

  MineRequest request = Request(path, Algorithm::kLcm, 2);
  request.trace_id = "t-1";
  auto miss = service.Execute(request);
  auto hit = service.Execute(request);
  ASSERT_TRUE(miss.ok() && hit.ok());
  ASSERT_EQ(log.lines_written(), 2u);

  std::istringstream lines(log_out.str());
  std::string miss_line, hit_line;
  ASSERT_TRUE(std::getline(lines, miss_line));
  ASSERT_TRUE(std::getline(lines, hit_line));
  EXPECT_NE(
      miss_line.find("\"query_id\":" + std::to_string(miss->query_id)),
      std::string::npos);
  EXPECT_NE(miss_line.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(miss_line.find("\"mine_ms\":"), std::string::npos);
  EXPECT_NE(miss_line.find("\"trace_id\":\"t-1\""), std::string::npos);
  EXPECT_NE(miss_line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(miss_line.find("\"peak_bytes\":"), std::string::npos);
  EXPECT_NE(
      hit_line.find("\"query_id\":" + std::to_string(hit->query_id)),
      std::string::npos);
  EXPECT_NE(hit_line.find("\"cache\":\"hit\""), std::string::npos);
}

}  // namespace
}  // namespace fpm
