// StuckJobWatchdog tests: deterministic Sweep()-driven flagging, the
// monitor thread, and the end-to-end path — a service job artificially
// stalled inside the kernel hook is flagged into the query log while
// still running, then completes normally.

#include "fpm/service/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>

#include "fpm/obs/query_log.h"
#include "fpm/service/service.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

void SpinFor(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(WatchdogTest, FlagsJobsPastTheAbsoluteBoundOnce) {
  std::ostringstream log_out;
  QueryLog log;
  log.SetStream(&log_out);
  WatchdogOptions options;
  options.absolute_seconds = 0.005;
  options.interval_seconds = 0.0;  // no monitor thread: Sweep() driven
  options.query_log = &log;
  StuckJobWatchdog watchdog(options);

  watchdog.Register(42, "frequent", /*deadline_seconds=*/0.0);
  EXPECT_EQ(watchdog.Sweep(), 0u);  // too young to flag
  SpinFor(0.01);
  EXPECT_EQ(watchdog.Sweep(), 1u);
  EXPECT_EQ(watchdog.Sweep(), 0u);  // flagged once, not per sweep

  const WatchdogStats stats = watchdog.stats();
  EXPECT_EQ(stats.sweeps, 3u);
  EXPECT_EQ(stats.flagged, 1u);
  EXPECT_EQ(stats.stuck_now, 1u);

  const std::string line = log_out.str();
  EXPECT_NE(line.find("\"event\":\"watchdog_stuck\""), std::string::npos);
  EXPECT_NE(line.find("\"query_id\":42"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"stuck\""), std::string::npos);
  EXPECT_NE(line.find("bound absolute"), std::string::npos);
  EXPECT_EQ(log.lines_written(), 1u);

  watchdog.Unregister(42);
  EXPECT_EQ(watchdog.stats().stuck_now, 0u);
  EXPECT_EQ(watchdog.stats().flagged, 1u);  // history survives
}

TEST(WatchdogTest, DeadlineFactorBoundOnlyAppliesToDeadlineJobs) {
  WatchdogOptions options;
  options.deadline_factor = 2.0;
  options.interval_seconds = 0.0;
  StuckJobWatchdog watchdog(options);

  watchdog.Register(1, "frequent", /*deadline_seconds=*/0.002);
  watchdog.Register(2, "closed", /*deadline_seconds=*/0.0);  // no deadline
  SpinFor(0.01);
  // Only the deadline-armed job trips the factor bound; with no
  // absolute bound the deadline-less job can run forever.
  EXPECT_EQ(watchdog.Sweep(), 1u);
  EXPECT_EQ(watchdog.stats().stuck_now, 1u);
  watchdog.Unregister(1);
  watchdog.Unregister(2);
}

TEST(WatchdogTest, MonitorThreadSweepsOnItsOwn) {
  WatchdogOptions options;
  options.absolute_seconds = 0.002;
  options.interval_seconds = 0.005;
  StuckJobWatchdog watchdog(options);
  watchdog.Start();
  watchdog.Register(7, "frequent", 0.0);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (watchdog.stats().flagged == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(watchdog.stats().flagged, 1u);
  EXPECT_GE(watchdog.stats().sweeps, 1u);
}

TEST(WatchdogTest, ServiceFlagsAnArtificiallyStalledJob) {
  const std::string path =
      test::WriteTempFimi("watchdog_stall.dat", test::SmallFimiText());
  std::ostringstream log_out;
  QueryLog log;
  log.SetStream(&log_out);

  MiningService::Options options;
  options.num_threads = 2;
  options.query_log = &log;
  options.watchdog_absolute_seconds = 0.005;
  options.watchdog_interval_seconds = 0.0;  // swept by hand below
  MiningService service(options);

  // The hook stalls the job inside RunJob — after the watchdog has it
  // registered, before the kernel runs — until the test releases it.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> entered;
  bool entered_once = false;
  service.set_mine_hook_for_test([&] {
    if (!entered_once) {
      entered_once = true;
      entered.set_value();
    }
    released.wait();
  });

  MineRequest request;
  request.dataset_path = path;
  request.query.min_support = 2;
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  entered.get_future().wait();

  // The job is wedged in the "kernel": old enough to trip the absolute
  // bound on the next sweep, and visible as in-flight in Stats().
  SpinFor(0.01);
  EXPECT_EQ(service.watchdog().Sweep(), 1u);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.watchdog.stuck_now, 1u);
  ASSERT_EQ(stats.scheduler.in_flight.size(), 1u);
  const uint64_t query_id = stats.scheduler.in_flight[0].query_id;
  EXPECT_NE(query_id, 0u);
  EXPECT_GT(stats.scheduler.in_flight[0].age_seconds, 0.0);
  EXPECT_NE(log_out.str().find("\"event\":\"watchdog_stuck\""),
            std::string::npos);
  EXPECT_NE(log_out.str().find("\"query_id\":" + std::to_string(query_id)),
            std::string::npos);

  // Un-wedge: the job completes normally and leaves the stuck gauge.
  release.set_value();
  auto response = submitted.value()->Take();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->query_id, query_id);
  EXPECT_EQ(service.watchdog().stats().stuck_now, 0u);
  EXPECT_EQ(service.Stats().scheduler.in_flight.size(), 0u);

  // The completion line for the stalled query landed in the same log.
  EXPECT_NE(log_out.str().find("\"status\":\"ok\""), std::string::npos);
  service.set_mine_hook_for_test(nullptr);
}

}  // namespace
}  // namespace fpm
