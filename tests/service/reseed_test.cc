// Version-aware cache reseeding: a FREQUENT listing cached for a parent
// dataset version seeds a child-version query — candidates recounted
// over the delta only — and the answer must equal a cold mine of the
// child window, canonicalized.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/service/service.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

MineRequest FrequentRequest(Support min_support) {
  MineRequest request;
  request.algorithm = Algorithm::kLcm;
  request.query = MiningQuery::Frequent(min_support);
  return request;
}

/// Cold oracle: a direct kernel run over `db`, canonicalized.
std::vector<CollectingSink::Entry> ColdFrequent(const Database& db,
                                                Support min_support) {
  LcmMiner miner;
  CollectingSink sink;
  EXPECT_TRUE(miner.Mine(db, min_support, &sink).ok());
  sink.Canonicalize();
  return sink.results();
}

std::vector<CollectingSink::Entry> Canonical(
    std::vector<CollectingSink::Entry> entries) {
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(ReseedTest, AppendedVersionReseedsFromParentListing) {
  const std::string path =
      test::WriteTempFimi("reseed_append.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{});

  // Warm the parent: FREQUENT at S=2 mined cold and cached.
  MineRequest parent = FrequentRequest(2);
  parent.dataset_path = path;
  auto cold = service.Execute(parent);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->cache, CacheOutcome::kMiss);

  // Stream one transaction; appended_weight = 1 < S = 3, and the parent
  // listing at 2 <= 3 - 1 is a complete candidate border.
  auto handle = service.registry().Open(path);
  ASSERT_TRUE(handle.ok());
  auto v2 = service.registry().Append(handle->id, {{1, 2, 3}});
  ASSERT_TRUE(v2.ok()) << v2.status();

  MineRequest child = FrequentRequest(3);
  child.dataset_id = handle->id;
  auto reseeded = service.Execute(child);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status();
  EXPECT_EQ(reseeded->cache, CacheOutcome::kReseeded);
  EXPECT_EQ(reseeded->dataset_digest, v2->digest);

  // Byte-equal to a cold mine of the child window (reseeded listings
  // are canonical by contract).
  EXPECT_EQ(reseeded->itemsets, ColdFrequent(*v2->database, 3));
  EXPECT_EQ(reseeded->num_frequent, reseeded->itemsets.size());
}

TEST(ReseedTest, ExpiredVersionReseedsWithRecountedSupports) {
  const std::string path =
      test::WriteTempFimi("reseed_expire.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{});

  MineRequest parent = FrequentRequest(2);
  parent.dataset_path = path;
  ASSERT_TRUE(service.Execute(parent).ok());

  auto handle = service.registry().Open(path);
  ASSERT_TRUE(handle.ok());
  auto v2 = service.registry().Expire(handle->id, 1);
  ASSERT_TRUE(v2.ok()) << v2.status();

  // appended_weight = 0: any S > 0 qualifies, supports only shrink.
  MineRequest child = FrequentRequest(2);
  child.dataset_id = handle->id;
  auto reseeded = service.Execute(child);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status();
  EXPECT_EQ(reseeded->cache, CacheOutcome::kReseeded);
  EXPECT_EQ(reseeded->itemsets, ColdFrequent(*v2->database, 2));
}

TEST(ReseedTest, DerivedTaskRidesTheReseededListing) {
  const std::string path =
      test::WriteTempFimi("reseed_closed.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{});

  MineRequest parent = FrequentRequest(2);
  parent.dataset_path = path;
  ASSERT_TRUE(service.Execute(parent).ok());

  auto handle = service.registry().Open(path);
  ASSERT_TRUE(handle.ok());
  auto v2 = service.registry().Append(handle->id, {{2, 3}});
  ASSERT_TRUE(v2.ok());

  // A CLOSED query on the child finds no cached entry, reseeds the
  // FREQUENT border, and derives closedness from it.
  MineRequest child;
  child.algorithm = Algorithm::kLcm;
  child.query = MiningQuery::Closed(3);
  child.dataset_id = handle->id;
  auto response = service.Execute(child);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->cache, CacheOutcome::kReseeded);

  // Oracle: cold closed mine over the child window, canonicalized.
  LcmMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(*v2->database, MiningQuery::Closed(3), &sink).ok());
  EXPECT_EQ(Canonical(response->itemsets), Canonical(sink.results()));
}

TEST(ReseedTest, InsufficientMarginMinesCold) {
  const std::string path =
      test::WriteTempFimi("reseed_margin.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{});

  MineRequest parent = FrequentRequest(2);
  parent.dataset_path = path;
  ASSERT_TRUE(service.Execute(parent).ok());

  auto handle = service.registry().Open(path);
  ASSERT_TRUE(handle.ok());
  auto v2 = service.registry().Append(handle->id, {{1, 2}, {1, 3}});
  ASSERT_TRUE(v2.ok());

  // S = 2 <= appended_weight = 2: brand-new items could reach S, so the
  // parent border is not provably complete — must mine cold.
  MineRequest child = FrequentRequest(2);
  child.dataset_id = handle->id;
  auto response = service.Execute(child);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->cache, CacheOutcome::kMiss);
  EXPECT_EQ(Canonical(response->itemsets), ColdFrequent(*v2->database, 2));
}

TEST(ReseedTest, VersionPinnedQueriesKeepTheirOwnCacheEntries) {
  const std::string path =
      test::WriteTempFimi("reseed_pin.dat", test::SmallFimiText());
  MiningService service(MiningService::Options{});

  auto handle = service.registry().Open(path);
  ASSERT_TRUE(handle.ok());
  auto v2 = service.registry().Append(handle->id, {{1, 2, 3}});
  ASSERT_TRUE(v2.ok());

  // Pin version 1 explicitly: digest (and cache key) is the parent's.
  MineRequest pinned = FrequentRequest(2);
  pinned.dataset_id = handle->id;
  pinned.dataset_version = 1;
  auto r1 = service.Execute(pinned);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->cache, CacheOutcome::kMiss);
  EXPECT_EQ(r1->dataset_digest, handle->digest);

  // Replaying the pinned query is an exact hit on the parent entry.
  auto r2 = service.Execute(pinned);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->cache, CacheOutcome::kExact);
  EXPECT_EQ(r2->itemsets, r1->itemsets);

  // And the pinned parent listing doubles as the reseed source.
  MineRequest latest = FrequentRequest(3);
  latest.dataset_id = handle->id;
  auto r3 = service.Execute(latest);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->cache, CacheOutcome::kReseeded);
}

}  // namespace
}  // namespace fpm
