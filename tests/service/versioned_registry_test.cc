// DatasetHandle / version-chain behavior of the registry: open/resolve
// round-trips, append/expire/window mutations, eviction rules for
// mutated chains, and reader isolation under concurrent churn.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fpm/service/dataset_registry.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

TEST(VersionedRegistryTest, OpenResolveRoundtrip) {
  const std::string path =
      test::WriteTempFimi("vreg_roundtrip.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto opened = registry.Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->version, 1u);
  EXPECT_EQ(opened->latest_version, 1u);
  EXPECT_TRUE(opened->parent_digest.empty());
  ASSERT_FALSE(opened->id.empty());

  auto resolved = registry.Resolve(opened->id);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->database.get(), opened->database.get());
  EXPECT_EQ(resolved->digest, opened->digest);

  // Reopening the same path returns the same id (one chain per path).
  auto reopened = registry.Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->id, opened->id);
}

TEST(VersionedRegistryTest, ResolveErrors) {
  const std::string path =
      test::WriteTempFimi("vreg_errors.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto opened = registry.Open(path);
  ASSERT_TRUE(opened.ok());

  auto unknown = registry.Resolve("ds-999");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown dataset id"),
            std::string::npos);

  auto bad_version = registry.Resolve(opened->id, 7);
  EXPECT_FALSE(bad_version.ok());
  EXPECT_NE(bad_version.status().message().find("has no version 7"),
            std::string::npos);
}

TEST(VersionedRegistryTest, AppendCreatesResolvableVersions) {
  const std::string path =
      test::WriteTempFimi("vreg_append.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto v1 = registry.Open(path);
  ASSERT_TRUE(v1.ok());

  auto v2 = registry.Append(v1->id, {{7, 8}, {8, 9}});
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->parent_digest, v1->digest);
  ASSERT_NE(v2->delta, nullptr);
  EXPECT_EQ(v2->delta->appended_weight, 2u);
  EXPECT_EQ(v2->database->num_transactions(), 7u);

  // Explicit version pins resolve to their own immutable snapshots.
  auto pin1 = registry.Resolve(v1->id, 1);
  auto pin2 = registry.Resolve(v1->id, 2);
  ASSERT_TRUE(pin1.ok() && pin2.ok());
  EXPECT_EQ(pin1->database->num_transactions(), 5u);
  EXPECT_EQ(pin2->database->num_transactions(), 7u);
  // Resolve with no version follows the chain head.
  auto latest = registry.Resolve(v1->id);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 2u);

  EXPECT_EQ(registry.stats().appends, 1u);
}

TEST(VersionedRegistryTest, ExpireAndInfo) {
  const std::string path =
      test::WriteTempFimi("vreg_expire.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto v1 = registry.Open(path);
  ASSERT_TRUE(v1.ok());
  auto v2 = registry.Expire(v1->id, 2);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v2->database->num_transactions(), 3u);

  auto info = registry.Info(v1->id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->id, v1->id);
  EXPECT_EQ(info->path, path);
  EXPECT_EQ(info->live_transactions, 3u);
  ASSERT_EQ(info->versions.size(), 2u);
  EXPECT_EQ(info->versions[0].number, 1u);
  EXPECT_EQ(info->versions[1].number, 2u);
  EXPECT_EQ(info->versions[1].expired_weight, 2u);
  EXPECT_EQ(info->versions[1].digest, v2->digest);
}

TEST(VersionedRegistryTest, WindowPolicyExpiresOnInstallAndAppend) {
  const std::string path =
      test::WriteTempFimi("vreg_window.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto v1 = registry.Open(path);
  ASSERT_TRUE(v1.ok());

  WindowPolicy policy;
  policy.last_n = 3;
  auto windowed = registry.SetWindow(v1->id, policy);
  ASSERT_TRUE(windowed.ok()) << windowed.status();
  EXPECT_EQ(windowed->version, 2u);  // 5 > 3: immediate expiry version
  EXPECT_EQ(windowed->database->num_transactions(), 3u);

  auto appended = registry.Append(v1->id, {{1, 2}, {2, 3}});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->database->num_transactions(), 3u);  // window held
  ASSERT_NE(appended->delta, nullptr);
  EXPECT_EQ(appended->delta->appended_weight, 2u);
  EXPECT_EQ(appended->delta->expired_weight, 2u);

  auto info = registry.Info(v1->id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->window.last_n, 3u);
}

TEST(VersionedRegistryTest, MutatedChainsAreNeverEvicted) {
  // Budget of one dataset: opening a second evicts the first — unless
  // the first has chain state that exists nowhere on disk.
  const std::string a =
      test::WriteTempFimi("vreg_evict_a.dat", test::SmallFimiText());
  const std::string b =
      test::WriteTempFimi("vreg_evict_b.dat", test::DenseFimiText(50, 20, 8));

  {
    DatasetRegistry registry(/*budget_bytes=*/1);
    auto ha = registry.Open(a);
    ASSERT_TRUE(ha.ok());
    const std::string id_a = ha->id;
    ha = Status::Internal("drop handle");  // unpin
    auto hb = registry.Open(b);
    ASSERT_TRUE(hb.ok());
    hb = Status::Internal("drop handle");
    // Pristine LRU entry: evicted, id retired.
    EXPECT_FALSE(registry.Resolve(id_a).ok());
    EXPECT_GE(registry.stats().evictions, 1u);
  }
  {
    DatasetRegistry registry(/*budget_bytes=*/1);
    auto ha = registry.Open(a);
    ASSERT_TRUE(ha.ok());
    const std::string id_a = ha->id;
    ASSERT_TRUE(registry.Append(id_a, {{1, 2}}).ok());
    ha = Status::Internal("drop handle");
    auto hb = registry.Open(b);
    ASSERT_TRUE(hb.ok());
    hb = Status::Internal("drop handle");
    // Mutated chain survives the same pressure.
    auto resolved = registry.Resolve(id_a);
    ASSERT_TRUE(resolved.ok()) << resolved.status();
    EXPECT_EQ(resolved->version, 2u);
  }
}

TEST(VersionedRegistryTest, ConcurrentAppendsAndReadersStaySane) {
  const std::string path =
      test::WriteTempFimi("vreg_churn.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto base = registry.Open(path);
  ASSERT_TRUE(base.ok());
  const std::string id = base->id;
  constexpr uint64_t kAppends = 40;
  constexpr int kReaders = 4;

  std::atomic<uint64_t> published{1};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (uint64_t i = 0; i < kAppends; ++i) {
      auto h = registry.Append(
          id, {{static_cast<Item>(i % 7), static_cast<Item>(i % 5 + 7)}});
      if (!h.ok() || h->version != i + 2) {
        ++failures;
        return;
      }
      published.store(h->version, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t sum = 0;
      for (int iter = 0; iter < 200; ++iter) {
        const uint64_t upper = published.load(std::memory_order_acquire);
        const uint64_t version = 1 + (static_cast<uint64_t>(r) + iter) % upper;
        auto h = registry.Resolve(id, version);
        if (!h.ok()) {
          ++failures;
          return;
        }
        // Version v holds the 5 base transactions plus v-1 appends;
        // immutable snapshots must never show torn sizes.
        if (h->database->num_transactions() != 5 + (version - 1)) {
          ++failures;
          return;
        }
        sum += h->database->total_weight();
      }
      // Keep the loop's reads observable.
      if (sum == 0) ++failures;
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto latest = registry.Resolve(id);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, kAppends + 1);
}

}  // namespace
}  // namespace fpm
