#include "fpm/service/dataset_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/packed.h"
#include "service/service_test_util.h"

namespace fpm {
namespace {

TEST(ContentDigestTest, KnownFnv1aVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(ContentDigest(""), "cbf29ce484222325");
  EXPECT_EQ(ContentDigest("a"), "af63dc4c8601ec8c");
  EXPECT_NE(ContentDigest("1 2\n"), ContentDigest("1 2"));
}

TEST(DatasetRegistryTest, LoadsOnceAndShares) {
  const std::string path =
      test::WriteTempFimi("registry_share.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto first = registry.Get(path);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = registry.Get(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->database.get(), second->database.get());
  EXPECT_EQ(first->digest, second->digest);
  EXPECT_EQ(first->database->num_transactions(), 5u);
  const DatasetRegistryStats stats = registry.stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_entries, 1u);
}

TEST(DatasetRegistryTest, SameBytesSameDigestAcrossPaths) {
  const std::string a =
      test::WriteTempFimi("registry_dup_a.dat", test::SmallFimiText());
  const std::string b =
      test::WriteTempFimi("registry_dup_b.dat", test::SmallFimiText());
  DatasetRegistry registry;
  auto ha = registry.Get(a);
  auto hb = registry.Get(b);
  ASSERT_TRUE(ha.ok() && hb.ok());
  // Distinct entries (keyed by path) but one digest: the result cache
  // treats them as the same dataset.
  EXPECT_NE(ha->database.get(), hb->database.get());
  EXPECT_EQ(ha->digest, hb->digest);
}

TEST(DatasetRegistryTest, MissingFileFailsAndLaterRetrySucceeds) {
  const std::string path = testing::TempDir() + "/registry_late.dat";
  std::remove(path.c_str());
  DatasetRegistry registry;
  EXPECT_FALSE(registry.Get(path).ok());
  // Failures are not cached: once the file exists, Get() succeeds.
  test::WriteTempFimi("registry_late.dat", test::SmallFimiText());
  auto handle = registry.Get(path);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(handle->database->num_transactions(), 5u);
  std::remove(path.c_str());
}

TEST(DatasetRegistryTest, ConcurrentGetsLoadExactlyOnce) {
  const std::string path =
      test::WriteTempFimi("registry_race.dat", test::SmallFimiText());
  DatasetRegistry registry;
  constexpr int kThreads = 8;
  std::vector<DatasetHandle> handles(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        auto h = registry.Get(path);
        if (h.ok()) {
          handles[static_cast<size_t>(i)] = std::move(h).value();
        } else {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_EQ(failures.load(), 0);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(handles[static_cast<size_t>(i)].database.get(),
              handles[0].database.get());
  }
  EXPECT_EQ(registry.stats().loads, 1u);
  EXPECT_EQ(registry.stats().hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(DatasetRegistryTest, PinnedEntriesSurviveTheBudget) {
  const std::string a =
      test::WriteTempFimi("registry_pin_a.dat", test::SmallFimiText());
  const std::string b =
      test::WriteTempFimi("registry_pin_b.dat", "7 8\n7 9\n");
  const std::string c =
      test::WriteTempFimi("registry_pin_c.dat", "5 6\n5\n");
  // A 1-byte budget puts the registry permanently over budget, so every
  // unpinned entry is evictable the moment a new load lands.
  DatasetRegistry registry(/*budget_bytes=*/1);

  auto ha = registry.Get(a);
  ASSERT_TRUE(ha.ok());
  // While `ha` pins A, loading B must not evict it.
  auto hb = registry.Get(b);
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(registry.stats().resident_entries, 2u);

  const Database* a_db = ha->database.get();
  {
    auto again = registry.Get(a);  // still the same object — not reloaded
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->database.get(), a_db);
  }
  EXPECT_EQ(registry.stats().loads, 2u);

  // Release both pins; the next load may now evict A and B.
  ha.value() = DatasetHandle{};
  hb.value() = DatasetHandle{};
  auto hc = registry.Get(c);
  ASSERT_TRUE(hc.ok());
  EXPECT_GE(registry.stats().evictions, 2u);
  // A was evicted, so fetching it again is a fresh load.
  auto ha2 = registry.Get(a);
  ASSERT_TRUE(ha2.ok());
  EXPECT_EQ(registry.stats().loads, 4u);
}

TEST(DatasetRegistryTest, PackedOpenIsMappedAndSharesTheFimiDigest) {
  const std::string fimi =
      test::WriteTempFimi("registry_packed.dat", test::SmallFimiText());
  const std::string packed = testing::TempDir() + "/registry_packed.fpk";
  auto parsed = ReadFimiFile(fimi);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Pack with the digest of the raw FIMI bytes — what fpm_pack records.
  ASSERT_TRUE(
      WritePacked(parsed.value(), packed, ContentDigest(test::SmallFimiText()))
          .ok());

  DatasetRegistry registry;
  auto from_fimi = registry.Open(fimi);
  auto from_packed = registry.Open(packed);
  ASSERT_TRUE(from_fimi.ok()) << from_fimi.status();
  ASSERT_TRUE(from_packed.ok()) << from_packed.status();
  // Same digest either way: the ResultCache keys storage-agnostically.
  EXPECT_EQ(from_fimi->digest, from_packed->digest);
  EXPECT_EQ(from_packed->database->storage_kind(), StorageKind::kPacked);
  EXPECT_EQ(from_packed->database->num_transactions(), 5u);

  auto info = registry.Info(from_packed->id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->storage, "packed");
  auto fimi_info = registry.Info(from_fimi->id);
  ASSERT_TRUE(fimi_info.ok());
  EXPECT_EQ(fimi_info->storage, "memory");

  const DatasetRegistryStats stats = registry.stats();
  EXPECT_GT(stats.mapped_bytes, 0u);
  bool found = false;
  for (const auto& d : stats.datasets) {
    if (d.path != packed) continue;
    found = true;
    EXPECT_EQ(d.storage, "packed");
    EXPECT_GT(d.mapped_bytes, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(DatasetRegistryTest, MappedDatasetPinsBeyondTheByteBudget) {
  const std::string fimi =
      test::WriteTempFimi("registry_overbudget.dat", test::SmallFimiText());
  const std::string packed = testing::TempDir() + "/registry_overbudget.fpk";
  auto parsed = ReadFimiFile(fimi);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(WritePacked(parsed.value(), packed).ok());

  // The packed file is hundreds of bytes; the budget is one. A heap
  // entry this size would be evicted immediately — the mapped entry is
  // legal because only resident (malloc'd) bytes count.
  DatasetRegistry registry(/*budget_bytes=*/1);
  auto handle = registry.Open(packed);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_GT(handle->database->mapped_bytes(), registry.budget_bytes());

  const DatasetRegistryStats stats = registry.stats();
  EXPECT_EQ(stats.resident_entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, registry.budget_bytes());
  EXPECT_GT(stats.mapped_bytes, registry.budget_bytes());

  // Still resident on re-open — not reloaded, not evicted.
  auto again = registry.Open(packed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->database.get(), handle->database.get());
  EXPECT_EQ(registry.stats().loads, 1u);
}

TEST(DatasetRegistryTest, ConcurrentChurnUnderTinyBudget) {
  // Refcount-release stress: threads repeatedly pin one of three
  // datasets while the 1-byte budget forces eviction of every entry the
  // moment it is unpinned. The invariants: no load failures, handles
  // always see the right data, and pinned databases are never yanked.
  const std::string paths[3] = {
      test::WriteTempFimi("registry_churn_a.dat", "1 2\n1 2\n"),
      test::WriteTempFimi("registry_churn_b.dat", "3 4\n3 4\n3\n"),
      test::WriteTempFimi("registry_churn_c.dat", "5\n5\n5\n5\n"),
  };
  const size_t expected_rows[3] = {2, 3, 4};
  DatasetRegistry registry(/*budget_bytes=*/1);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 50; ++i) {
          const size_t which = static_cast<size_t>(t + i) % 3;
          auto h = registry.Get(paths[which]);
          if (!h.ok() ||
              h->database->num_transactions() != expected_rows[which]) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(registry.stats().evictions, 0u);
}

}  // namespace
}  // namespace fpm
