#include "fpm/service/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace fpm {
namespace {

ResultCacheKey Key(const std::string& digest, Support minsup,
                   Algorithm algorithm = Algorithm::kLcm) {
  ResultCacheKey key;
  key.digest = digest;
  key.algorithm = algorithm;
  key.pattern_bits = 0;
  key.min_support = minsup;
  return key;
}

std::shared_ptr<const CachedResult> MakeResult(
    std::vector<CollectingSink::Entry> itemsets) {
  auto result = std::make_shared<CachedResult>();
  result->num_results = itemsets.size();
  result->bytes = ResultCache::EstimateBytes(itemsets);
  result->itemsets = std::move(itemsets);
  return result;
}

TEST(SupportsDominanceReuseTest, OnlyOrderStableKernelsQualify) {
  EXPECT_TRUE(SupportsDominanceReuse(Algorithm::kLcm));
  EXPECT_TRUE(SupportsDominanceReuse(Algorithm::kEclat));
  // FP-Growth's single-path shortcut makes emission order depend on the
  // threshold; the reference miners were never audited for it.
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kFpGrowth));
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kApriori));
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kHMine));
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kBruteForce));
}

TEST(ResultCacheTest, ExactHitReturnsTheStoredResult) {
  ResultCache cache;
  auto stored = MakeResult({{{1}, 5}, {{2}, 4}, {{1, 2}, 3}});
  cache.Insert(Key("d", 3), stored);

  ResultCacheLookup hit = cache.Lookup(Key("d", 3));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.exact);
  EXPECT_FALSE(hit.dominated);
  EXPECT_EQ(hit.result.get(), stored.get());

  EXPECT_EQ(cache.Lookup(Key("other", 3)).result, nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, DominanceFilterPreservesOrder) {
  ResultCache cache;
  // Emission order deliberately not sorted by support: the filtered
  // answer must keep relative order, only dropping entries below the
  // queried threshold.
  cache.Insert(Key("d", 2),
               MakeResult({{{1}, 5}, {{1, 2}, 2}, {{2}, 4}, {{3}, 3}}));

  ResultCacheLookup hit = cache.Lookup(Key("d", 3));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_FALSE(hit.exact);
  EXPECT_TRUE(hit.dominated);
  const std::vector<CollectingSink::Entry> expected = {
      {{1}, 5}, {{2}, 4}, {{3}, 3}};
  EXPECT_EQ(hit.result->itemsets, expected);
  EXPECT_EQ(hit.result->num_results, 3u);
  EXPECT_EQ(cache.stats().dominated_hits, 1u);

  // The derived answer is memoized: the same query now hits exactly.
  ResultCacheLookup second = cache.Lookup(Key("d", 3));
  EXPECT_TRUE(second.exact);
  EXPECT_EQ(second.result->itemsets, expected);
}

TEST(ResultCacheTest, DominanceRequiresSameConfiguration) {
  ResultCache cache;
  cache.Insert(Key("d", 2, Algorithm::kLcm), MakeResult({{{1}, 5}}));
  // Different algorithm, different digest, or *lower* threshold than
  // the cached run: no dominance answer.
  EXPECT_EQ(cache.Lookup(Key("d", 3, Algorithm::kEclat)).result, nullptr);
  EXPECT_EQ(cache.Lookup(Key("e", 3, Algorithm::kLcm)).result, nullptr);
  EXPECT_EQ(cache.Lookup(Key("d", 1, Algorithm::kLcm)).result, nullptr);
}

TEST(ResultCacheTest, NonEligibleAlgorithmsGetExactHitsOnly) {
  ResultCache cache;
  cache.Insert(Key("d", 2, Algorithm::kFpGrowth), MakeResult({{{1}, 5}}));
  EXPECT_EQ(cache.Lookup(Key("d", 3, Algorithm::kFpGrowth)).result, nullptr);
  ResultCacheLookup exact = cache.Lookup(Key("d", 2, Algorithm::kFpGrowth));
  ASSERT_NE(exact.result, nullptr);
  EXPECT_TRUE(exact.exact);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  // Three equally sized entries; budget fits roughly two. Touch A so B
  // becomes the LRU victim when D arrives.
  auto a = MakeResult({{{1, 2, 3}, 5}});
  const size_t entry_bytes = a->bytes;
  ResultCache cache(/*budget_bytes=*/2 * entry_bytes + entry_bytes / 2);
  cache.Insert(Key("a", 2), a);
  cache.Insert(Key("b", 2), MakeResult({{{4, 5, 6}, 5}}));
  EXPECT_EQ(cache.stats().resident_entries, 2u);

  ASSERT_TRUE(cache.Lookup(Key("a", 2)).exact);  // refresh A
  cache.Insert(Key("d", 2), MakeResult({{{7, 8, 9}, 5}}));

  EXPECT_TRUE(cache.Lookup(Key("a", 2)).exact);
  EXPECT_TRUE(cache.Lookup(Key("d", 2)).exact);
  EXPECT_EQ(cache.Lookup(Key("b", 2)).result, nullptr);  // evicted
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, KeepsAtLeastOneEntryUnderTinyBudget) {
  ResultCache cache(/*budget_bytes=*/1);
  cache.Insert(Key("a", 2), MakeResult({{{1}, 3}}));
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_TRUE(cache.Lookup(Key("a", 2)).exact);
  cache.Insert(Key("b", 2), MakeResult({{{2}, 3}}));
  // The newcomer displaced the old entry but itself stays resident.
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_TRUE(cache.Lookup(Key("b", 2)).exact);
}

TEST(ResultCacheTest, BytesTrackInsertionsAndEvictions) {
  auto a = MakeResult({{{1, 2}, 4}});
  auto b = MakeResult({{{3, 4}, 4}});
  ResultCache cache;
  cache.Insert(Key("a", 2), a);
  cache.Insert(Key("b", 2), b);
  EXPECT_EQ(cache.stats().resident_bytes, a->bytes + b->bytes);
  EXPECT_EQ(cache.stats().insertions, 2u);
}

// ---- cross-task dominance ------------------------------------------------

ResultCacheKey TaskKey(const std::string& digest, const MiningQuery& query,
                       Algorithm algorithm = Algorithm::kLcm) {
  return ResultCacheKey::ForQuery(digest, algorithm, /*pattern_bits=*/0,
                                  query);
}

/// The shared fixture listing: a frequent run at threshold 2. {2} has a
/// superset of equal support ({1,2}), so it is frequent but not closed.
std::shared_ptr<const CachedResult> FrequentFixture() {
  return MakeResult({{{1}, 5}, {{1, 2}, 4}, {{2}, 4}, {{3}, 2}});
}

TEST(ResultCacheCrossTaskTest, ClosedDerivesFromCachedFrequent) {
  ResultCache cache;
  cache.Insert(Key("d", 2), FrequentFixture());

  ResultCacheLookup hit =
      cache.Lookup(TaskKey("d", MiningQuery::Closed(3)));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.cross_task);
  EXPECT_FALSE(hit.exact);
  const std::vector<CollectingSink::Entry> expected = {{{1}, 5},
                                                       {{1, 2}, 4}};
  EXPECT_EQ(hit.result->itemsets, expected);
  EXPECT_EQ(cache.stats().cross_task_hits, 1u);

  // Memoized under the closed key: asking again is an exact hit.
  ResultCacheLookup again =
      cache.Lookup(TaskKey("d", MiningQuery::Closed(3)));
  EXPECT_TRUE(again.exact);
  EXPECT_EQ(again.result->itemsets, expected);
}

TEST(ResultCacheCrossTaskTest, MaximalDerivesFromCachedFrequent) {
  ResultCache cache;
  cache.Insert(Key("d", 2), FrequentFixture());
  ResultCacheLookup hit =
      cache.Lookup(TaskKey("d", MiningQuery::Maximal(3)));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.cross_task);
  const std::vector<CollectingSink::Entry> expected = {{{1, 2}, 4}};
  EXPECT_EQ(hit.result->itemsets, expected);
}

TEST(ResultCacheCrossTaskTest, MaximalNeverDerivesFromMaximal) {
  ResultCache cache;
  // A maximal listing at threshold 2 — itemsets maximal there need not
  // be maximal at 3, so the cache must not filter it.
  cache.Insert(TaskKey("d", MiningQuery::Maximal(2)),
               MakeResult({{{1, 2}, 4}, {{3}, 2}}));
  EXPECT_EQ(cache.Lookup(TaskKey("d", MiningQuery::Maximal(3))).result,
            nullptr);
}

TEST(ResultCacheCrossTaskTest, TopKDerivesFromFrequentAtOrBelowFloor) {
  ResultCache cache;
  cache.Insert(Key("d", 2), FrequentFixture());
  ResultCacheLookup hit =
      cache.Lookup(TaskKey("d", MiningQuery::TopK(2, /*floor=*/2)));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.cross_task);
  // Rank order: support descending, itemset ascending on ties —
  // {1,2} precedes {2} at support 4.
  const std::vector<CollectingSink::Entry> expected = {{{1}, 5},
                                                       {{1, 2}, 4}};
  EXPECT_EQ(hit.result->itemsets, expected);
}

TEST(ResultCacheCrossTaskTest, TopKAboveFloorNeedsKCachedEntries) {
  ResultCache cache;
  // Cached above the queried floor: valid only because the listing
  // already holds >= k entries (anything it misses supports < 3).
  cache.Insert(Key("d", 3), MakeResult({{{1}, 5}, {{1, 2}, 4}, {{2}, 4}}));
  ResultCacheLookup hit =
      cache.Lookup(TaskKey("d", MiningQuery::TopK(2, /*floor=*/1)));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.cross_task);
  const std::vector<CollectingSink::Entry> expected = {{{1}, 5},
                                                       {{1, 2}, 4}};
  EXPECT_EQ(hit.result->itemsets, expected);

  // k larger than the cached listing: the tail below the cached
  // threshold is unknown, so the cache must decline.
  EXPECT_EQ(cache.Lookup(TaskKey("d", MiningQuery::TopK(4, /*floor=*/1)))
                .result,
            nullptr);
}

TEST(ResultCacheCrossTaskTest, RulesFilterByDominanceWithinRules) {
  ResultCache cache;
  auto stored = std::make_shared<CachedResult>();
  AssociationRule strong;
  strong.antecedent = {1};
  strong.consequent = {2};
  strong.itemset_support = 5;
  AssociationRule weak;
  weak.antecedent = {2};
  weak.consequent = {3};
  weak.itemset_support = 3;
  stored->rules = {strong, weak};
  stored->num_results = 2;
  stored->bytes = ResultCache::EstimateResultBytes(*stored);
  cache.Insert(TaskKey("d", MiningQuery::Rules(2, 0.5)), stored);

  ResultCacheLookup hit =
      cache.Lookup(TaskKey("d", MiningQuery::Rules(4, 0.5)));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.dominated);
  ASSERT_EQ(hit.result->rules.size(), 1u);
  EXPECT_EQ(hit.result->rules[0].itemset_support, 5u);

  // A different confidence is a different configuration — no reuse
  // within rules (it would change which rules exist).
  EXPECT_EQ(cache.Lookup(TaskKey("d", MiningQuery::Rules(4, 0.9))).result,
            nullptr);
}

TEST(ResultCacheCrossTaskTest, RulesDeriveFromCachedClosedListing) {
  ResultCache cache;
  auto closed = std::make_shared<CachedResult>();
  closed->itemsets = {{{1}, 4}, {{1, 2}, 2}, {{2}, 3}};
  closed->num_results = 3;
  closed->total_weight = 6;  // rule derivation needs the base weight
  closed->bytes = ResultCache::EstimateResultBytes(*closed);
  cache.Insert(TaskKey("d", MiningQuery::Closed(2)), closed);

  ResultCacheLookup hit =
      cache.Lookup(TaskKey("d", MiningQuery::Rules(2, 0.5)));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.cross_task);
  // {1,2} yields 1=>2 (conf 0.5) and 2=>1 (conf 2/3); both lift 1.
  ASSERT_EQ(hit.result->rules.size(), 2u);
  EXPECT_EQ(hit.result->rules[0].antecedent, Itemset{2});
  EXPECT_EQ(hit.result->rules[1].antecedent, Itemset{1});
}

TEST(ResultCacheCrossTaskTest, CrossTaskIgnoresTheFrequentOrderGate) {
  // FP-Growth frequent results cannot answer FREQUENT dominance queries
  // (emission order shifts with the threshold) but CAN answer CLOSED:
  // the derived listing is canonicalized, so order does not matter.
  ResultCache cache;
  cache.Insert(Key("d", 2, Algorithm::kFpGrowth), FrequentFixture());
  ResultCacheLookup hit = cache.Lookup(
      TaskKey("d", MiningQuery::Closed(3), Algorithm::kFpGrowth));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.cross_task);
}

TEST(ResultCacheKeyTest, ForQueryZeroesIrrelevantParameters) {
  MiningQuery frequent = MiningQuery::Frequent(3);
  frequent.k = 99;              // noise a caller might leave behind
  frequent.min_confidence = 0.9;
  const ResultCacheKey key = TaskKey("d", frequent);
  EXPECT_EQ(key.k, 0u);
  EXPECT_EQ(key.min_confidence, 0.0);
  EXPECT_EQ(key.max_consequent, 0u);

  MiningQuery topk = MiningQuery::TopK(7, 2);
  topk.min_confidence = 0.9;
  const ResultCacheKey tk = TaskKey("d", topk);
  EXPECT_EQ(tk.k, 7u);
  EXPECT_EQ(tk.min_confidence, 0.0);
}

}  // namespace
}  // namespace fpm
