#include "fpm/service/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace fpm {
namespace {

ResultCacheKey Key(const std::string& digest, Support minsup,
                   Algorithm algorithm = Algorithm::kLcm) {
  ResultCacheKey key;
  key.digest = digest;
  key.algorithm = algorithm;
  key.pattern_bits = 0;
  key.min_support = minsup;
  return key;
}

std::shared_ptr<const CachedResult> MakeResult(
    std::vector<CollectingSink::Entry> itemsets) {
  auto result = std::make_shared<CachedResult>();
  result->num_frequent = itemsets.size();
  result->bytes = ResultCache::EstimateBytes(itemsets);
  result->itemsets = std::move(itemsets);
  return result;
}

TEST(SupportsDominanceReuseTest, OnlyOrderStableKernelsQualify) {
  EXPECT_TRUE(SupportsDominanceReuse(Algorithm::kLcm));
  EXPECT_TRUE(SupportsDominanceReuse(Algorithm::kEclat));
  // FP-Growth's single-path shortcut makes emission order depend on the
  // threshold; the reference miners were never audited for it.
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kFpGrowth));
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kApriori));
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kHMine));
  EXPECT_FALSE(SupportsDominanceReuse(Algorithm::kBruteForce));
}

TEST(ResultCacheTest, ExactHitReturnsTheStoredResult) {
  ResultCache cache;
  auto stored = MakeResult({{{1}, 5}, {{2}, 4}, {{1, 2}, 3}});
  cache.Insert(Key("d", 3), stored);

  ResultCacheLookup hit = cache.Lookup(Key("d", 3));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_TRUE(hit.exact);
  EXPECT_FALSE(hit.dominated);
  EXPECT_EQ(hit.result.get(), stored.get());

  EXPECT_EQ(cache.Lookup(Key("other", 3)).result, nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, DominanceFilterPreservesOrder) {
  ResultCache cache;
  // Emission order deliberately not sorted by support: the filtered
  // answer must keep relative order, only dropping entries below the
  // queried threshold.
  cache.Insert(Key("d", 2),
               MakeResult({{{1}, 5}, {{1, 2}, 2}, {{2}, 4}, {{3}, 3}}));

  ResultCacheLookup hit = cache.Lookup(Key("d", 3));
  ASSERT_NE(hit.result, nullptr);
  EXPECT_FALSE(hit.exact);
  EXPECT_TRUE(hit.dominated);
  const std::vector<CollectingSink::Entry> expected = {
      {{1}, 5}, {{2}, 4}, {{3}, 3}};
  EXPECT_EQ(hit.result->itemsets, expected);
  EXPECT_EQ(hit.result->num_frequent, 3u);
  EXPECT_EQ(cache.stats().dominated_hits, 1u);

  // The derived answer is memoized: the same query now hits exactly.
  ResultCacheLookup second = cache.Lookup(Key("d", 3));
  EXPECT_TRUE(second.exact);
  EXPECT_EQ(second.result->itemsets, expected);
}

TEST(ResultCacheTest, DominanceRequiresSameConfiguration) {
  ResultCache cache;
  cache.Insert(Key("d", 2, Algorithm::kLcm), MakeResult({{{1}, 5}}));
  // Different algorithm, different digest, or *lower* threshold than
  // the cached run: no dominance answer.
  EXPECT_EQ(cache.Lookup(Key("d", 3, Algorithm::kEclat)).result, nullptr);
  EXPECT_EQ(cache.Lookup(Key("e", 3, Algorithm::kLcm)).result, nullptr);
  EXPECT_EQ(cache.Lookup(Key("d", 1, Algorithm::kLcm)).result, nullptr);
}

TEST(ResultCacheTest, NonEligibleAlgorithmsGetExactHitsOnly) {
  ResultCache cache;
  cache.Insert(Key("d", 2, Algorithm::kFpGrowth), MakeResult({{{1}, 5}}));
  EXPECT_EQ(cache.Lookup(Key("d", 3, Algorithm::kFpGrowth)).result, nullptr);
  ResultCacheLookup exact = cache.Lookup(Key("d", 2, Algorithm::kFpGrowth));
  ASSERT_NE(exact.result, nullptr);
  EXPECT_TRUE(exact.exact);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  // Three equally sized entries; budget fits roughly two. Touch A so B
  // becomes the LRU victim when D arrives.
  auto a = MakeResult({{{1, 2, 3}, 5}});
  const size_t entry_bytes = a->bytes;
  ResultCache cache(/*budget_bytes=*/2 * entry_bytes + entry_bytes / 2);
  cache.Insert(Key("a", 2), a);
  cache.Insert(Key("b", 2), MakeResult({{{4, 5, 6}, 5}}));
  EXPECT_EQ(cache.stats().resident_entries, 2u);

  ASSERT_TRUE(cache.Lookup(Key("a", 2)).exact);  // refresh A
  cache.Insert(Key("d", 2), MakeResult({{{7, 8, 9}, 5}}));

  EXPECT_TRUE(cache.Lookup(Key("a", 2)).exact);
  EXPECT_TRUE(cache.Lookup(Key("d", 2)).exact);
  EXPECT_EQ(cache.Lookup(Key("b", 2)).result, nullptr);  // evicted
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, KeepsAtLeastOneEntryUnderTinyBudget) {
  ResultCache cache(/*budget_bytes=*/1);
  cache.Insert(Key("a", 2), MakeResult({{{1}, 3}}));
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_TRUE(cache.Lookup(Key("a", 2)).exact);
  cache.Insert(Key("b", 2), MakeResult({{{2}, 3}}));
  // The newcomer displaced the old entry but itself stays resident.
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_TRUE(cache.Lookup(Key("b", 2)).exact);
}

TEST(ResultCacheTest, BytesTrackInsertionsAndEvictions) {
  auto a = MakeResult({{{1, 2}, 4}});
  auto b = MakeResult({{{3, 4}, 4}});
  ResultCache cache;
  cache.Insert(Key("a", 2), a);
  cache.Insert(Key("b", 2), b);
  EXPECT_EQ(cache.stats().resident_bytes, a->bytes + b->bytes);
  EXPECT_EQ(cache.stats().insertions, 2u);
}

}  // namespace
}  // namespace fpm
