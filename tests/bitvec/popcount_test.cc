#include "fpm/bitvec/popcount.h"

#include <gtest/gtest.h>

#include <vector>

#include "fpm/common/bits.h"
#include "fpm/common/rng.h"

namespace fpm {
namespace {

// Every concrete strategy must agree with the trivially correct scalar
// builtin across random word arrays of awkward lengths (0..67 covers
// every SIMD tail case).
class PopcountStrategyTest
    : public ::testing::TestWithParam<PopcountStrategy> {};

TEST_P(PopcountStrategyTest, CountOnesMatchesReference) {
  const PopcountStrategy strategy = GetParam();
  if (!PopcountStrategyAvailable(strategy)) {
    GTEST_SKIP() << "strategy unavailable on this host";
  }
  Rng rng(42);
  for (size_t n = 0; n <= 67; ++n) {
    std::vector<uint64_t> words(n);
    for (auto& w : words) w = rng.NextU64();
    uint64_t expected = 0;
    for (uint64_t w : words) expected += PopCount64(w);
    EXPECT_EQ(CountOnes(words.data(), n, strategy), expected) << "n=" << n;
  }
}

TEST_P(PopcountStrategyTest, AndCountMatchesReference) {
  const PopcountStrategy strategy = GetParam();
  if (!PopcountStrategyAvailable(strategy)) {
    GTEST_SKIP() << "strategy unavailable on this host";
  }
  Rng rng(43);
  for (size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 16ul, 33ul, 64ul, 65ul}) {
    std::vector<uint64_t> a(n), b(n), out(n, 0xdeadbeef);
    for (auto& w : a) w = rng.NextU64();
    for (auto& w : b) w = rng.NextU64();
    uint64_t expected = 0;
    for (size_t i = 0; i < n; ++i) expected += PopCount64(a[i] & b[i]);
    EXPECT_EQ(AndCount(a.data(), b.data(), out.data(), n, strategy), expected)
        << "n=" << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], a[i] & b[i]);
  }
}

TEST_P(PopcountStrategyTest, ExtremesAllZerosAllOnes) {
  const PopcountStrategy strategy = GetParam();
  if (!PopcountStrategyAvailable(strategy)) {
    GTEST_SKIP() << "strategy unavailable on this host";
  }
  std::vector<uint64_t> zeros(10, 0), ones(10, ~0ull);
  EXPECT_EQ(CountOnes(zeros.data(), 10, strategy), 0u);
  EXPECT_EQ(CountOnes(ones.data(), 10, strategy), 640u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PopcountStrategyTest,
    ::testing::Values(PopcountStrategy::kLut16, PopcountStrategy::kSwar,
                      PopcountStrategy::kHardware, PopcountStrategy::kAvx2,
                      PopcountStrategy::kAuto),
    [](const auto& info) { return PopcountStrategyName(info.param); });

TEST(PopcountDispatchTest, AutoResolvesToConcreteStrategy) {
  const PopcountStrategy s = ResolvePopcountStrategy(PopcountStrategy::kAuto);
  EXPECT_NE(s, PopcountStrategy::kAuto);
  EXPECT_TRUE(PopcountStrategyAvailable(s));
}

TEST(PopcountDispatchTest, ConcreteStrategiesResolveToThemselves) {
  EXPECT_EQ(ResolvePopcountStrategy(PopcountStrategy::kLut16),
            PopcountStrategy::kLut16);
  EXPECT_EQ(ResolvePopcountStrategy(PopcountStrategy::kSwar),
            PopcountStrategy::kSwar);
}

TEST(PopcountDispatchTest, NamesAreStable) {
  EXPECT_STREQ(PopcountStrategyName(PopcountStrategy::kLut16), "lut16");
  EXPECT_STREQ(PopcountStrategyName(PopcountStrategy::kAvx2), "avx2");
  EXPECT_STREQ(PopcountStrategyName(PopcountStrategy::kAuto), "auto");
}

}  // namespace
}  // namespace fpm
