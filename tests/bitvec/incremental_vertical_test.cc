#include "fpm/bitvec/incremental_vertical.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/itemset_sink.h"
#include "fpm/bitvec/popcount.h"
#include "fpm/common/rng.h"
#include "fpm/dataset/versioned.h"

namespace fpm {
namespace {

Database BuildDb(const std::vector<Itemset>& txns) {
  DatabaseBuilder b;
  for (const Itemset& t : txns) b.AddTransaction(t);
  return b.Build();
}

Support ColumnPopcount(const IncrementalVertical& inc, Item item) {
  Support total = 0;
  const uint64_t* words = inc.column_words(item);
  for (size_t w = 0; w < inc.words_per_column(); ++w) {
    total += static_cast<Support>(__builtin_popcountll(words[w]));
  }
  return total;
}

/// Fresh bit-vector Eclat run on `db` — the byte-identity oracle.
std::vector<CollectingSink::Entry> FreshEclat(const Database& db,
                                              Support min_support) {
  EclatOptions options;
  options.representation = EclatRepresentation::kBitVector;
  EclatMiner miner(options);
  CollectingSink sink;
  const Status s = miner.Mine(db, min_support, &sink).status();
  EXPECT_TRUE(s.ok()) << s;
  return sink.results();
}

std::vector<CollectingSink::Entry> MineMaintained(
    const IncrementalVertical& inc, const Database& db,
    Support min_support) {
  CollectingSink sink;
  EclatOptions options;
  auto stats = MineIncrementalVertical(inc, db, options, min_support, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return sink.results();
}

void ExpectIdentical(const std::vector<CollectingSink::Entry>& expected,
                     const std::vector<CollectingSink::Entry>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << label << " entry " << i;
  }
}

TEST(IncrementalVerticalTest, InitialColumnsMatchFrequencies) {
  const Database db = BuildDb({{1, 2}, {2, 3}, {1, 2, 3}});
  IncrementalVertical inc(db);
  EXPECT_EQ(inc.num_rows(), 3u);
  EXPECT_EQ(inc.start_row(), 0u);
  EXPECT_EQ(ColumnPopcount(inc, 1), 2u);
  EXPECT_EQ(ColumnPopcount(inc, 2), 3u);
  EXPECT_EQ(ColumnPopcount(inc, 3), 2u);
  EXPECT_EQ(ColumnPopcount(inc, 0), 0u);  // never occurred: zero column
}

TEST(IncrementalVerticalTest, AppendAddsRowsAtTheTop) {
  IncrementalVertical inc(BuildDb({{1, 2}}));
  inc.Append({{2, 3}, {3}}, {1, 1});
  EXPECT_EQ(inc.num_rows(), 3u);
  EXPECT_EQ(ColumnPopcount(inc, 1), 1u);
  EXPECT_EQ(ColumnPopcount(inc, 2), 2u);
  EXPECT_EQ(ColumnPopcount(inc, 3), 2u);
  // New item 3's column is padded to the shared word width.
  EXPECT_EQ(inc.words_per_column(), 1u);
}

TEST(IncrementalVerticalTest, WeightedTransactionsExpandToRows) {
  IncrementalVertical inc(BuildDb({{1}}));
  inc.Append({{1, 2}}, {70});  // spans a word boundary: rows 1..70
  EXPECT_EQ(inc.num_rows(), 71u);
  EXPECT_EQ(inc.words_per_column(), 2u);
  EXPECT_EQ(ColumnPopcount(inc, 1), 71u);
  EXPECT_EQ(ColumnPopcount(inc, 2), 70u);
}

TEST(IncrementalVerticalTest, ExpireMasksPrefixRowsInPlace) {
  IncrementalVertical inc(BuildDb({{1, 2}, {2, 3}, {1, 3}}));
  inc.Expire({{1, 2}}, {1});
  EXPECT_EQ(inc.start_row(), 1u);
  EXPECT_EQ(inc.num_rows(), 3u);  // rows are masked, not compacted
  EXPECT_EQ(ColumnPopcount(inc, 1), 1u);
  EXPECT_EQ(ColumnPopcount(inc, 2), 1u);
  EXPECT_EQ(ColumnPopcount(inc, 3), 2u);
  // The tight range of a partially-expired column skips nothing here
  // (both live rows are in word 0), but an all-expired column is empty.
  inc.Expire({{2, 3}}, {1});
  EXPECT_EQ(ColumnPopcount(inc, 2), 0u);
  const WordRange r = inc.one_range(2);
  EXPECT_EQ(r.begin, r.end);
}

TEST(IncrementalVerticalTest, MiningMatchesFreshEclatAcrossVersions) {
  VersionedDataset dataset(
      BuildDb({{1, 2, 3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}}), "d");
  IncrementalVertical inc(*dataset.latest().database);
  ExpectIdentical(FreshEclat(*dataset.latest().database, 2),
                  MineMaintained(inc, *dataset.latest().database, 2), "v1");

  auto v2 = dataset.Append({{2, 3, 4}, {4, 1}});
  ASSERT_TRUE(v2.ok());
  inc.Advance(*v2.value()->delta);
  ExpectIdentical(FreshEclat(*v2.value()->database, 2),
                  MineMaintained(inc, *v2.value()->database, 2), "v2");

  auto v3 = dataset.Expire(3);
  ASSERT_TRUE(v3.ok());
  inc.Advance(*v3.value()->delta);
  ExpectIdentical(FreshEclat(*v3.value()->database, 2),
                  MineMaintained(inc, *v3.value()->database, 2), "v3");
}

TEST(IncrementalVerticalTest, RandomStreamsMatchFreshEclat) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    Rng rng(seed);
    std::vector<Itemset> base;
    for (int t = 0; t < 30; ++t) {
      Itemset txn;
      const size_t len = 1 + rng.NextBounded(5);
      for (size_t i = 0; i < len; ++i) {
        txn.push_back(static_cast<Item>(rng.NextBounded(8)));
      }
      base.push_back(std::move(txn));
    }
    VersionedDataset dataset(BuildDb(base), "r");
    IncrementalVertical inc(*dataset.latest().database);
    for (int step = 0; step < 8; ++step) {
      const DatasetVersion* v = nullptr;
      if (rng.NextBounded(2) == 0 && dataset.live_transactions() > 5) {
        auto r = dataset.Expire(1 + rng.NextBounded(3));
        ASSERT_TRUE(r.ok());
        v = r.value();
      } else {
        std::vector<Itemset> txns;
        const size_t n = 1 + rng.NextBounded(4);
        for (size_t t = 0; t < n; ++t) {
          Itemset txn;
          const size_t len = 1 + rng.NextBounded(5);
          for (size_t i = 0; i < len; ++i) {
            txn.push_back(static_cast<Item>(rng.NextBounded(8)));
          }
          txns.push_back(std::move(txn));
        }
        auto r = dataset.Append(txns);
        ASSERT_TRUE(r.ok());
        v = r.value();
      }
      inc.Advance(*v->delta);
      ExpectIdentical(FreshEclat(*v->database, 3),
                      MineMaintained(inc, *v->database, 3),
                      "seed " + std::to_string(seed) + " step " +
                          std::to_string(step));
    }
  }
}

}  // namespace
}  // namespace fpm
