#include "fpm/bitvec/intersect.h"

#include <gtest/gtest.h>

#include "fpm/common/rng.h"

namespace fpm {
namespace {

TEST(IntersectTest, BasicAndCount) {
  BitVector a(200), b(200), out(200);
  a.Set(1);
  a.Set(100);
  a.Set(150);
  b.Set(100);
  b.Set(150);
  b.Set(199);
  const AndResult r = AndCount(a, a.FullRange(), b, b.FullRange(), &out,
                               PopcountStrategy::kHardware);
  EXPECT_EQ(r.support, 2u);
  EXPECT_TRUE(out.Test(100));
  EXPECT_TRUE(out.Test(150));
  EXPECT_FALSE(out.Test(1));
  EXPECT_FALSE(out.Test(199));
}

TEST(IntersectTest, ResultRangeIsTight) {
  BitVector a(640), b(640), out(640);
  for (size_t i = 0; i < 640; ++i) a.Set(i);
  b.Set(130);  // word 2
  b.Set(200);  // word 3
  const AndResult r = AndCount(a, a.ComputeOneRange(), b, b.ComputeOneRange(),
                               &out, PopcountStrategy::kHardware);
  EXPECT_EQ(r.support, 2u);
  EXPECT_EQ(r.range.begin, 2u);
  EXPECT_EQ(r.range.end, 4u);
}

TEST(IntersectTest, DisjointRangesShortCircuit) {
  BitVector a(640), b(640), out(640);
  a.Set(10);    // word 0
  b.Set(600);   // word 9
  const AndResult r = AndCount(a, a.ComputeOneRange(), b, b.ComputeOneRange(),
                               &out, PopcountStrategy::kHardware);
  EXPECT_EQ(r.support, 0u);
  EXPECT_TRUE(r.range.empty());
}

TEST(IntersectTest, ZeroEscapedEqualsFullComputation) {
  // Property: restricting to 1-ranges never changes the support.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t bits = 64 * (1 + rng.NextBounded(10));
    BitVector a(bits), b(bits), out_full(bits), out_esc(bits);
    // Clustered bits so ranges are meaningfully narrow.
    const size_t ca = rng.NextBounded(bits);
    const size_t cb = rng.NextBounded(bits);
    for (int k = 0; k < 40; ++k) {
      a.Set((ca + rng.NextBounded(128)) % bits);
      b.Set((cb + rng.NextBounded(128)) % bits);
    }
    const AndResult full = AndCount(a, a.FullRange(), b, b.FullRange(),
                                    &out_full, PopcountStrategy::kHardware);
    const AndResult esc =
        AndCount(a, a.ComputeOneRange(), b, b.ComputeOneRange(), &out_esc,
                 PopcountStrategy::kHardware);
    EXPECT_EQ(full.support, esc.support) << "trial " << trial;
    // Escaped output must match inside its range.
    for (uint32_t w = esc.range.begin; w < esc.range.end; ++w) {
      EXPECT_EQ(out_esc.words()[w], out_full.words()[w]);
    }
  }
}

TEST(IntersectTest, CountOnesRange) {
  BitVector v(256);
  v.Set(0);
  v.Set(64);
  v.Set(128);
  EXPECT_EQ(CountOnesRange(v.words(), WordRange{0, 4},
                           PopcountStrategy::kHardware),
            3u);
  EXPECT_EQ(CountOnesRange(v.words(), WordRange{1, 2},
                           PopcountStrategy::kHardware),
            1u);
  EXPECT_EQ(CountOnesRange(v.words(), WordRange{3, 3},
                           PopcountStrategy::kHardware),
            0u);
}

TEST(IntersectDeathTest, MismatchedSizesRejected) {
  BitVector a(64), b(128), out(128);
  EXPECT_DEATH(AndCount(a, a.FullRange(), b, b.FullRange(), &out,
                        PopcountStrategy::kHardware),
               "equally sized");
}

}  // namespace
}  // namespace fpm
