#include "fpm/bitvec/tidlist.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

Database MakeDb(std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

TEST(TidListDatabaseTest, ListsMatchOccurrences) {
  Database db = MakeDb({{0, 2}, {1}, {0, 1, 2}});
  TidListDatabase t = TidListDatabase::FromDatabase(db, db.num_items());
  EXPECT_EQ(t.num_items(), 3u);
  ASSERT_EQ(t.list(0).size(), 2u);
  EXPECT_EQ(t.list(0)[0], 0u);
  EXPECT_EQ(t.list(0)[1], 2u);
  ASSERT_EQ(t.list(1).size(), 2u);
  EXPECT_EQ(t.list(1)[0], 1u);
  EXPECT_EQ(t.list(2).size(), 2u);
}

TEST(TidListDatabaseTest, ListsAreSorted) {
  Database db = MakeDb({{5}, {5, 1}, {5}, {1}, {5, 1}});
  TidListDatabase t = TidListDatabase::FromDatabase(db, db.num_items());
  for (Item i = 0; i < t.num_items(); ++i) {
    auto list = t.list(i);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end())) << "item " << i;
  }
}

TEST(TidListDatabaseTest, ItemBoundLimitsLists) {
  Database db = MakeDb({{0, 5}, {5}});
  TidListDatabase t = TidListDatabase::FromDatabase(db, 2);
  EXPECT_EQ(t.num_items(), 2u);
  EXPECT_EQ(t.list(0).size(), 1u);
  EXPECT_EQ(t.list(1).size(), 0u);
}

TEST(TidListDatabaseTest, WeightedSupports) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 4);
  b.AddTransaction({0}, 3);
  Database db = b.Build();
  TidListDatabase t = TidListDatabase::FromDatabase(db, 2);
  EXPECT_EQ(t.ItemSupport(0), 7u);
  EXPECT_EQ(t.ItemSupport(1), 4u);
  EXPECT_EQ(t.list(0).size(), 2u);  // no row expansion
}

TEST(IntersectTidListsTest, BasicMerge) {
  const std::vector<Tid> a = {0, 2, 4, 6, 9};
  const std::vector<Tid> b = {1, 2, 3, 6, 7, 9};
  const std::vector<Support> weights = {1, 1, 1, 1, 1, 1, 1, 1, 1, 5};
  std::vector<Tid> out(5);
  Support support = 0;
  const size_t n =
      IntersectTidLists(a, b, weights.data(), out.data(), &support);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[1], 6u);
  EXPECT_EQ(out[2], 9u);
  EXPECT_EQ(support, 7u);  // 1 + 1 + 5
}

TEST(IntersectTidListsTest, DisjointAndEmpty) {
  const std::vector<Tid> a = {0, 2};
  const std::vector<Tid> b = {1, 3};
  const std::vector<Support> weights = {1, 1, 1, 1};
  std::vector<Tid> out(2);
  Support support = 99;
  EXPECT_EQ(IntersectTidLists(a, b, weights.data(), out.data(), &support),
            0u);
  EXPECT_EQ(support, 0u);
  EXPECT_EQ(IntersectTidLists({}, b, weights.data(), out.data(), &support),
            0u);
}

TEST(IntersectTidListsTest, SelfIntersectionIsIdentity) {
  const std::vector<Tid> a = {3, 5, 8};
  const std::vector<Support> weights(9, 2);
  std::vector<Tid> out(3);
  Support support = 0;
  const size_t n =
      IntersectTidLists(a, a, weights.data(), out.data(), &support);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(support, 6u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), out.begin()));
}

TEST(TidListDatabaseTest, EmptyDatabase) {
  TidListDatabase t = TidListDatabase::FromDatabase(Database(), 0);
  EXPECT_EQ(t.num_items(), 0u);
  EXPECT_EQ(t.num_transactions(), 0u);
}

}  // namespace
}  // namespace fpm
