// Property sweep: AndCountRange under every strategy and any pair of
// conservative ranges must agree with the definitionally-correct
// bit loop, and range handling must never lose a set bit.

#include <gtest/gtest.h>

#include "fpm/bitvec/intersect.h"
#include "fpm/common/rng.h"

namespace fpm {
namespace {

class IntersectPropertyTest
    : public ::testing::TestWithParam<PopcountStrategy> {};

TEST_P(IntersectPropertyTest, MatchesBitLoopUnderRandomRanges) {
  const PopcountStrategy strategy = GetParam();
  if (!PopcountStrategyAvailable(strategy)) {
    GTEST_SKIP() << "strategy unavailable";
  }
  Rng rng(909);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t bits = 64 * (1 + rng.NextBounded(12));
    BitVector a(bits), b(bits), out(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextBool(0.3)) a.Set(i);
      if (rng.NextBool(0.3)) b.Set(i);
    }
    // Random *conservative* ranges: must contain the tight 1-range.
    auto widen = [&](WordRange tight, size_t words) {
      if (tight.empty()) return tight;
      WordRange r = tight;
      r.begin -= std::min<uint32_t>(r.begin, rng.NextBounded(3));
      r.end += rng.NextBounded(3);
      if (r.end > words) r.end = static_cast<uint32_t>(words);
      return r;
    };
    const WordRange ra = widen(a.ComputeOneRange(), a.num_words());
    const WordRange rb = widen(b.ComputeOneRange(), b.num_words());

    const AndResult result = AndCount(a, ra, b, rb, &out, strategy);

    // Definitional check.
    uint64_t expected = 0;
    for (size_t i = 0; i < bits; ++i) {
      if (a.Test(i) && b.Test(i)) ++expected;
    }
    EXPECT_EQ(result.support, expected) << "trial " << trial;

    // The returned range must cover every set bit of the AND, and the
    // output words inside the range must be exact.
    for (uint32_t w = result.range.begin; w < result.range.end; ++w) {
      EXPECT_EQ(out.words()[w], a.words()[w] & b.words()[w]);
    }
    for (size_t i = 0; i < bits; ++i) {
      if (a.Test(i) && b.Test(i)) {
        const uint32_t w = static_cast<uint32_t>(i / 64);
        EXPECT_GE(w, result.range.begin);
        EXPECT_LT(w, result.range.end);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, IntersectPropertyTest,
    ::testing::Values(PopcountStrategy::kLut16, PopcountStrategy::kSwar,
                      PopcountStrategy::kHardware, PopcountStrategy::kAuto),
    [](const auto& info) { return PopcountStrategyName(info.param); });

}  // namespace
}  // namespace fpm
