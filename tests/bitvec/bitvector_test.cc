#include "fpm/bitvec/bitvector.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(BitVectorTest, StartsZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.num_bits(), 130u);
  EXPECT_EQ(v.num_words(), 3u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.Test(i));
}

TEST(BitVectorTest, SetTestClear) {
  BitVector v(100);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(99);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(63));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(99));
  EXPECT_FALSE(v.Test(1));
  v.Clear(63);
  EXPECT_FALSE(v.Test(63));
  EXPECT_TRUE(v.Test(64));
}

TEST(BitVectorTest, ResetZeroesEverything) {
  BitVector v(128);
  v.Set(5);
  v.Set(127);
  v.Reset();
  EXPECT_FALSE(v.Test(5));
  EXPECT_FALSE(v.Test(127));
}

TEST(BitVectorTest, OneRangeEmptyVector) {
  BitVector v(256);
  EXPECT_TRUE(v.ComputeOneRange().empty());
}

TEST(BitVectorTest, OneRangeSingleBit) {
  BitVector v(256);
  v.Set(130);  // word 2
  const WordRange r = v.ComputeOneRange();
  EXPECT_EQ(r.begin, 2u);
  EXPECT_EQ(r.end, 3u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(BitVectorTest, OneRangeSpansBits) {
  BitVector v(320);
  v.Set(70);   // word 1
  v.Set(200);  // word 3
  const WordRange r = v.ComputeOneRange();
  EXPECT_EQ(r.begin, 1u);
  EXPECT_EQ(r.end, 4u);
}

TEST(BitVectorTest, FullRangeCoversAllWords) {
  BitVector v(129);
  const WordRange r = v.FullRange();
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 3u);
}

TEST(WordRangeTest, IntersectOverlapping) {
  const WordRange r = IntersectRanges({2, 8}, {5, 12});
  EXPECT_EQ(r.begin, 5u);
  EXPECT_EQ(r.end, 8u);
}

TEST(WordRangeTest, IntersectDisjointIsEmpty) {
  const WordRange r = IntersectRanges({0, 3}, {5, 9});
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
}

TEST(WordRangeTest, IntersectNested) {
  const WordRange r = IntersectRanges({0, 100}, {40, 42});
  EXPECT_EQ(r.begin, 40u);
  EXPECT_EQ(r.end, 42u);
}

TEST(WordRangeTest, EmptyRangeProperties) {
  WordRange r{7, 7};
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
}

}  // namespace
}  // namespace fpm
