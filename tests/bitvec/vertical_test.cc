#include "fpm/bitvec/vertical.h"

#include <gtest/gtest.h>

#include "fpm/bitvec/popcount.h"

namespace fpm {
namespace {

Database MakeDb(std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

TEST(VerticalTest, ColumnsMatchOccurrences) {
  Database db = MakeDb({{0, 2}, {1}, {0, 1, 2}});
  VerticalDatabase v = VerticalDatabase::FromDatabase(db);
  EXPECT_EQ(v.num_items(), 3u);
  EXPECT_EQ(v.num_transactions(), 3u);
  EXPECT_TRUE(v.column(0).Test(0));
  EXPECT_FALSE(v.column(0).Test(1));
  EXPECT_TRUE(v.column(0).Test(2));
  EXPECT_FALSE(v.column(1).Test(0));
  EXPECT_TRUE(v.column(1).Test(1));
  EXPECT_TRUE(v.column(2).Test(2));
}

TEST(VerticalTest, PopcountsEqualFrequencies) {
  Database db = MakeDb({{0, 1}, {1, 2}, {1}, {2}});
  VerticalDatabase v = VerticalDatabase::FromDatabase(db);
  const auto& freq = db.item_frequencies();
  for (Item i = 0; i < v.num_items(); ++i) {
    EXPECT_EQ(CountOnes(v.column(i).words(), v.words_per_column(),
                        PopcountStrategy::kHardware),
              freq[i])
        << "item " << i;
  }
}

TEST(VerticalTest, WeightedTransactionsExpand) {
  DatabaseBuilder b;
  b.AddTransaction({0}, 3);
  b.AddTransaction({0, 1}, 2);
  Database db = b.Build();
  VerticalDatabase v = VerticalDatabase::FromDatabase(db);
  EXPECT_EQ(v.num_transactions(), 5u);
  EXPECT_EQ(CountOnes(v.column(0).words(), v.words_per_column(),
                      PopcountStrategy::kHardware),
            5u);
  EXPECT_EQ(CountOnes(v.column(1).words(), v.words_per_column(),
                      PopcountStrategy::kHardware),
            2u);
}

TEST(VerticalTest, OneRangesAreTight) {
  DatabaseBuilder b;
  for (int i = 0; i < 100; ++i) b.AddTransaction({0});
  b.AddTransaction({1});
  for (int i = 0; i < 100; ++i) b.AddTransaction({0});
  Database db = b.Build();
  VerticalDatabase v = VerticalDatabase::FromDatabase(db);
  // Item 1 occurs only at row 100 -> word 1.
  EXPECT_EQ(v.one_range(1).begin, 1u);
  EXPECT_EQ(v.one_range(1).end, 2u);
  // Item 0 spans everything.
  EXPECT_EQ(v.one_range(0).begin, 0u);
  EXPECT_EQ(v.one_range(0).end, v.words_per_column());
}

TEST(VerticalTest, AbsentItemHasEmptyRange) {
  Database db = MakeDb({{0, 2}});  // item 1 never occurs
  VerticalDatabase v = VerticalDatabase::FromDatabase(db);
  EXPECT_TRUE(v.one_range(1).empty());
}

TEST(VerticalTest, EmptyDatabase) {
  VerticalDatabase v = VerticalDatabase::FromDatabase(Database());
  EXPECT_EQ(v.num_items(), 0u);
  EXPECT_EQ(v.num_transactions(), 0u);
  EXPECT_EQ(v.words_per_column(), 0u);
}

}  // namespace
}  // namespace fpm
