#include "fpm/core/patterns.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(PatternInfoTest, RegistryMatchesTable2) {
  // Spot-check Table 2 rows.
  const PatternInfo& lex = GetPatternInfo(Pattern::kLexicographicOrdering);
  EXPECT_STREQ(lex.id, "P1");
  EXPECT_TRUE(lex.spatial_locality);
  EXPECT_FALSE(lex.computation);

  const PatternInfo& agg = GetPatternInfo(Pattern::kAggregation);
  EXPECT_TRUE(agg.spatial_locality);
  EXPECT_TRUE(agg.memory_latency);

  const PatternInfo& tile = GetPatternInfo(Pattern::kTiling);
  EXPECT_TRUE(tile.temporal_locality);
  EXPECT_FALSE(tile.spatial_locality);

  const PatternInfo& simd = GetPatternInfo(Pattern::kSimdization);
  EXPECT_TRUE(simd.computation);
  EXPECT_FALSE(simd.memory_latency);
}

TEST(PatternInfoTest, AllEightPresentInOrder) {
  const auto all = AllPatterns();
  ASSERT_EQ(all.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<int>(all[i].pattern), i);
    EXPECT_EQ(all[i].id, "P" + std::to_string(i + 1));
  }
}

TEST(PatternSetTest, WithWithoutContains) {
  PatternSet s;
  EXPECT_TRUE(s.empty());
  s = s.With(Pattern::kTiling).With(Pattern::kSimdization);
  EXPECT_TRUE(s.Contains(Pattern::kTiling));
  EXPECT_TRUE(s.Contains(Pattern::kSimdization));
  EXPECT_FALSE(s.Contains(Pattern::kAggregation));
  EXPECT_EQ(s.count(), 2);
  s = s.Without(Pattern::kTiling);
  EXPECT_FALSE(s.Contains(Pattern::kTiling));
  EXPECT_EQ(s.count(), 1);
}

TEST(PatternSetTest, AllContainsEverything) {
  const PatternSet all = PatternSet::All();
  EXPECT_EQ(all.count(), 8);
  for (const auto& info : AllPatterns()) {
    EXPECT_TRUE(all.Contains(info.pattern)) << info.id;
  }
}

TEST(PatternSetTest, SetAlgebra) {
  const PatternSet a =
      PatternSet().With(Pattern::kTiling).With(Pattern::kAggregation);
  const PatternSet b =
      PatternSet().With(Pattern::kTiling).With(Pattern::kSimdization);
  EXPECT_EQ(a.Intersect(b), PatternSet().With(Pattern::kTiling));
  EXPECT_EQ(a.Union(b).count(), 3);
}

TEST(PatternSetTest, ToStringFormat) {
  EXPECT_EQ(PatternSet().ToString(), "none");
  EXPECT_EQ(PatternSet().With(Pattern::kLexicographicOrdering).ToString(),
            "P1");
  EXPECT_EQ(PatternSet()
                .With(Pattern::kLexicographicOrdering)
                .With(Pattern::kSoftwarePrefetch)
                .ToString(),
            "P1+P7");
}

TEST(PatternSetTest, ParseIdsNamesAliases) {
  auto r = PatternSet::Parse("P1,P8");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains(Pattern::kLexicographicOrdering));
  EXPECT_TRUE(r->Contains(Pattern::kSimdization));
  EXPECT_EQ(r->count(), 2);

  r = PatternSet::Parse("lex + tile");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains(Pattern::kTiling));

  r = PatternSet::Parse("all");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count(), 8);

  r = PatternSet::Parse("none");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());

  r = PatternSet::Parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(PatternSetTest, ParseRejectsUnknown) {
  EXPECT_FALSE(PatternSet::Parse("P9").ok());
  EXPECT_FALSE(PatternSet::Parse("lex,bogus").ok());
}

TEST(ApplicabilityTest, MatchesTable4) {
  const PatternSet lcm = PatternSet::ApplicableTo(Algorithm::kLcm);
  EXPECT_TRUE(lcm.Contains(Pattern::kLexicographicOrdering));
  EXPECT_TRUE(lcm.Contains(Pattern::kAggregation));
  EXPECT_TRUE(lcm.Contains(Pattern::kCompaction));
  EXPECT_TRUE(lcm.Contains(Pattern::kTiling));
  EXPECT_TRUE(lcm.Contains(Pattern::kSoftwarePrefetch));
  EXPECT_FALSE(lcm.Contains(Pattern::kSimdization));
  EXPECT_FALSE(lcm.Contains(Pattern::kDataStructureAdaptation));

  const PatternSet eclat = PatternSet::ApplicableTo(Algorithm::kEclat);
  EXPECT_EQ(eclat.count(), 2);
  EXPECT_TRUE(eclat.Contains(Pattern::kLexicographicOrdering));
  EXPECT_TRUE(eclat.Contains(Pattern::kSimdization));

  const PatternSet fpg = PatternSet::ApplicableTo(Algorithm::kFpGrowth);
  EXPECT_TRUE(fpg.Contains(Pattern::kDataStructureAdaptation));
  EXPECT_TRUE(fpg.Contains(Pattern::kPrefetchPointers));
  EXPECT_FALSE(fpg.Contains(Pattern::kTiling));  // "()" in Table 4
  EXPECT_FALSE(fpg.Contains(Pattern::kSimdization));

  EXPECT_TRUE(PatternSet::ApplicableTo(Algorithm::kApriori).empty());
  EXPECT_TRUE(PatternSet::ApplicableTo(Algorithm::kBruteForce).empty());
}

TEST(AlgorithmTest, NamesRoundTrip) {
  for (Algorithm a : {Algorithm::kLcm, Algorithm::kEclat,
                      Algorithm::kFpGrowth, Algorithm::kApriori, Algorithm::kHMine,
                      Algorithm::kBruteForce}) {
    auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
  }
  EXPECT_TRUE(ParseAlgorithm("FP-Growth").ok());
  EXPECT_FALSE(ParseAlgorithm("quantum").ok());
}

TEST(AlgorithmInfoTest, MatchesTable3) {
  const AlgorithmInfo& lcm = GetAlgorithmInfo(Algorithm::kLcm);
  EXPECT_STREQ(lcm.database_type, "horizontal");
  EXPECT_STREQ(lcm.bound, "memory");
  const AlgorithmInfo& eclat = GetAlgorithmInfo(Algorithm::kEclat);
  EXPECT_STREQ(eclat.database_type, "vertical");
  EXPECT_STREQ(eclat.bound, "computation");
  const AlgorithmInfo& fpg = GetAlgorithmInfo(Algorithm::kFpGrowth);
  EXPECT_STREQ(fpg.data_structure, "tree");
}

}  // namespace
}  // namespace fpm
