#include <gtest/gtest.h>

#include "fpm/core/pattern_advisor.h"

namespace fpm {
namespace {

DatabaseStats DenseStats() {
  DatabaseStats s;
  s.num_transactions = 30000;
  s.num_items = 1000;
  s.num_used_items = 1000;
  s.avg_transaction_len = 60;
  s.density = 0.06;
  s.frequency_gini = 0.2;
  s.consecutive_jaccard = 0.03;
  return s;
}

DatabaseStats SparseStats() {
  DatabaseStats s;
  s.num_transactions = 1800000;
  s.num_items = 120000;
  s.num_used_items = 90000;
  s.avg_transaction_len = 12;
  s.density = 0.0001;
  s.frequency_gini = 0.85;
  s.consecutive_jaccard = 0.1;
  return s;
}

TEST(MiningAdvisorTest, DenseModerateUniverseGoesToEclat) {
  const MiningAdvice advice = AdviseMining(DenseStats());
  EXPECT_EQ(advice.algorithm, Algorithm::kEclat);
  // Pattern set must match what the pattern advisor says for Eclat.
  EXPECT_EQ(advice.patterns,
            AdvisePatterns(Algorithm::kEclat, DenseStats()).patterns);
}

TEST(MiningAdvisorTest, SparseWideUniverseGoesToLcm) {
  const MiningAdvice advice = AdviseMining(SparseStats());
  EXPECT_EQ(advice.algorithm, Algorithm::kLcm);
}

TEST(MiningAdvisorTest, HugeUniverseAvoidsEclatEvenWhenDense) {
  DatabaseStats s = DenseStats();
  s.num_used_items = 100000;  // bit matrix would be enormous
  const MiningAdvice advice = AdviseMining(s);
  EXPECT_EQ(advice.algorithm, Algorithm::kLcm);
}

TEST(MiningAdvisorTest, RationaleExplainsChoice) {
  const MiningAdvice advice = AdviseMining(DenseStats());
  ASSERT_FALSE(advice.rationale.empty());
  EXPECT_NE(advice.rationale[0].find("eclat"), std::string::npos);
  // Pattern rationale follows the algorithm rationale.
  EXPECT_GT(advice.rationale.size(), 1u);
}

TEST(MiningAdvisorTest, ConfigThresholdsRespected) {
  AdvisorConfig config;
  config.eclat_density_floor = 0.5;  // nothing is that dense
  const MiningAdvice advice = AdviseMining(DenseStats(), config);
  EXPECT_EQ(advice.algorithm, Algorithm::kLcm);
}

TEST(MiningAdvisorTest, PatternsAreApplicableToChosenAlgorithm) {
  for (const DatabaseStats& s : {DenseStats(), SparseStats()}) {
    const MiningAdvice advice = AdviseMining(s);
    const PatternSet applicable = PatternSet::ApplicableTo(advice.algorithm);
    EXPECT_EQ(advice.patterns.Intersect(applicable), advice.patterns);
  }
}

}  // namespace
}  // namespace fpm
