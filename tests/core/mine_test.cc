#include "fpm/core/mine.h"

#include <gtest/gtest.h>

#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;

TEST(EffectivePatternsTest, ClampsToApplicable) {
  const PatternSet all = PatternSet::All();
  EXPECT_EQ(EffectivePatterns(Algorithm::kEclat, all),
            PatternSet::ApplicableTo(Algorithm::kEclat));
  EXPECT_TRUE(EffectivePatterns(Algorithm::kApriori, all).empty());
}

TEST(EffectivePatternsTest, RoundTripsForEveryAlgorithm) {
  for (Algorithm a : {Algorithm::kLcm, Algorithm::kEclat,
                      Algorithm::kFpGrowth, Algorithm::kApriori,
                      Algorithm::kHMine, Algorithm::kBruteForce}) {
    const PatternSet applicable = PatternSet::ApplicableTo(a);
    // An already-effective set passes through unchanged (idempotence).
    EXPECT_EQ(EffectivePatterns(a, applicable), applicable)
        << AlgorithmName(a);
    for (const PatternInfo& info : AllPatterns()) {
      const PatternSet single = PatternSet().With(info.pattern);
      const PatternSet effective = EffectivePatterns(a, single);
      // Per-pattern: applicable patterns survive, inapplicable vanish.
      EXPECT_EQ(effective, applicable.Contains(info.pattern)
                               ? single
                               : PatternSet::None())
          << AlgorithmName(a) << " " << info.id;
      EXPECT_EQ(EffectivePatterns(a, effective), effective)
          << AlgorithmName(a) << " " << info.id;
    }
    // Text round-trip: the effective set survives ToString -> Parse.
    const Result<PatternSet> reparsed =
        PatternSet::Parse(applicable.ToString());
    ASSERT_TRUE(reparsed.ok()) << AlgorithmName(a);
    EXPECT_EQ(*reparsed, applicable) << AlgorithmName(a);
  }
}

TEST(CreateMinerTest, NamesReflectConfiguration) {
  auto base = CreateMiner(Algorithm::kLcm, PatternSet::None());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ((*base)->name(), "lcm");

  auto tuned = CreateMiner(Algorithm::kLcm, PatternSet::All());
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ((*tuned)->name(), "lcm+lex+agg+cmp+tile+wave");

  auto eclat = CreateMiner(
      Algorithm::kEclat, PatternSet().With(Pattern::kSimdization));
  ASSERT_TRUE(eclat.ok());
  EXPECT_NE((*eclat)->name().find("simd"), std::string::npos);

  auto fpg = CreateMiner(Algorithm::kFpGrowth, PatternSet::All());
  ASSERT_TRUE(fpg.ok());
  EXPECT_EQ((*fpg)->name(), "fpgrowth+lex+cmp+dfs+pref");
}

TEST(CreateMinerTest, InapplicablePatternsIgnored) {
  // Tiling does nothing for Eclat (Table 4): the miner must be baseline.
  auto m = CreateMiner(Algorithm::kEclat, PatternSet().With(Pattern::kTiling));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->name(), "eclat");
}

TEST(MineTest, EndToEndAcrossAlgorithms) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  for (Algorithm a : {Algorithm::kLcm, Algorithm::kEclat,
                      Algorithm::kFpGrowth, Algorithm::kApriori, Algorithm::kHMine,
                      Algorithm::kBruteForce}) {
    for (const PatternSet& p : {PatternSet::None(), PatternSet::All()}) {
      MineOptions options;
      options.algorithm = a;
      options.min_support = 2;
      options.patterns = p;
      CollectingSink sink;
      Result<MineStats> stats = Mine(db, options, &sink);
      ASSERT_TRUE(stats.ok()) << AlgorithmName(a) << " " << p.ToString();
      EXPECT_EQ(sink.size(), 5u) << AlgorithmName(a) << " " << p.ToString();
      EXPECT_EQ(stats->num_frequent, 5u);
    }
  }
}

TEST(MineTest, StatsReturnedPerCall) {
  Database db = MakeDb({{0}});
  MineOptions options;
  options.min_support = 1;
  CountingSink sink;
  Result<MineStats> stats = Mine(db, options, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_EQ(stats->num_frequent, 1u);
}

TEST(MineTest, RejectsZeroThreads) {
  Database db = MakeDb({{0}});
  MineOptions options;
  options.min_support = 1;
  options.execution.num_threads = 0;
  CountingSink sink;
  const Status s = Mine(db, options, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(MineTest, ParallelExecutionMatchesSequential) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  MineOptions options;
  options.min_support = 2;

  CollectingSink sequential;
  ASSERT_TRUE(Mine(db, options, &sequential).ok());
  sequential.Canonicalize();

  options.execution.num_threads = 4;
  CollectingSink parallel;
  Result<MineStats> stats = Mine(db, options, &parallel);
  ASSERT_TRUE(stats.ok());
  parallel.Canonicalize();
  EXPECT_EQ(sequential.results(), parallel.results());
  EXPECT_EQ(stats->num_frequent, sequential.results().size());
}

TEST(MineTest, PropagatesMinerErrors) {
  Database db = MakeDb({{0}});
  MineOptions options;
  options.min_support = 0;  // invalid
  CountingSink sink;
  EXPECT_FALSE(Mine(db, options, &sink).ok());
}

}  // namespace
}  // namespace fpm
