#include "fpm/core/pattern_advisor.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

DatabaseStats BaseStats() {
  DatabaseStats s;
  s.num_transactions = 100000;
  s.num_items = 1000;
  s.num_used_items = 1000;
  s.avg_transaction_len = 20;
  s.density = 0.02;
  s.frequency_gini = 0.6;
  s.consecutive_jaccard = 0.01;  // random order
  return s;
}

TEST(AdvisorTest, RandomOrderedClusteredInputGetsEverything) {
  const PatternAdvice advice = AdvisePatterns(Algorithm::kLcm, BaseStats());
  EXPECT_EQ(advice.patterns, PatternSet::ApplicableTo(Algorithm::kLcm));
  EXPECT_FALSE(advice.rationale.empty());
}

TEST(AdvisorTest, PreClusteredInputDropsLex) {
  DatabaseStats s = BaseStats();
  s.consecutive_jaccard = 0.5;
  const PatternAdvice advice = AdvisePatterns(Algorithm::kLcm, s);
  EXPECT_FALSE(advice.patterns.Contains(Pattern::kLexicographicOrdering));
}

TEST(AdvisorTest, HugeSparseFpGrowthDropsLex) {
  // The paper's DS4 observation: too many transactions make the sort
  // dominate FP-Growth.
  DatabaseStats s = BaseStats();
  s.num_transactions = 1800000;
  const PatternAdvice advice = AdvisePatterns(Algorithm::kFpGrowth, s);
  EXPECT_FALSE(advice.patterns.Contains(Pattern::kLexicographicOrdering));
  // Same size is fine for LCM.
  const PatternAdvice lcm = AdvisePatterns(Algorithm::kLcm, s);
  EXPECT_TRUE(lcm.patterns.Contains(Pattern::kLexicographicOrdering));
}

TEST(AdvisorTest, VerySparseInputDropsTiling) {
  DatabaseStats s = BaseStats();
  s.density = 0.0001;
  const PatternAdvice advice = AdvisePatterns(Algorithm::kLcm, s);
  EXPECT_FALSE(advice.patterns.Contains(Pattern::kTiling));
  // Rationale must explain the drop.
  bool mentioned = false;
  for (const auto& r : advice.rationale) {
    if (r.find("P6 dropped") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

TEST(AdvisorTest, ShortTransactionsDropLatencyPatterns) {
  DatabaseStats s = BaseStats();
  s.avg_transaction_len = 2.5;
  const PatternAdvice fpg = AdvisePatterns(Algorithm::kFpGrowth, s);
  EXPECT_FALSE(fpg.patterns.Contains(Pattern::kAggregation));
  EXPECT_FALSE(fpg.patterns.Contains(Pattern::kPrefetchPointers));
  EXPECT_FALSE(fpg.patterns.Contains(Pattern::kSoftwarePrefetch));
  // P2 stays: smaller nodes always help.
  EXPECT_TRUE(fpg.patterns.Contains(Pattern::kDataStructureAdaptation));
}

TEST(AdvisorTest, EclatAlwaysKeepsSimd) {
  DatabaseStats s = BaseStats();
  s.avg_transaction_len = 2.0;
  s.density = 0.00001;
  const PatternAdvice advice = AdvisePatterns(Algorithm::kEclat, s);
  EXPECT_TRUE(advice.patterns.Contains(Pattern::kSimdization));
}

TEST(AdvisorTest, RecommendationIsSubsetOfApplicable) {
  for (Algorithm a : {Algorithm::kLcm, Algorithm::kEclat,
                      Algorithm::kFpGrowth, Algorithm::kApriori}) {
    const PatternAdvice advice = AdvisePatterns(a, BaseStats());
    const PatternSet applicable = PatternSet::ApplicableTo(a);
    EXPECT_EQ(advice.patterns.Intersect(applicable), advice.patterns)
        << AlgorithmName(a);
  }
}

TEST(AdvisorTest, ConfigThresholdsRespected) {
  DatabaseStats s = BaseStats();
  s.consecutive_jaccard = 0.1;
  AdvisorConfig config;
  config.lex_jaccard_ceiling = 0.05;  // stricter than default
  const PatternAdvice advice = AdvisePatterns(Algorithm::kLcm, s, config);
  EXPECT_FALSE(advice.patterns.Contains(Pattern::kLexicographicOrdering));
}

}  // namespace
}  // namespace fpm
