#include "fpm/core/partition.h"

#include <gtest/gtest.h>

#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/dataset/quest_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::MineCanonical;
using testutil::RandomDb;
using testutil::RandomDbSpec;

TEST(PartitionedMinerTest, NameReflectsConfiguration) {
  PartitionOptions o;
  o.num_partitions = 8;
  o.inner_algorithm = Algorithm::kEclat;
  EXPECT_EQ(PartitionedMiner(o).name(), "partition(8xeclat)");
}

TEST(PartitionedMinerTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  PartitionOptions o;
  o.num_partitions = 2;
  PartitionedMiner miner(o);
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{2}, 2}));
}

// Exactness over partition counts, inner algorithms and random inputs.
class PartitionSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, Algorithm>> {};

TEST_P(PartitionSweepTest, MatchesDirectMining) {
  PartitionOptions o;
  o.num_partitions = std::get<0>(GetParam());
  o.inner_algorithm = std::get<1>(GetParam());
  PartitionedMiner partitioned(o);
  LcmMiner direct;
  for (uint64_t seed : {401ull, 402ull}) {
    RandomDbSpec spec;
    spec.num_transactions = 80;
    spec.num_items = 10;
    spec.seed = seed;
    Database db = RandomDb(spec);
    const auto expected = MineCanonical(direct, db, 5);
    const auto actual = MineCanonical(partitioned, db, 5);
    ExpectSameResults(expected, actual,
                      partitioned.name() + " seed=" + std::to_string(seed));
    // Phase 1 must overshoot or match, never undershoot.
    EXPECT_GE(partitioned.last_candidate_count(), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 7u, 64u),
                       ::testing::Values(Algorithm::kLcm,
                                         Algorithm::kEclat,
                                         Algorithm::kFpGrowth)));

TEST(PartitionedMinerTest, MorePartitionsThanTransactions) {
  Database db = MakeDb({{0, 1}, {0, 1}});
  PartitionOptions o;
  o.num_partitions = 50;
  PartitionedMiner miner(o);
  const auto r = MineCanonical(miner, db, 2);
  EXPECT_EQ(r.size(), 3u);
}

TEST(PartitionedMinerTest, WeightedTransactions) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 7);
  b.AddTransaction({1}, 3);
  b.AddTransaction({0}, 2);
  Database db = b.Build();
  PartitionOptions o;
  o.num_partitions = 3;
  PartitionedMiner miner(o);
  const auto r = MineCanonical(miner, db, 7);
  // {0}:9 {1}:10 {0,1}:7
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 7}));
}

TEST(PartitionedMinerTest, QuestEquivalence) {
  QuestParams p;
  p.num_transactions = 1000;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 60;
  p.num_patterns = 30;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok());
  LcmMiner direct;
  PartitionOptions o;
  o.num_partitions = 5;
  o.inner_patterns = PatternSet::All();
  PartitionedMiner miner(o);
  const auto expected = MineCanonical(direct, db.value(), 20);
  const auto actual = MineCanonical(miner, db.value(), 20);
  ASSERT_GT(expected.size(), 0u);
  ExpectSameResults(expected, actual, "quest-partitioned");
}

TEST(PartitionedMinerTest, RejectsBadArguments) {
  Database db = MakeDb({{0}});
  PartitionOptions o;
  o.num_partitions = 0;
  PartitionedMiner miner(o);
  CollectingSink sink;
  EXPECT_FALSE(miner.Mine(db, 1, &sink).ok());
  PartitionedMiner ok_miner{PartitionOptions{}};
  EXPECT_FALSE(ok_miner.Mine(db, 0, &sink).ok());
  EXPECT_FALSE(ok_miner.Mine(db, 1, nullptr).ok());
}

TEST(PartitionedMinerTest, EmptyDatabase) {
  PartitionedMiner miner{PartitionOptions{}};
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(Database(), 1, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace fpm
