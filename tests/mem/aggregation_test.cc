#include "fpm/mem/aggregation.h"

#include <gtest/gtest.h>

#include <vector>

namespace fpm {
namespace {

TEST(LinkedListTest, PreservesOrder) {
  Arena arena;
  LinkedList<int> list(&arena);
  for (int i = 0; i < 100; ++i) list.PushBack(i);
  EXPECT_EQ(list.size(), 100u);
  int expect = 0;
  list.ForEach([&](int v) { EXPECT_EQ(v, expect++); });
  EXPECT_EQ(expect, 100);
}

TEST(LinkedListTest, EmptyList) {
  Arena arena;
  LinkedList<int> list(&arena);
  EXPECT_TRUE(list.empty());
  int visits = 0;
  list.ForEach([&](int) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(AggregatedListTest, PreservesOrderAcrossSupernodes) {
  Arena arena;
  AggregatedList<uint32_t> list(&arena, /*capacity=*/4);
  for (uint32_t i = 0; i < 37; ++i) list.PushBack(i);
  EXPECT_EQ(list.size(), 37u);
  uint32_t expect = 0;
  list.ForEach([&](uint32_t v) { EXPECT_EQ(v, expect++); });
  EXPECT_EQ(expect, 37u);
}

TEST(AggregatedListTest, SupernodeCountMatchesCapacity) {
  Arena arena;
  AggregatedList<uint32_t> list(&arena, 8);
  for (uint32_t i = 0; i < 17; ++i) list.PushBack(i);
  size_t supernodes = 0;
  for (const auto* n = list.head(); n != nullptr; n = n->next) ++supernodes;
  EXPECT_EQ(supernodes, 3u);  // 8 + 8 + 1
}

TEST(AggregatedListTest, CacheLineCapacityFillsOneLine) {
  using List = AggregatedList<uint32_t>;
  const uint32_t cap = List::CacheLineCapacity();
  EXPECT_GT(cap, 0u);
  const size_t supernode_bytes =
      sizeof(List::SuperNode) + (cap - 1) * sizeof(uint32_t);
  EXPECT_LE(supernode_bytes, static_cast<size_t>(kCacheLineBytes));
  // Adding one more element would overflow the line.
  EXPECT_GT(supernode_bytes + sizeof(uint32_t),
            static_cast<size_t>(kCacheLineBytes));
}

TEST(AggregatedListTest, ZeroCapacityCoercedToOne) {
  Arena arena;
  AggregatedList<uint64_t> list(&arena, 0);
  list.PushBack(7);
  list.PushBack(8);
  EXPECT_EQ(list.capacity(), 1u);
  EXPECT_EQ(list.size(), 2u);
}

TEST(AggregatedListTest, PrefetchedTraversalVisitsEverything) {
  Arena arena;
  AggregatedList<int> list(&arena, 5);
  long sum = 0;
  for (int i = 1; i <= 100; ++i) list.PushBack(i);
  list.ForEachPrefetched([&](int v) { sum += v; });
  EXPECT_EQ(sum, 5050);
}

TEST(AggregatedListTest, LargePayloadTypes) {
  struct Wide {
    uint64_t a, b, c;
  };
  Arena arena;
  AggregatedList<Wide> list(&arena);  // capacity from cache line
  EXPECT_GE(list.capacity(), 1u);
  for (uint64_t i = 0; i < 10; ++i) list.PushBack({i, i * 2, i * 3});
  uint64_t idx = 0;
  list.ForEach([&](const Wide& w) {
    EXPECT_EQ(w.b, idx * 2);
    ++idx;
  });
  EXPECT_EQ(idx, 10u);
}

TEST(AggregationEquivalenceTest, BothListsProduceIdenticalSequences) {
  Arena arena;
  LinkedList<uint32_t> plain(&arena);
  AggregatedList<uint32_t> agg(&arena, 7);
  std::vector<uint32_t> input;
  for (uint32_t i = 0; i < 500; ++i) input.push_back(i * 2654435761u);
  for (uint32_t v : input) {
    plain.PushBack(v);
    agg.PushBack(v);
  }
  std::vector<uint32_t> a, b;
  plain.ForEach([&](uint32_t v) { a.push_back(v); });
  agg.ForEach([&](uint32_t v) { b.push_back(v); });
  EXPECT_EQ(a, input);
  EXPECT_EQ(b, input);
}

}  // namespace
}  // namespace fpm
