#include "fpm/mem/prefetch_pointers.h"

#include <gtest/gtest.h>

#include <vector>

namespace fpm {
namespace {

// Chain 0: 0 -> 1 -> 2 -> 3 -> end; chain 1: 4 -> 5 -> end.
std::vector<uint32_t> TwoChains() {
  return {1, 2, 3, kInvalidIndex, 5, kInvalidIndex};
}

TEST(JumpPointersTest, DistanceOne) {
  const auto next = TwoChains();
  const std::vector<uint32_t> heads = {0, 4};
  const auto jump = BuildJumpPointers(heads, next, 1);
  EXPECT_EQ(jump, next);  // distance 1 == the next pointer itself
}

TEST(JumpPointersTest, DistanceTwo) {
  const auto next = TwoChains();
  const std::vector<uint32_t> heads = {0, 4};
  const auto jump = BuildJumpPointers(heads, next, 2);
  EXPECT_EQ(jump[0], 2u);
  EXPECT_EQ(jump[1], 3u);
  EXPECT_EQ(jump[2], kInvalidIndex);
  EXPECT_EQ(jump[3], kInvalidIndex);
  EXPECT_EQ(jump[4], kInvalidIndex);  // chain shorter than distance
  EXPECT_EQ(jump[5], kInvalidIndex);
}

TEST(JumpPointersTest, DistanceBeyondChainLength) {
  const auto next = TwoChains();
  const std::vector<uint32_t> heads = {0, 4};
  const auto jump = BuildJumpPointers(heads, next, 10);
  for (uint32_t j : jump) EXPECT_EQ(j, kInvalidIndex);
}

TEST(JumpPointersTest, EmptyHeads) {
  const auto next = TwoChains();
  const auto jump = BuildJumpPointers({}, next, 2);
  for (uint32_t j : jump) EXPECT_EQ(j, kInvalidIndex);
}

TEST(JumpPointersTest, LongChainAllDistances) {
  // Chain of 100 nodes: jump[i] must be i+d.
  std::vector<uint32_t> next(100);
  for (uint32_t i = 0; i < 99; ++i) next[i] = i + 1;
  next[99] = kInvalidIndex;
  const std::vector<uint32_t> heads = {0};
  for (uint32_t d : {1u, 3u, 7u, 50u}) {
    const auto jump = BuildJumpPointers(heads, next, d);
    for (uint32_t i = 0; i < 100; ++i) {
      if (i + d < 100) {
        EXPECT_EQ(jump[i], i + d) << "d=" << d << " i=" << i;
      } else {
        EXPECT_EQ(jump[i], kInvalidIndex) << "d=" << d << " i=" << i;
      }
    }
  }
}

TEST(JumpPointersDeathTest, ZeroDistanceRejected) {
  const auto next = TwoChains();
  const std::vector<uint32_t> heads = {0};
  EXPECT_DEATH(BuildJumpPointers(heads, next, 0), "positive");
}

struct PNode {
  PNode* next = nullptr;
  PNode* jump = nullptr;
  int value = 0;
};

TEST(JumpPointersForChainTest, PointerVariant) {
  std::vector<PNode> nodes(6);
  for (int i = 0; i < 5; ++i) {
    nodes[i].next = &nodes[i + 1];
    nodes[i].value = i;
  }
  BuildJumpPointersForChain<PNode>(
      &nodes[0], 2, [](PNode* n) { return n->next; },
      [](PNode* n, PNode* target) { n->jump = target; });
  EXPECT_EQ(nodes[0].jump, &nodes[2]);
  EXPECT_EQ(nodes[3].jump, &nodes[5]);
  EXPECT_EQ(nodes[4].jump, nullptr);
  EXPECT_EQ(nodes[5].jump, nullptr);
}

}  // namespace
}  // namespace fpm
