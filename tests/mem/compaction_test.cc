#include "fpm/mem/compaction.h"

#include <gtest/gtest.h>

#include <vector>

namespace fpm {
namespace {

TEST(CompactCopyTest, GathersThroughPointers) {
  int a = 1, b = 2, c = 3;
  std::vector<const int*> ptrs = {&c, &a, &b};
  const std::vector<int> out = CompactCopy(std::span<const int* const>(ptrs));
  EXPECT_EQ(out, (std::vector<int>{3, 1, 2}));
}

TEST(CompactCopyTest, SkipsNulls) {
  int a = 5;
  std::vector<const int*> ptrs = {nullptr, &a, nullptr};
  const std::vector<int> out = CompactCopy(std::span<const int* const>(ptrs));
  EXPECT_EQ(out, (std::vector<int>{5}));
}

TEST(CompactGatherTest, GathersByIndex) {
  const std::vector<double> src = {0.0, 1.5, 3.0, 4.5};
  const std::vector<uint32_t> idx = {3, 0, 2};
  const std::vector<double> out = CompactGather(
      std::span<const double>(src), std::span<const uint32_t>(idx));
  EXPECT_EQ(out, (std::vector<double>{4.5, 0.0, 3.0}));
}

TEST(CounterTableTest, AddAndGet) {
  CounterTable t(10);
  t.Add(3, 5);
  t.Add(3, 2);
  t.Add(9, 1);
  EXPECT_EQ(t.Get(3), 7u);
  EXPECT_EQ(t.Get(9), 1u);
  EXPECT_EQ(t.Get(0), 0u);
}

TEST(CounterTableTest, ResetTouchedIsSelective) {
  CounterTable t(5);
  t.Add(1, 10);
  t.Add(2, 20);
  const std::vector<uint32_t> touched = {1};
  t.ResetTouched(touched);
  EXPECT_EQ(t.Get(1), 0u);
  EXPECT_EQ(t.Get(2), 20u);
}

TEST(CounterTableTest, ResetAll) {
  CounterTable t(4);
  for (uint32_t i = 0; i < 4; ++i) t.Add(i, i + 1);
  t.ResetAll();
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(t.Get(i), 0u);
}

TEST(CounterTableTest, DataIsContiguous) {
  CounterTable t(3);
  t.Add(0, 1);
  t.Add(1, 2);
  t.Add(2, 3);
  const uint32_t* d = t.data();
  EXPECT_EQ(d[0], 1u);
  EXPECT_EQ(d[1], 2u);
  EXPECT_EQ(d[2], 3u);
  EXPECT_EQ(t.size(), 3u);
}

}  // namespace
}  // namespace fpm
