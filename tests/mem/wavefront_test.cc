#include "fpm/mem/wavefront.h"

#include <gtest/gtest.h>

#include <vector>

namespace fpm {
namespace {

struct Node {
  Node* next = nullptr;
  int value = 0;
};

// Builds an array of short lists: list i holds values i*10, i*10+1, ...
std::vector<Node*> BuildLists(std::vector<Node>* storage, int num_lists,
                              int list_len) {
  storage->assign(static_cast<size_t>(num_lists * list_len), Node{});
  std::vector<Node*> heads(num_lists, nullptr);
  for (int i = 0; i < num_lists; ++i) {
    for (int j = 0; j < list_len; ++j) {
      Node& n = (*storage)[static_cast<size_t>(i * list_len + j)];
      n.value = i * 10 + j;
      n.next = (j + 1 < list_len)
                   ? &(*storage)[static_cast<size_t>(i * list_len + j + 1)]
                   : nullptr;
    }
    heads[i] = &(*storage)[static_cast<size_t>(i * list_len)];
  }
  return heads;
}

TEST(WaveFrontTest, VisitsEveryNodeInOrder) {
  std::vector<Node> storage;
  const auto heads = BuildLists(&storage, 5, 3);
  std::vector<int> visited;
  WaveFrontTraverse<Node>(
      heads, [](Node* n) { return n->next; },
      [&](size_t, Node* n) { visited.push_back(n->value); });
  std::vector<int> expected;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) expected.push_back(i * 10 + j);
  }
  EXPECT_EQ(visited, expected);
}

TEST(WaveFrontTest, ListIndexReported) {
  std::vector<Node> storage;
  const auto heads = BuildLists(&storage, 3, 2);
  WaveFrontTraverse<Node>(
      heads, [](Node* n) { return n->next; },
      [&](size_t list, Node* n) { EXPECT_EQ(n->value / 10, (int)list); });
}

TEST(WaveFrontTest, EmptyHeadArray) {
  std::vector<Node*> heads;
  int visits = 0;
  WaveFrontTraverse<Node>(
      heads, [](Node* n) { return n->next; },
      [&](size_t, Node*) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(WaveFrontTest, CustomDistancesStillVisitAll) {
  std::vector<Node> storage;
  const auto heads = BuildLists(&storage, 10, 4);
  WaveFrontOptions options;
  options.depth = 7;
  int visits = 0;
  WaveFrontTraverse<Node>(
      heads, [](Node* n) { return n->next; },
      [&](size_t, Node*) { ++visits; }, options);
  EXPECT_EQ(visits, 40);
}

TEST(WaveFrontIndexedTest, VisitsEveryIndexInOrder) {
  // Two chains over an index array: 0->1->end, 2->3->4->end.
  constexpr uint32_t kEnd = ~0u;
  const std::vector<uint32_t> next = {1, kEnd, 3, 4, kEnd};
  const std::vector<uint32_t> heads = {0, 2};
  std::vector<uint32_t> payload = {10, 11, 20, 21, 22};
  std::vector<uint32_t> visited;
  WaveFrontTraverseIndexed(
      heads, next, payload.data(), sizeof(uint32_t),
      [&](size_t, uint32_t idx) { visited.push_back(payload[idx]); });
  EXPECT_EQ(visited, (std::vector<uint32_t>{10, 11, 20, 21, 22}));
}

TEST(WaveFrontIndexedTest, EmptyChainsSkipped) {
  constexpr uint32_t kEnd = ~0u;
  const std::vector<uint32_t> next = {kEnd};
  const std::vector<uint32_t> heads = {kEnd, 0, kEnd};
  int payload = 0;
  std::vector<size_t> lists;
  WaveFrontTraverseIndexed(heads, next, &payload, sizeof(int),
                           [&](size_t list, uint32_t) {
                             lists.push_back(list);
                           });
  EXPECT_EQ(lists, (std::vector<size_t>{1}));
}

}  // namespace
}  // namespace fpm
