#include "fpm/perf/perf_counters.h"

#include <gtest/gtest.h>

#include "fpm/perf/perf_sampler.h"
#include "fpm/perf/platform_info.h"

namespace fpm {
namespace {

TEST(PlatformInfoTest, DetectsSomething) {
  const PlatformInfo info = PlatformInfo::Detect();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_FALSE(info.cpu_model.empty());
  const std::string s = info.ToString();
  EXPECT_NE(s.find("Processor type"), std::string::npos);
  EXPECT_NE(s.find("L1 data cache"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Group read-buffer parsing and multiplex scaling: pure functions over a
// synthetic PERF_FORMAT_GROUP buffer, no syscall involved.

constexpr PerfEventId kTwo[] = {PerfEventId::kCycles,
                                PerfEventId::kInstructions};

TEST(ParseGroupReadBufferTest, PassthroughWhenNotMultiplexed) {
  // {nr, time_enabled, time_running, values...} with enabled == running.
  const uint64_t words[] = {2, 1000, 1000, 500, 250};
  auto reading = ParseGroupReadBuffer(words, kTwo);
  ASSERT_TRUE(reading.ok()) << reading.status();
  EXPECT_FALSE(reading->multiplexed());
  ASSERT_EQ(reading->events.size(), 2u);
  EXPECT_EQ(reading->events[0].id, PerfEventId::kCycles);
  EXPECT_EQ(reading->events[0].raw, 500u);
  EXPECT_EQ(reading->events[0].value, 500u);
  EXPECT_EQ(reading->events[1].id, PerfEventId::kInstructions);
  EXPECT_EQ(reading->events[1].value, 250u);
}

TEST(ParseGroupReadBufferTest, ScalesMultiplexedCounts) {
  // Group ran half the window: estimates double the raw counts.
  const uint64_t words[] = {2, 2000, 1000, 500, 251};
  auto reading = ParseGroupReadBuffer(words, kTwo);
  ASSERT_TRUE(reading.ok()) << reading.status();
  EXPECT_TRUE(reading->multiplexed());
  EXPECT_EQ(reading->events[0].raw, 500u);
  EXPECT_EQ(reading->events[0].value, 1000u);
  EXPECT_EQ(reading->events[1].value, 502u);
}

TEST(ParseGroupReadBufferTest, RoundsToNearest) {
  // 100 * 3000/2000 = 150 exactly; 101 * 3/2 = 151.5 -> 152.
  const uint64_t words[] = {2, 3000, 2000, 100, 101};
  auto reading = ParseGroupReadBuffer(words, kTwo);
  ASSERT_TRUE(reading.ok());
  EXPECT_EQ(reading->events[0].value, 150u);
  EXPECT_EQ(reading->events[1].value, 152u);
}

TEST(ParseGroupReadBufferTest, NeverScheduledReadsZero) {
  const uint64_t words[] = {2, 5000, 0, 123, 456};
  auto reading = ParseGroupReadBuffer(words, kTwo);
  ASSERT_TRUE(reading.ok());
  EXPECT_EQ(reading->events[0].value, 0u);
  EXPECT_EQ(reading->events[1].value, 0u);
  // Raw values survive for diagnostics.
  EXPECT_EQ(reading->events[0].raw, 123u);
}

TEST(ParseGroupReadBufferTest, RejectsShortAndMismatchedBuffers) {
  const uint64_t header_only[] = {2, 1000};
  EXPECT_FALSE(ParseGroupReadBuffer(header_only, kTwo).ok());
  const uint64_t wrong_nr[] = {3, 1000, 1000, 1, 2, 3};
  EXPECT_FALSE(ParseGroupReadBuffer(wrong_nr, kTwo).ok());
  const uint64_t truncated[] = {2, 1000, 1000, 1};
  EXPECT_FALSE(ParseGroupReadBuffer(truncated, kTwo).ok());
}

TEST(ParseGroupReadBufferTest, FindLocatesEventsById) {
  const uint64_t words[] = {2, 10, 10, 7, 9};
  auto reading = ParseGroupReadBuffer(words, kTwo);
  ASSERT_TRUE(reading.ok());
  const PerfEventReading* ins = reading->Find(PerfEventId::kInstructions);
  ASSERT_NE(ins, nullptr);
  EXPECT_EQ(ins->value, 9u);
  EXPECT_EQ(reading->Find(PerfEventId::kBranchMisses), nullptr);
}

TEST(PerfEventNameTest, NamesAreStableSnakeCase) {
  EXPECT_EQ(PerfEventName(PerfEventId::kCycles), "cycles");
  EXPECT_EQ(PerfEventName(PerfEventId::kInstructions), "instructions");
  EXPECT_EQ(PerfEventName(PerfEventId::kCacheMisses), "cache_misses");
  EXPECT_EQ(PerfEventName(PerfEventId::kL1dReadMisses), "l1d_read_misses");
  EXPECT_EQ(PerfEventName(PerfEventId::kDtlbReadMisses), "dtlb_read_misses");
  EXPECT_EQ(PerfCounterGroup::DefaultEvents().size(),
            static_cast<size_t>(kNumPerfEvents));
}

// ---------------------------------------------------------------------------
// Derived gauges (perf_sampler.h helper) — pure computation.

TEST(DerivedPerfGaugesTest, ComputesCpiAndMpkiInMilliUnits) {
  const std::vector<std::pair<std::string, uint64_t>> counters = {
      {"cycles", 3000}, {"instructions", 2000}, {"cache_misses", 10},
      {"dtlb_read_misses", 4}};
  std::vector<std::pair<std::string, uint64_t>> gauges;
  AppendDerivedPerfGauges(counters, &gauges);
  ASSERT_EQ(gauges.size(), 3u);
  EXPECT_EQ(gauges[0].first, "cpi_milli");
  EXPECT_EQ(gauges[0].second, 1500u);  // CPI 1.5
  EXPECT_EQ(gauges[1].first, "cache_mpki_milli");
  EXPECT_EQ(gauges[1].second, 5000u);  // 10 misses / 2 kilo-instr = 5 MPKI
  EXPECT_EQ(gauges[2].first, "dtlb_mpki_milli");
  EXPECT_EQ(gauges[2].second, 2000u);
}

TEST(DerivedPerfGaugesTest, SkipsRatiosWithMissingOrZeroDenominator) {
  std::vector<std::pair<std::string, uint64_t>> gauges;
  AppendDerivedPerfGauges({{"cycles", 100}}, &gauges);
  EXPECT_TRUE(gauges.empty());
  AppendDerivedPerfGauges({{"cycles", 100}, {"instructions", 0}}, &gauges);
  EXPECT_TRUE(gauges.empty());
  // Instructions alone derive nothing either.
  AppendDerivedPerfGauges({{"instructions", 100}}, &gauges);
  EXPECT_TRUE(gauges.empty());
}

// ---------------------------------------------------------------------------
// Live smoke tests: skip (never fail) where the kernel refuses
// perf_event_open — the common container case.

TEST(PerfCounterGroupTest, CountsWorkWhenAvailable) {
  auto group = PerfCounterGroup::Create();
  if (!group.ok()) {
    GTEST_SKIP() << "perf counters unavailable: " << group.status();
  }
  EXPECT_FALSE(group->events().empty());
  for (const auto& [id, reason] : group->dropped()) {
    EXPECT_FALSE(reason.empty()) << PerfEventName(id);
  }
  ASSERT_TRUE(group->Start().ok());
  volatile uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<uint64_t>(i);
  ASSERT_TRUE(group->Stop().ok());
  auto reading = group->Read();
  ASSERT_TRUE(reading.ok()) << reading.status();
  ASSERT_EQ(reading->events.size(), group->events().size());
  const PerfEventReading* ins = reading->Find(PerfEventId::kInstructions);
  if (ins != nullptr) {
    EXPECT_GT(ins->value, 100000u);
  }
  const PerfEventReading* cyc = reading->Find(PerfEventId::kCycles);
  ASSERT_NE(cyc, nullptr);  // cycles leads DefaultEvents()
  EXPECT_GT(cyc->value, 0u);
}

TEST(PerfCounterGroupTest, AvailabilityProbeConsistent) {
  const Status status = PerfCountersStatus();
  EXPECT_EQ(PerfCountersAvailable(), status.ok());
  constexpr PerfEventId kProbe[] = {PerfEventId::kCycles};
  auto group = PerfCounterGroup::Create(kProbe);
  EXPECT_EQ(status.ok(), group.ok());
  if (!status.ok()) {
    // The degradation reason names the syscall and the paranoid knob.
    EXPECT_NE(status.message().find("perf_event"), std::string::npos);
  }
}

TEST(PerfCounterGroupTest, MoveTransfersOwnership) {
  auto group = PerfCounterGroup::Create();
  if (!group.ok()) GTEST_SKIP() << "perf counters unavailable";
  PerfCounterGroup moved = std::move(group).value();
  EXPECT_TRUE(moved.Start().ok());
  EXPECT_TRUE(moved.Stop().ok());
  EXPECT_TRUE(moved.Read().ok());
}

TEST(PerfSamplerTest, LatchesPhaseDeltasWhenAvailable) {
  auto sampler = PerfSampler::Create();
  if (!sampler.ok()) {
    GTEST_SKIP() << "perf counters unavailable: " << sampler.status();
  }
  (*sampler)->OnPhaseBegin();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<uint64_t>(i);
  PhaseSampleDeltas deltas;
  (*sampler)->OnPhaseEnd("mine", &deltas);
  ASSERT_FALSE(deltas.counters.empty());
  EXPECT_EQ(deltas.counters.size(), (*sampler)->events().size());
  bool saw_cycles = false;
  for (const auto& [name, value] : deltas.counters) {
    if (name == "cycles") {
      saw_cycles = true;
      EXPECT_GT(value, 0u);
    }
  }
  EXPECT_TRUE(saw_cycles);
}

}  // namespace
}  // namespace fpm
