#include "fpm/perf/perf_counters.h"

#include <gtest/gtest.h>

#include "fpm/perf/platform_info.h"

namespace fpm {
namespace {

TEST(PlatformInfoTest, DetectsSomething) {
  const PlatformInfo info = PlatformInfo::Detect();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_FALSE(info.cpu_model.empty());
  const std::string s = info.ToString();
  EXPECT_NE(s.find("Processor type"), std::string::npos);
  EXPECT_NE(s.find("L1 data cache"), std::string::npos);
}

TEST(CpiCounterTest, CountsWorkWhenAvailable) {
  auto counter = CpiCounter::Create();
  if (!counter.ok()) {
    GTEST_SKIP() << "perf counters unavailable: " << counter.status();
  }
  ASSERT_TRUE(counter->Start().ok());
  // Burn a known-nonzero amount of work.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<uint64_t>(i);
  ASSERT_TRUE(counter->Stop().ok());
  EXPECT_GT(counter->instructions(), 100000u);
  EXPECT_GT(counter->cycles(), 0u);
  EXPECT_GT(counter->Cpi(), 0.0);
  EXPECT_LT(counter->Cpi(), 50.0);
}

TEST(CpiCounterTest, AvailabilityProbeConsistent) {
  const bool available = CpiCountersAvailable();
  auto counter = CpiCounter::Create();
  EXPECT_EQ(available, counter.ok());
}

TEST(CpiCounterTest, MoveTransfersOwnership) {
  auto counter = CpiCounter::Create();
  if (!counter.ok()) GTEST_SKIP() << "perf counters unavailable";
  CpiCounter moved = std::move(counter).value();
  EXPECT_TRUE(moved.Start().ok());
  EXPECT_TRUE(moved.Stop().ok());
}

TEST(CpiCounterTest, ZeroInstructionsGivesZeroCpi) {
  auto counter = CpiCounter::Create();
  if (!counter.ok()) GTEST_SKIP() << "perf counters unavailable";
  // Never started: both counters are zero.
  EXPECT_EQ(counter->Cpi(), 0.0);
}

}  // namespace
}  // namespace fpm
