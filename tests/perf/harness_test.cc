#include "fpm/perf/harness.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "fpm/algo/lcm/lcm_miner.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;

TEST(MeasureMinerTest, ReportsConsistentOutput) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  LcmMiner miner;
  const Measurement m = MeasureMiner(miner, db, 2, /*repeats=*/3);
  EXPECT_EQ(m.name, "lcm");
  EXPECT_EQ(m.num_frequent, 5u);
  EXPECT_GE(m.seconds, 0.0);
  EXPECT_NE(m.checksum, 0u);
}

TEST(ComputeSpeedupsTest, BaselineIsOne) {
  Measurement base;
  base.name = "base";
  base.seconds = 2.0;
  base.checksum = 42;
  Measurement fast = base;
  fast.name = "fast";
  fast.seconds = 1.0;
  const auto rows = ComputeSpeedups(base, {base, fast});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].speedup, 2.0);
}

TEST(ComputeSpeedupsDeathTest, ChecksumMismatchDies) {
  Measurement base;
  base.checksum = 1;
  base.seconds = 1.0;
  Measurement other;
  other.checksum = 2;
  other.seconds = 1.0;
  other.name = "broken";
  EXPECT_DEATH(ComputeSpeedups(base, {other}), "different itemsets");
}

TEST(BenchKnobsTest, EnvOverridesRespected) {
  setenv("FPM_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.5);
  setenv("FPM_BENCH_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.05);
  unsetenv("FPM_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(), 0.05);

  setenv("FPM_BENCH_REPEATS", "7", 1);
  EXPECT_EQ(BenchRepeats(), 7);
  unsetenv("FPM_BENCH_REPEATS");
  EXPECT_EQ(BenchRepeats(), 2);
}

}  // namespace
}  // namespace fpm
