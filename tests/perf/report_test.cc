#include "fpm/perf/report.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable t({"name", "time"});
  t.AddRow({"a", "1.0s"});
  t.AddRow({"longer-name", "2.0s"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name        | time |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer-name | 2.0s |"), std::string::npos) << s;
}

TEST(ReportTableTest, ShortRowsPadded) {
  ReportTable t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.ToString().find("| x | "), std::string::npos);
}

TEST(ReportTableDeathTest, OverlongRowDies) {
  ReportTable t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "cells");
}

TEST(FormattersTest, Seconds) {
  EXPECT_EQ(FormatSeconds(0.1239), "0.124s");
  EXPECT_EQ(FormatSeconds(12.0), "12.000s");
}

TEST(FormattersTest, Speedup) {
  EXPECT_EQ(FormatSpeedup(1.0), "1.00x");
  EXPECT_EQ(FormatSpeedup(2.147), "2.15x");
}

TEST(FormattersTest, CountWithSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

}  // namespace
}  // namespace fpm
