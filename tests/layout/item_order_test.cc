#include "fpm/layout/item_order.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

Database MakeDb(std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

TEST(ItemOrderTest, RanksByDecreasingFrequency) {
  // freq: 0->1, 1->3, 2->2
  Database db = MakeDb({{0, 1, 2}, {1, 2}, {1}});
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  EXPECT_EQ(order.RankOf(1), 0u);
  EXPECT_EQ(order.RankOf(2), 1u);
  EXPECT_EQ(order.RankOf(0), 2u);
  EXPECT_EQ(order.ItemAt(0), 1u);
  EXPECT_EQ(order.ItemAt(2), 0u);
}

TEST(ItemOrderTest, TieBrokenByItemId) {
  Database db = MakeDb({{3, 1}, {1, 3}});
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  EXPECT_LT(order.RankOf(1), order.RankOf(3));
}

TEST(ItemOrderTest, RoundTripBijective) {
  Database db = MakeDb({{5, 2, 9}, {2}, {9, 2}});
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  for (Item i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order.RankOf(order.ItemAt(i)), i);
    EXPECT_EQ(order.ItemAt(order.RankOf(i)), i);
  }
}

TEST(ItemOrderTest, WeightedFrequenciesRespected) {
  DatabaseBuilder b;
  b.AddTransaction({0}, 10);
  b.AddTransaction({1}, 1);
  b.AddTransaction({1}, 1);
  Database db = b.Build();
  // item 0 weighted freq 10 beats item 1 freq 2 despite fewer rows.
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  EXPECT_EQ(order.RankOf(0), 0u);
}

TEST(RemapItemsTest, TransactionsSortedByRank) {
  // freq: a=0:1, b=1:2, c=2:3 -> ranks: c=0, b=1, a=2
  Database db = MakeDb({{0, 1, 2}, {1, 2}, {2}});
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  Database ranked = RemapItems(db, order);
  auto t0 = ranked.transaction(0);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(t0[0], 0u);  // c first (most frequent)
  EXPECT_EQ(t0[1], 1u);  // b
  EXPECT_EQ(t0[2], 2u);  // a
}

TEST(RemapItemsTest, PreservesTransactionOrderAndWeights) {
  DatabaseBuilder b;
  b.AddTransaction({4}, 2);
  b.AddTransaction({4, 7}, 5);
  Database db = b.Build();
  Database ranked = RemapItems(db, ItemOrder::ByDecreasingFrequency(db));
  EXPECT_EQ(ranked.num_transactions(), 2u);
  EXPECT_EQ(ranked.weight(0), 2u);
  EXPECT_EQ(ranked.weight(1), 5u);
  EXPECT_EQ(ranked.transaction(0).size(), 1u);
}

TEST(RemapItemsTest, FrequenciesArePermuted) {
  Database db = MakeDb({{0, 1, 2}, {1, 2}, {2}});
  Database ranked = RemapItems(db, ItemOrder::ByDecreasingFrequency(db));
  const auto& f = ranked.item_frequencies();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], 3u);
  EXPECT_EQ(f[1], 2u);
  EXPECT_EQ(f[2], 1u);
}

}  // namespace
}  // namespace fpm
