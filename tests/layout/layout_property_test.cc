// Property sweeps for the layout library across all three dataset
// generators: P1's invariants must hold on any input family.

#include <gtest/gtest.h>

#include <numeric>

#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/standin_gen.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/layout/locality_metrics.h"

namespace fpm {
namespace {

enum class Source { kQuest, kWebDocs, kAp };

struct Case {
  Source source;
  uint64_t seed;
};

Database Generate(const Case& c) {
  switch (c.source) {
    case Source::kQuest: {
      QuestParams p;
      p.num_transactions = 1500;
      p.avg_transaction_len = 9;
      p.avg_pattern_len = 3;
      p.num_items = 120;
      p.num_patterns = 50;
      p.seed = c.seed;
      return GenerateQuest(p).value();
    }
    case Source::kWebDocs: {
      WebDocsLikeParams p;
      p.num_transactions = 1200;
      p.vocabulary = 900;
      p.avg_length = 25;
      p.num_topics = 6;
      p.topic_vocabulary = 120;
      p.seed = c.seed;
      return GenerateWebDocsLike(p).value();
    }
    case Source::kAp: {
      ApLikeParams p;
      p.num_transactions = 2000;
      p.vocabulary = 2500;
      p.avg_length = 6;
      p.seed = c.seed;
      return GenerateApLike(p).value();
    }
  }
  return Database();
}

class LexPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(LexPropertyTest, PermutationIsABijection) {
  Database db = Generate(GetParam());
  LexicographicResult lex = LexicographicOrder(db);
  std::vector<bool> seen(db.num_transactions(), false);
  ASSERT_EQ(lex.tid_permutation.size(), db.num_transactions());
  for (Tid t : lex.tid_permutation) {
    ASSERT_LT(t, db.num_transactions());
    EXPECT_FALSE(seen[t]);
    seen[t] = true;
  }
}

TEST_P(LexPropertyTest, PermutationMapsTransactionsFaithfully) {
  Database db = Generate(GetParam());
  LexicographicResult lex = LexicographicOrder(db);
  // Transaction at new position t must be the rank-mapped image of the
  // original at tid_permutation[t].
  for (Tid t = 0; t < db.num_transactions(); t += 37) {
    const auto original = db.transaction(lex.tid_permutation[t]);
    const auto mapped = lex.database.transaction(t);
    ASSERT_EQ(original.size(), mapped.size());
    std::vector<Item> expect;
    for (Item raw : original) expect.push_back(lex.item_order.RankOf(raw));
    std::sort(expect.begin(), expect.end());
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), mapped.begin()));
    EXPECT_EQ(db.weight(lex.tid_permutation[t]), lex.database.weight(t));
  }
}

TEST_P(LexPropertyTest, TotalIncidencesAndWeightPreserved) {
  Database db = Generate(GetParam());
  LexicographicResult lex = LexicographicOrder(db);
  EXPECT_EQ(lex.database.num_entries(), db.num_entries());
  EXPECT_EQ(lex.database.total_weight(), db.total_weight());
}

TEST_P(LexPropertyTest, RankZeroIsContiguousAfterLex) {
  Database db = Generate(GetParam());
  LexicographicResult lex = LexicographicOrder(db);
  const auto runs = ItemRunCounts(lex.database);
  if (!runs.empty() && runs[0] > 0) {
    EXPECT_EQ(runs[0], 1u) << "most frequent item must form one run";
  }
}

TEST_P(LexPropertyTest, DiscontinuitiesNeverIncrease) {
  Database db = Generate(GetParam());
  LexicographicResult lex = LexicographicOrder(db);
  // Compare in the rank-mapped space (same multiset of transactions,
  // only the order differs): measure the rank-mapped-but-unsorted
  // database against the sorted one.
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  Database ranked = RemapItems(db, order);
  EXPECT_LE(TotalDiscontinuities(lex.database),
            TotalDiscontinuities(ranked));
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  static const char* kNames[] = {"quest", "webdocs", "ap"};
  return std::string(kNames[static_cast<int>(info.param.source)]) +
         "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Generators, LexPropertyTest,
    ::testing::Values(Case{Source::kQuest, 1}, Case{Source::kQuest, 2},
                      Case{Source::kWebDocs, 1}, Case{Source::kWebDocs, 2},
                      Case{Source::kAp, 1}, Case{Source::kAp, 2}),
    CaseName);

class QuestShapeTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(QuestShapeTest, AverageLengthTracksT) {
  const auto [t_param, i_param] = GetParam();
  QuestParams p;
  p.num_transactions = 3000;
  p.avg_transaction_len = t_param;
  p.avg_pattern_len = i_param;
  p.num_items = 500;
  p.num_patterns = 100;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok());
  // The carry-over mechanism biases slightly; a third either way is a
  // real defect, not noise.
  EXPECT_GT(db->average_length(), t_param * 0.67) << p.Name();
  EXPECT_LT(db->average_length(), t_param * 1.5) << p.Name();
}

std::string QuestShapeName(
    const ::testing::TestParamInfo<std::pair<double, double>>& info) {
  return "T" + std::to_string(static_cast<int>(info.param.first)) + "I" +
         std::to_string(static_cast<int>(info.param.second));
}

INSTANTIATE_TEST_SUITE_P(ParameterGrid, QuestShapeTest,
                         ::testing::Values(std::pair{5.0, 2.0},
                                           std::pair{10.0, 4.0},
                                           std::pair{20.0, 6.0},
                                           std::pair{40.0, 10.0}),
                         QuestShapeName);

}  // namespace
}  // namespace fpm
