#include "fpm/layout/lexicographic.h"

#include <gtest/gtest.h>

#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/stats.h"

namespace fpm {
namespace {

Database MakeDb(std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

// Reproduces Table 1 of the paper exactly. Raw items a..f are 0..5.
// Input:  {a,c,f} {b,c,f} {a,c,f} {d,e} {a,b,c,d,e,f}
// Output alphabet (decreasing frequency): c,f,a,b,d,e
// Output: {c,f,a} {c,f,a} {c,f,a,b,d,e} {c,f,b} {d,e}
TEST(LexicographicTest, ReproducesPaperTable1) {
  constexpr Item a = 0, b = 1, c = 2, d = 3, e = 4, f = 5;
  Database db = MakeDb({{a, c, f}, {b, c, f}, {a, c, f}, {d, e},
                        {a, b, c, d, e, f}});
  LexicographicResult lex = LexicographicOrder(db);

  // Alphabet: c,f have freq 4; a 3; b 2; d,e 2. Decreasing frequency with
  // id tie-break: c,f,a,b,d,e.
  EXPECT_EQ(lex.item_order.ItemAt(0), c);
  EXPECT_EQ(lex.item_order.ItemAt(1), f);
  EXPECT_EQ(lex.item_order.ItemAt(2), a);
  EXPECT_EQ(lex.item_order.ItemAt(3), b);
  EXPECT_EQ(lex.item_order.ItemAt(4), d);
  EXPECT_EQ(lex.item_order.ItemAt(5), e);

  const Database& out = lex.database;
  ASSERT_EQ(out.num_transactions(), 5u);
  auto decode = [&](Tid t) {
    std::vector<Item> raw;
    for (Item r : out.transaction(t)) raw.push_back(lex.item_order.ItemAt(r));
    return raw;
  };
  EXPECT_EQ(decode(0), (std::vector<Item>{c, f, a}));
  EXPECT_EQ(decode(1), (std::vector<Item>{c, f, a}));
  EXPECT_EQ(decode(2), (std::vector<Item>{c, f, a, b, d, e}));
  EXPECT_EQ(decode(3), (std::vector<Item>{c, f, b}));
  EXPECT_EQ(decode(4), (std::vector<Item>{d, e}));
}

TEST(LexicographicTest, PermutationIsValid) {
  Database db = MakeDb({{3, 1}, {2}, {1}, {3, 1, 2}});
  LexicographicResult lex = LexicographicOrder(db);
  ASSERT_EQ(lex.tid_permutation.size(), 4u);
  std::vector<bool> seen(4, false);
  for (Tid t : lex.tid_permutation) {
    ASSERT_LT(t, 4u);
    EXPECT_FALSE(seen[t]);
    seen[t] = true;
  }
}

TEST(LexicographicTest, PreservesMultisetOfTransactions) {
  Database db = MakeDb({{0, 2}, {1}, {0, 2}, {2, 1, 0}});
  LexicographicResult lex = LexicographicOrder(db);
  EXPECT_EQ(lex.database.num_transactions(), db.num_transactions());
  EXPECT_EQ(lex.database.num_entries(), db.num_entries());
  // Total weight and per-rank frequencies must match the originals.
  EXPECT_EQ(lex.database.total_weight(), db.total_weight());
  const auto& orig_freq = db.item_frequencies();
  const auto& new_freq = lex.database.item_frequencies();
  for (Item i = 0; i < orig_freq.size(); ++i) {
    EXPECT_EQ(new_freq[lex.item_order.RankOf(i)], orig_freq[i]);
  }
}

TEST(LexicographicTest, OutputIsSorted) {
  auto dbr = GenerateQuest([] {
    QuestParams p;
    p.num_transactions = 500;
    p.avg_transaction_len = 8;
    p.avg_pattern_len = 3;
    p.num_items = 100;
    p.num_patterns = 50;
    return p;
  }());
  ASSERT_TRUE(dbr.ok());
  LexicographicResult lex = LexicographicOrder(dbr.value());
  const Database& out = lex.database;
  for (Tid t = 1; t < out.num_transactions(); ++t) {
    auto prev = out.transaction(t - 1);
    auto cur = out.transaction(t);
    EXPECT_FALSE(std::lexicographical_compare(cur.begin(), cur.end(),
                                              prev.begin(), prev.end()))
        << "transaction " << t << " sorts before its predecessor";
  }
}

TEST(LexicographicTest, IncreasesConsecutiveJaccardOnRandomInput) {
  auto dbr = GenerateQuest([] {
    QuestParams p;
    p.num_transactions = 2000;
    p.avg_transaction_len = 10;
    p.avg_pattern_len = 4;
    p.num_items = 150;
    p.num_patterns = 60;
    return p;
  }());
  ASSERT_TRUE(dbr.ok());
  const double before = ConsecutiveJaccard(dbr.value());
  LexicographicResult lex = LexicographicOrder(dbr.value());
  const double after = ConsecutiveJaccard(lex.database);
  EXPECT_GT(after, before)
      << "P1 must cluster similar transactions together";
}

TEST(LexicographicTest, WeightsFollowTransactions) {
  DatabaseBuilder b;
  b.AddTransaction({9}, 7);   // rare item -> sorts last
  b.AddTransaction({0}, 3);   // frequent item
  b.AddTransaction({0, 9}, 1);
  Database db = b.Build();
  LexicographicResult lex = LexicographicOrder(db);
  // After ranking, transactions starting with rank 0 come first.
  Support total = 0;
  for (Tid t = 0; t < lex.database.num_transactions(); ++t) {
    total += lex.database.weight(t);
  }
  EXPECT_EQ(total, 11u);
}

TEST(LexicographicSortOnlyTest, SortsWithoutRemap) {
  Database db = MakeDb({{2, 0}, {0, 1}, {0}});
  LexicographicResult lex = LexicographicSortTransactions(db);
  auto t0 = lex.database.transaction(0);
  EXPECT_EQ(t0[0], 0u);  // {0} first
  EXPECT_EQ(t0.size(), 1u);
  EXPECT_EQ(lex.database.transaction(1)[1], 1u);  // then {0,1}
  EXPECT_EQ(lex.database.transaction(2)[0], 2u);  // then {2,0}
}

}  // namespace
}  // namespace fpm
