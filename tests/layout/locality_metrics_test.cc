#include "fpm/layout/locality_metrics.h"

#include <gtest/gtest.h>

#include "fpm/dataset/quest_gen.h"
#include "fpm/layout/lexicographic.h"

namespace fpm {
namespace {

Database MakeDb(std::initializer_list<std::initializer_list<Item>> txs) {
  DatabaseBuilder b;
  for (const auto& tx : txs) b.AddTransaction(tx);
  return b.Build();
}

TEST(RunCountsTest, ContiguousItemHasOneRun) {
  Database db = MakeDb({{0}, {0}, {0}, {1}});
  auto runs = ItemRunCounts(db);
  EXPECT_EQ(runs[0], 1u);
  EXPECT_EQ(runs[1], 1u);
}

TEST(RunCountsTest, ScatteredItemHasManyRuns) {
  Database db = MakeDb({{0}, {1}, {0}, {1}, {0}});
  auto runs = ItemRunCounts(db);
  EXPECT_EQ(runs[0], 3u);
  EXPECT_EQ(runs[1], 2u);
}

TEST(RunCountsTest, AbsentItemHasZeroRuns) {
  Database db = MakeDb({{0, 2}});
  auto runs = ItemRunCounts(db);
  EXPECT_EQ(runs[1], 0u);
}

TEST(DiscontinuityTest, PerfectLayoutHasZero) {
  Database db = MakeDb({{0}, {0}, {1}, {1}});
  EXPECT_EQ(TotalDiscontinuities(db), 0u);
}

TEST(DiscontinuityTest, CountsBreaks) {
  // item 0: rows 0,2 -> 2 runs -> 1 discontinuity.
  // item 1: rows 1,3 -> 2 runs -> 1 discontinuity.
  Database db = MakeDb({{0}, {1}, {0}, {1}});
  EXPECT_EQ(TotalDiscontinuities(db), 2u);
}

TEST(DiscontinuityTest, FrequencyWeightingScalesWithFrequency) {
  // Item 0 occurs 4x with 3 runs; item 1 occurs 2x with 2 runs.
  Database db = MakeDb({{0}, {1}, {0}, {1}, {0}, {0}});
  // weighted = (3-1)*4 + (2-1)*2 = 10
  EXPECT_DOUBLE_EQ(FrequencyWeightedDiscontinuities(db), 10.0);
}

TEST(DiscontinuityTest, LexOrderingReducesDiscontinuities) {
  auto dbr = GenerateQuest([] {
    QuestParams p;
    p.num_transactions = 3000;
    p.avg_transaction_len = 10;
    p.avg_pattern_len = 4;
    p.num_items = 200;
    p.num_patterns = 80;
    return p;
  }());
  ASSERT_TRUE(dbr.ok());
  const uint64_t before = TotalDiscontinuities(dbr.value());
  LexicographicResult lex = LexicographicOrder(dbr.value());
  const uint64_t after = TotalDiscontinuities(lex.database);
  EXPECT_LT(after, before)
      << "paper §3.2: lex ordering reduces total discontinuities";
}

TEST(DiscontinuityTest, MostFrequentItemContiguousAfterLex) {
  auto dbr = GenerateQuest([] {
    QuestParams p;
    p.num_transactions = 1000;
    p.avg_transaction_len = 8;
    p.avg_pattern_len = 3;
    p.num_items = 100;
    p.num_patterns = 40;
    return p;
  }());
  ASSERT_TRUE(dbr.ok());
  LexicographicResult lex = LexicographicOrder(dbr.value());
  auto runs = ItemRunCounts(lex.database);
  // Paper §3.2: "in the lexicographic layout all transactions on the most
  // frequent item are contiguous" — rank 0 must have exactly one run.
  ASSERT_GT(runs.size(), 0u);
  EXPECT_EQ(runs[0], 1u);
  // "transactions on the second most frequent item have at most one
  // discontinuity": rank 1 has at most 2 runs.
  if (runs.size() > 1 && runs[1] > 0) {
    EXPECT_LE(runs[1], 2u);
  }
}

}  // namespace
}  // namespace fpm
