// Model-vs-model property test: CacheModel must agree, access for
// access, with a trivially correct reference simulator (per-set vector
// of tags with explicit LRU ordering) on random traces across
// geometries.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "fpm/common/rng.h"
#include "fpm/simcache/cache_model.h"

namespace fpm {
namespace {

// Obviously-correct reference: one deque of line addresses per set,
// front = most recently used.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config)
      : ways_(config.ways), line_bytes_(config.line_bytes) {
    num_sets_ = static_cast<uint32_t>(
        config.size_bytes /
        (static_cast<size_t>(config.ways) * config.line_bytes));
    sets_.resize(num_sets_);
  }

  bool Access(uint64_t addr) {
    const uint64_t line = addr / line_bytes_;
    auto& set = sets_[line % num_sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.erase(it);
        set.push_front(line);
        return true;
      }
    }
    set.push_front(line);
    if (set.size() > ways_) set.pop_back();
    return false;
  }

 private:
  uint32_t ways_;
  uint32_t line_bytes_;
  uint32_t num_sets_;
  std::vector<std::deque<uint64_t>> sets_;
};

class CachePropertyTest : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CachePropertyTest, AgreesWithReferenceOnRandomTrace) {
  const CacheConfig config = GetParam();
  ASSERT_TRUE(config.Validate().ok());
  CacheModel model(config);
  ReferenceCache reference(config);
  Rng rng(4242);
  // Mixed trace: mostly a small hot region (hits + conflicts), plus a
  // cold stream.
  for (int i = 0; i < 50000; ++i) {
    uint64_t addr;
    if (rng.NextBool(0.7)) {
      addr = rng.NextBounded(4 * config.size_bytes);
    } else {
      addr = rng.NextBounded(1ull << 24);
    }
    const bool expect = reference.Access(addr);
    const bool actual = model.Access(addr);
    ASSERT_EQ(expect, actual) << "access " << i << " addr " << addr;
  }
  EXPECT_EQ(model.stats().accesses, 50000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CachePropertyTest,
    ::testing::Values(CacheConfig{512, 2, 64},        // tiny
                      CacheConfig{16 * 1024, 8, 64},  // M1 L1
                      CacheConfig{64 * 1024, 2, 64},  // M2 L1
                      CacheConfig{4096, 1, 64},       // direct mapped
                      CacheConfig{4096, 64, 64}),     // fully associative
    [](const auto& info) {
      return std::to_string(info.param.size_bytes) + "B_" +
             std::to_string(info.param.ways) + "way";
    });

TEST(TlbPropertyTest, AgreesWithFullyAssociativeReference) {
  // The TLB is a fully associative cache with 4K "lines".
  CacheConfig as_cache{32 * 4096, 32, 4096};
  ReferenceCache reference(as_cache);
  TlbModel tlb(32, 4096);
  Rng rng(777);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t addr = rng.NextBounded(1ull << 28);
    ASSERT_EQ(reference.Access(addr), tlb.Access(addr)) << "access " << i;
  }
}

}  // namespace
}  // namespace fpm
