#include "fpm/simcache/memory_system.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(MemorySystemConfigTest, PresetsAreValid) {
  for (const auto& config :
       {MemorySystemConfig::PentiumD(), MemorySystemConfig::Athlon64X2(),
        MemorySystemConfig::Host()}) {
    EXPECT_TRUE(config.l1.Validate().ok()) << config.name;
    EXPECT_TRUE(config.l2.Validate().ok()) << config.name;
    EXPECT_GT(config.tlb_entries, 0u) << config.name;
  }
}

TEST(MemorySystemConfigTest, PresetsMatchTable5) {
  const auto m1 = MemorySystemConfig::PentiumD();
  EXPECT_EQ(m1.l1.size_bytes, 16u * 1024);
  EXPECT_EQ(m1.l2.size_bytes, 1024u * 1024);
  const auto m2 = MemorySystemConfig::Athlon64X2();
  EXPECT_EQ(m2.l1.size_bytes, 64u * 1024);
  EXPECT_EQ(m2.l2.size_bytes, 512u * 1024);
}

TEST(MemorySystemTest, MissesFlowDownTheHierarchy) {
  MemorySystem mem(MemorySystemConfig::PentiumD());
  mem.Touch(0x10000, 4);
  const auto s = mem.stats();
  EXPECT_EQ(s.l1.accesses, 1u);
  EXPECT_EQ(s.l1.misses, 1u);
  EXPECT_EQ(s.l2.accesses, 1u);  // only L1 misses reach L2
  EXPECT_EQ(s.l2.misses, 1u);
  EXPECT_EQ(s.tlb.misses, 1u);
  mem.Touch(0x10000, 4);
  EXPECT_EQ(mem.stats().l1.misses, 1u);  // now a hit
  EXPECT_EQ(mem.stats().l2.accesses, 1u);
}

TEST(MemorySystemTest, WideTouchSpansLines) {
  MemorySystem mem(MemorySystemConfig::PentiumD());
  mem.Touch(0, 64 * 3);  // exactly 3 lines... plus boundary
  EXPECT_GE(mem.stats().l1.accesses, 3u);
  EXPECT_LE(mem.stats().l1.accesses, 4u);
}

TEST(MemorySystemTest, TouchRangeTypedHelpers) {
  MemorySystem mem(MemorySystemConfig::PentiumD());
  std::vector<uint64_t> data(64);
  mem.TouchRange(data.data(), data.size());  // 512 bytes = 8-9 lines
  EXPECT_GE(mem.stats().l1.accesses, 8u);
  const uint64_t value = 42;
  mem.TouchObject(&value);
  EXPECT_GE(mem.stats().l1.accesses, 9u);
}

TEST(MemorySystemTest, EstimatedCyclesOrdersLayouts) {
  MemorySystemStats good, bad;
  good.l1.accesses = 1000;
  good.l1.misses = 10;
  good.l2.accesses = 10;
  good.l2.misses = 1;
  bad = good;
  bad.l1.misses = 500;
  bad.l2.accesses = 500;
  bad.l2.misses = 400;
  EXPECT_LT(good.EstimatedCycles(), bad.EstimatedCycles());
}

TEST(MemorySystemTest, SmallerL1MissesMore) {
  // The same scattered walk on M1 (16KB L1) vs M2 (64KB L1): the smaller
  // L1 cannot hold the working set.
  std::vector<char> buffer(48 * 1024);
  MemorySystem m1(MemorySystemConfig::PentiumD());
  MemorySystem m2(MemorySystemConfig::Athlon64X2());
  for (MemorySystem* mem : {&m1, &m2}) {
    for (int pass = 0; pass < 4; ++pass) {
      for (size_t off = 0; off < buffer.size(); off += 64) {
        mem->Touch(reinterpret_cast<uint64_t>(buffer.data()) + off);
      }
    }
  }
  EXPECT_GT(m1.stats().l1.misses, m2.stats().l1.misses);
}

}  // namespace
}  // namespace fpm
