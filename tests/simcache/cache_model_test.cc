#include "fpm/simcache/cache_model.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

CacheConfig SmallCache() {
  // 4 sets x 2 ways x 64B lines = 512B.
  return CacheConfig{512, 2, 64};
}

TEST(CacheConfigTest, Validation) {
  EXPECT_TRUE(SmallCache().Validate().ok());
  EXPECT_FALSE((CacheConfig{512, 2, 63}).Validate().ok());   // non-pow2 line
  EXPECT_FALSE((CacheConfig{500, 2, 64}).Validate().ok());   // not divisible
  EXPECT_FALSE((CacheConfig{512, 0, 64}).Validate().ok());   // zero ways
  EXPECT_FALSE((CacheConfig{3 * 64 * 2, 2, 64}).Validate().ok());  // 3 sets
}

TEST(CacheModelTest, ColdMissThenHit) {
  CacheModel cache(SmallCache());
  EXPECT_FALSE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1000));
  EXPECT_TRUE(cache.Access(0x1001));  // same line
  EXPECT_EQ(cache.stats().accesses, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheModelTest, SetConflictEvictsLru) {
  CacheModel cache(SmallCache());  // 4 sets, 2 ways
  // Three addresses mapping to set 0: line addresses 0, 4, 8.
  const uint64_t a = 0 * 64, b = 4 * 64, c = 8 * 64;
  cache.Access(a);  // miss
  cache.Access(b);  // miss
  cache.Access(a);  // hit, refreshes a's LRU
  cache.Access(c);  // miss, evicts b (LRU)
  EXPECT_TRUE(cache.Access(a));   // still resident
  EXPECT_FALSE(cache.Access(b));  // was evicted
}

TEST(CacheModelTest, DistinctSetsDoNotConflict) {
  CacheModel cache(SmallCache());
  for (uint64_t s = 0; s < 4; ++s) cache.Access(s * 64);
  for (uint64_t s = 0; s < 4; ++s) EXPECT_TRUE(cache.Access(s * 64));
}

TEST(CacheModelTest, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(SmallCache());  // 512B total = 8 lines
  // Stream over 64 lines twice: second pass must still miss everywhere.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t l = 0; l < 64; ++l) cache.Access(l * 64);
  }
  EXPECT_EQ(cache.stats().misses, 128u);
}

TEST(CacheModelTest, WorkingSetFittingCacheHitsOnSecondPass) {
  CacheModel cache(SmallCache());
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t l = 0; l < 8; ++l) cache.Access(l * 64);
  }
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().accesses, 16u);
}

TEST(CacheModelTest, ResetClearsState) {
  CacheModel cache(SmallCache());
  cache.Access(0);
  cache.Reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.Access(0));  // cold again
}

TEST(CacheStatsTest, MissRate) {
  CacheStats s;
  EXPECT_EQ(s.miss_rate(), 0.0);
  s.accesses = 10;
  s.misses = 3;
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.3);
}

TEST(TlbModelTest, PageGranularity) {
  TlbModel tlb(4);
  EXPECT_FALSE(tlb.Access(0));
  EXPECT_TRUE(tlb.Access(4095));   // same 4K page
  EXPECT_FALSE(tlb.Access(4096));  // next page
}

TEST(TlbModelTest, LruEviction) {
  TlbModel tlb(2);
  tlb.Access(0 << 12);
  tlb.Access(1ull << 12);
  tlb.Access(0);            // refresh page 0
  tlb.Access(2ull << 12);   // evicts page 1
  EXPECT_TRUE(tlb.Access(0));
  EXPECT_FALSE(tlb.Access(1ull << 12));
}

}  // namespace
}  // namespace fpm
