#include "fpm/simcache/db_trace.h"

#include <gtest/gtest.h>

#include "fpm/dataset/quest_gen.h"
#include "fpm/layout/lexicographic.h"

namespace fpm {
namespace {

Database TestDb(uint32_t num_transactions) {
  QuestParams p;
  p.num_transactions = num_transactions;
  p.avg_transaction_len = 12;
  p.avg_pattern_len = 4;
  p.num_items = 400;
  p.num_patterns = 120;
  auto db = GenerateQuest(p);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(DbTraceTest, SequentialScanMissesOncePerLine) {
  Database db = TestDb(4000);
  MemorySystem mem(MemorySystemConfig::PentiumD());
  const auto seq = TraceSequentialScan(db, &mem);
  // Streaming through the CSR arrays misses each 64-byte line about
  // once; transaction boundaries can split a line access in two, so
  // allow one extra miss per transaction.
  const uint64_t payload_lines =
      (db.num_entries() * sizeof(Item) + db.num_transactions() * 8) / 64;
  EXPECT_LE(seq.l1.misses, payload_lines + db.num_transactions());
  EXPECT_GT(seq.l1.accesses, 0u);
}

TEST(DbTraceTest, ColumnWalkWorseThanSequential) {
  Database db = TestDb(4000);
  MemorySystem mem(MemorySystemConfig::PentiumD());
  const auto seq = TraceSequentialScan(db, &mem);
  const auto col = TraceColumnWalk(db, &mem);
  EXPECT_GT(col.l1.miss_rate(), seq.l1.miss_rate());
}

TEST(DbTraceTest, LexOrderingReducesColumnWalkMisses) {
  // The core locality claim of P1 (§3.2), validated on the simulator.
  // The database must exceed the L1 and TLB reach for the ordering to
  // matter: ~2 MB here vs 16 KB L1 / 256 KB TLB coverage.
  Database db = TestDb(40000);
  LexicographicResult lex = LexicographicOrder(db);
  MemorySystem mem(MemorySystemConfig::PentiumD());
  const auto before = TraceColumnWalk(db, &mem);
  const auto after = TraceColumnWalk(lex.database, &mem);
  EXPECT_LT(after.l1.misses, before.l1.misses);
  EXPECT_LT(after.tlb.misses, before.tlb.misses);
}

TEST(DbTraceTest, TilingReducesColumnWalkMisses) {
  // The reuse claim of P6.1 (§3.4): the walk working set (~3 MB) far
  // exceeds the 1 MB L2, so the untiled walk re-fetches transactions
  // from memory while the tiled walk serves all items from the
  // resident tile.
  Database db = TestDb(60000);
  MemorySystem mem(MemorySystemConfig::PentiumD());
  const auto plain = TraceColumnWalk(db, &mem);
  const auto tiled = TraceTiledColumnWalk(db, /*tile_entries=*/2048, &mem);
  EXPECT_LT(tiled.l2.misses, plain.l2.misses);
  EXPECT_LT(tiled.l1.misses, plain.l1.misses);
}

TEST(DbTraceTest, TiledWalkTouchesSameVolume) {
  Database db = TestDb(4000);
  MemorySystem mem(MemorySystemConfig::PentiumD());
  const auto plain = TraceColumnWalk(db, &mem);
  const auto tiled = TraceTiledColumnWalk(db, 2048, &mem);
  EXPECT_EQ(plain.l1.accesses, tiled.l1.accesses);
}

TEST(DbTraceTest, EmptyDatabaseProducesNoAccesses) {
  MemorySystem mem(MemorySystemConfig::PentiumD());
  const auto s = TraceColumnWalk(Database(), &mem);
  EXPECT_EQ(s.l1.accesses, 0u);
}

}  // namespace
}  // namespace fpm
