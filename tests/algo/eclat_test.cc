#include "fpm/algo/eclat/eclat_miner.h"

#include <gtest/gtest.h>

#include "fpm/dataset/quest_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::MineCanonical;

TEST(EclatOptionsTest, SuffixReflectsToggles) {
  EXPECT_EQ(EclatOptions{}.Suffix(), "");
  EclatOptions o;
  o.lexicographic_order = true;
  EXPECT_EQ(o.Suffix(), "+lex");
  o.zero_escaping = true;
  o.popcount = PopcountStrategy::kHardware;
  EXPECT_EQ(o.Suffix(), "+lex+esc+simd:hardware");
}

TEST(EclatMinerTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  EclatMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 2}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{2}, 2}));
}

TEST(EclatMinerTest, WeightedSupportsViaRowExpansion) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 100);  // expands to 100 bit rows
  b.AddTransaction({1}, 30);
  Database db = b.Build();
  EclatMiner miner;
  const auto r = MineCanonical(miner, db, 100);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 100}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 100}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{1}, 130}));
}

TEST(EclatMinerTest, ZeroEscapeMatchesBaselineOnClusteredData) {
  QuestParams p;
  p.num_transactions = 600;
  p.avg_transaction_len = 10;
  p.avg_pattern_len = 4;
  p.num_items = 40;
  p.num_patterns = 25;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok());
  EclatMiner base;
  EclatOptions esc;
  esc.lexicographic_order = true;
  esc.zero_escaping = true;
  EclatMiner escaped(esc);
  const auto a = MineCanonical(base, db.value(), 15);
  const auto b = MineCanonical(escaped, db.value(), 15);
  testutil::ExpectSameResults(a, b, "escape-vs-base");
  ASSERT_GT(a.size(), 0u);
}

TEST(EclatMinerTest, UnavailableStrategyRejectedUpFront) {
  if (PopcountStrategyAvailable(PopcountStrategy::kAvx2)) {
    GTEST_SKIP() << "host has AVX2; cannot exercise the rejection path";
  }
  EclatOptions o;
  o.popcount = PopcountStrategy::kAvx2;
  EclatMiner miner(o);
  Database db = MakeDb({{0}});
  CollectingSink sink;
  const Status s = miner.Mine(db, 1, &sink).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EclatMinerTest, StatsPopulated) {
  Database db = MakeDb({{0, 1, 2}, {0, 1}, {2}});
  EclatMiner miner;
  CountingSink sink;
  Result<MineStats> stats = miner.Mine(db, 1, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_frequent, sink.count());
  EXPECT_GT(stats->peak_structure_bytes, 0u);
}

TEST(EclatRepresentationTest, NamesAreStable) {
  EXPECT_STREQ(EclatRepresentationName(EclatRepresentation::kBitVector),
               "bitvector");
  EXPECT_STREQ(EclatRepresentationName(EclatRepresentation::kTidList),
               "tidlist");
  EXPECT_STREQ(EclatRepresentationName(EclatRepresentation::kDiffset),
               "diffset");
  EXPECT_STREQ(EclatRepresentationName(EclatRepresentation::kAuto), "auto");
}

TEST(EclatRepresentationTest, SuffixIncludesNonDefaultRepresentation) {
  EclatOptions o;
  o.representation = EclatRepresentation::kDiffset;
  EXPECT_EQ(o.Suffix(), "+repr:diffset");
  o.representation = EclatRepresentation::kBitVector;
  EXPECT_EQ(o.Suffix(), "");
}

TEST(EclatRepresentationTest, AutoPicksTidListOnSparseData) {
  // Very sparse: every frequent column fill far below 1/32, over a
  // universe wide enough that the dense matrix would dwarf the lists.
  DatabaseBuilder b;
  for (int i = 0; i < 8000; ++i) {
    b.AddTransaction({static_cast<Item>(i % 400),
                      static_cast<Item>((i + 7) % 400)});
  }
  Database db = b.Build();
  EclatOptions o;
  o.representation = EclatRepresentation::kAuto;
  EclatMiner auto_miner(o);
  EclatMiner dense_miner;  // bit vector
  CollectingSink auto_sink, dense_sink;
  Result<MineStats> auto_stats = auto_miner.Mine(db, 10, &auto_sink);
  Result<MineStats> dense_stats = dense_miner.Mine(db, 10, &dense_sink);
  ASSERT_TRUE(auto_stats.ok());
  ASSERT_TRUE(dense_stats.ok());
  auto_sink.Canonicalize();
  dense_sink.Canonicalize();
  testutil::ExpectSameResults(dense_sink.results(), auto_sink.results(),
                              "auto-vs-dense");
  // Sparse build must be far smaller than the dense matrix would be.
  EXPECT_LT(auto_stats->peak_structure_bytes,
            dense_stats->peak_structure_bytes);
}

TEST(EclatMinerTest, RejectsBadArguments) {
  Database db = MakeDb({{0}});
  EclatMiner miner;
  CollectingSink sink;
  EXPECT_FALSE(miner.Mine(db, 0, &sink).ok());
  EXPECT_FALSE(miner.Mine(db, 1, nullptr).ok());
}

}  // namespace
}  // namespace fpm
