#include "fpm/algo/postprocess.h"

#include <gtest/gtest.h>

#include "fpm/algo/bruteforce.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::RandomDb;
using testutil::RandomDbSpec;

using Entry = CollectingSink::Entry;

// Oracle definitions straight from the text: closed = no proper superset
// with equal support; maximal = no proper superset at all.
bool IsSubset(const Itemset& small, const Itemset& big) {
  return small.size() < big.size() &&
         std::includes(big.begin(), big.end(), small.begin(), small.end());
}

std::vector<Entry> OracleClosed(const std::vector<Entry>& all) {
  std::vector<Entry> out;
  for (const auto& p : all) {
    bool closed = true;
    for (const auto& q : all) {
      if (q.second == p.second && IsSubset(p.first, q.first)) {
        closed = false;
        break;
      }
    }
    if (closed) out.push_back(p);
  }
  return out;
}

std::vector<Entry> OracleMaximal(const std::vector<Entry>& all) {
  std::vector<Entry> out;
  for (const auto& p : all) {
    bool maximal = true;
    for (const auto& q : all) {
      if (IsSubset(p.first, q.first)) {
        maximal = false;
        break;
      }
    }
    if (maximal) out.push_back(p);
  }
  return out;
}

TEST(FilterClosedTest, TextbookExample) {
  // {a,b} x3, {a} x1: frequent at 1: {a}:4 {b}:3 {a,b}:3.
  // Closed: {a}:4 and {a,b}:3 ({b} has superset {a,b} with equal supp).
  Database db = MakeDb({{0, 1}, {0, 1}, {0, 1}, {0}});
  BruteForceMiner miner;
  auto closed = MineClosed(miner, db, 1);
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed->size(), 2u);
  EXPECT_EQ((*closed)[0], (Entry{{0}, 4}));
  EXPECT_EQ((*closed)[1], (Entry{{0, 1}, 3}));
}

TEST(FilterMaximalTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 1}, {0, 1}, {0}, {2}});
  BruteForceMiner miner;
  auto maximal = MineMaximal(miner, db, 1);
  ASSERT_TRUE(maximal.ok());
  // Maximal: {0,1} and {2}.
  ASSERT_EQ(maximal->size(), 2u);
  EXPECT_EQ((*maximal)[0], (Entry{{0, 1}, 3}));
  EXPECT_EQ((*maximal)[1], (Entry{{2}, 1}));
}

TEST(FilterTest, MaximalIsSubsetOfClosed) {
  // Every maximal itemset is closed (standard containment).
  RandomDbSpec spec;
  spec.num_transactions = 60;
  spec.num_items = 8;
  spec.seed = 77;
  Database db = RandomDb(spec);
  LcmMiner miner;
  auto closed = MineClosed(miner, db, 3);
  auto maximal = MineMaximal(miner, db, 3);
  ASSERT_TRUE(closed.ok() && maximal.ok());
  for (const auto& m : *maximal) {
    EXPECT_NE(std::find(closed->begin(), closed->end(), m), closed->end());
  }
  EXPECT_LE(maximal->size(), closed->size());
}

TEST(FilterTest, MatchesOracleOnRandomDbs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomDbSpec spec;
    spec.num_transactions = 50;
    spec.num_items = 7;
    spec.seed = seed;
    Database db = RandomDb(spec);
    LcmMiner miner;
    CollectingSink sink;
    ASSERT_TRUE(miner.Mine(db, 3, &sink).ok());
    sink.Canonicalize();
    const auto& all = sink.results();
    EXPECT_EQ(FilterClosed(all), OracleClosed(all)) << "seed " << seed;
    EXPECT_EQ(FilterMaximal(all), OracleMaximal(all)) << "seed " << seed;
  }
}

TEST(FilterTest, ClosedPreservesSupportsAndUniqueness) {
  RandomDbSpec spec;
  spec.num_transactions = 80;
  spec.num_items = 9;
  spec.seed = 3;
  Database db = RandomDb(spec);
  LcmMiner miner;
  auto closed = MineClosed(miner, db, 4);
  ASSERT_TRUE(closed.ok());
  // Closed sets must be unique and still sorted canonically.
  for (size_t i = 1; i < closed->size(); ++i) {
    EXPECT_LT((*closed)[i - 1].first, (*closed)[i].first);
  }
}

TEST(FilterTest, EmptyInput) {
  EXPECT_TRUE(FilterClosed({}).empty());
  EXPECT_TRUE(FilterMaximal({}).empty());
  EXPECT_TRUE(FilterMaximalFromClosed({}).empty());
}

TEST(FilterMaximalFromClosedTest, MatchesFullFilterOnRandomDbs) {
  // Maximal-from-closed must equal maximal-from-all-frequent.
  for (uint64_t seed = 11; seed <= 15; ++seed) {
    RandomDbSpec spec;
    spec.num_transactions = 55;
    spec.num_items = 8;
    spec.seed = seed;
    Database db = RandomDb(spec);
    LcmMiner miner;
    CollectingSink sink;
    ASSERT_TRUE(miner.Mine(db, 3, &sink).ok());
    sink.Canonicalize();
    const auto closed = FilterClosed(sink.results());
    EXPECT_EQ(FilterMaximalFromClosed(closed),
              FilterMaximal(sink.results()))
        << "seed " << seed;
  }
}

TEST(FilterMaximalFromClosedTest, DetectsMultiSizeJumps) {
  // {0} closed with a closed superset three items larger and nothing in
  // between: the one-larger trick of FilterMaximal would miss it, the
  // closed-listing variant must not.
  const std::vector<Entry> closed = {{{0}, 10}, {{0, 1, 2, 3}, 5}};
  const auto maximal = FilterMaximalFromClosed(closed);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0], (Entry{{0, 1, 2, 3}, 5}));
}

TEST(FilterTest, SingleItemsetIsClosedAndMaximal) {
  const std::vector<Entry> one = {{{3}, 5}};
  EXPECT_EQ(FilterClosed(one), one);
  EXPECT_EQ(FilterMaximal(one), one);
}

}  // namespace
}  // namespace fpm
