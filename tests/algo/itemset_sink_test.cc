#include "fpm/algo/itemset_sink.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(CountingSinkTest, CountsAndChecksums) {
  CountingSink a, b;
  const Item s1[] = {1, 2};
  const Item s2[] = {3};
  a.Emit(s1, 10);
  a.Emit(s2, 5);
  // Same emissions in the other order -> same checksum.
  b.Emit(s2, 5);
  b.Emit(s1, 10);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.support_sum(), 15u);
  EXPECT_EQ(a.max_size(), 2u);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(CountingSinkTest, ChecksumItemOrderInsensitive) {
  CountingSink a, b;
  const Item fwd[] = {1, 2, 3};
  const Item rev[] = {3, 2, 1};
  a.Emit(fwd, 4);
  b.Emit(rev, 4);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(CountingSinkTest, ChecksumDetectsSupportChange) {
  CountingSink a, b;
  const Item s[] = {1, 2};
  a.Emit(s, 4);
  b.Emit(s, 5);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(CollectingSinkTest, CanonicalizeSortsSetsAndItems) {
  CollectingSink sink;
  const Item s1[] = {3, 1};
  const Item s2[] = {0};
  sink.Emit(s1, 2);
  sink.Emit(s2, 7);
  sink.Canonicalize();
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.results()[0], (CollectingSink::Entry{{0}, 7}));
  EXPECT_EQ(sink.results()[1], (CollectingSink::Entry{{1, 3}, 2}));
}

TEST(SizeFilterSinkTest, DropsSmallItemsets) {
  CollectingSink inner;
  SizeFilterSink filter(&inner, 2);
  const Item s1[] = {1};
  const Item s2[] = {1, 2};
  const Item s3[] = {1, 2, 3};
  filter.Emit(s1, 5);
  filter.Emit(s2, 4);
  filter.Emit(s3, 3);
  EXPECT_EQ(inner.size(), 2u);
}

}  // namespace
}  // namespace fpm
