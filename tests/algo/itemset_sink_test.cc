#include "fpm/algo/itemset_sink.h"

#include <gtest/gtest.h>

namespace fpm {
namespace {

TEST(CountingSinkTest, CountsAndChecksums) {
  CountingSink a, b;
  const Item s1[] = {1, 2};
  const Item s2[] = {3};
  a.Emit(s1, 10);
  a.Emit(s2, 5);
  // Same emissions in the other order -> same checksum.
  b.Emit(s2, 5);
  b.Emit(s1, 10);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.support_sum(), 15u);
  EXPECT_EQ(a.max_size(), 2u);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(CountingSinkTest, ChecksumItemOrderInsensitive) {
  CountingSink a, b;
  const Item fwd[] = {1, 2, 3};
  const Item rev[] = {3, 2, 1};
  a.Emit(fwd, 4);
  b.Emit(rev, 4);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(CountingSinkTest, ChecksumDetectsSupportChange) {
  CountingSink a, b;
  const Item s[] = {1, 2};
  a.Emit(s, 4);
  b.Emit(s, 5);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(CountingSinkTest, MergeFromEqualsSingleSink) {
  // Any partition of the emissions across shards must merge to exactly
  // the counters of one sink that saw everything.
  const Item s1[] = {1, 2};
  const Item s2[] = {3};
  const Item s3[] = {0, 4, 5};
  CountingSink all;
  all.Emit(s1, 10);
  all.Emit(s2, 5);
  all.Emit(s3, 2);

  CountingSink left, right;
  left.Emit(s3, 2);
  right.Emit(s1, 10);
  right.Emit(s2, 5);
  left.MergeFrom(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(left.support_sum(), all.support_sum());
  EXPECT_EQ(left.checksum(), all.checksum());
  EXPECT_EQ(left.max_size(), all.max_size());
}

TEST(CountingSinkTest, MergeFromIsAssociative) {
  const Item s1[] = {1};
  const Item s2[] = {2, 3};
  const Item s3[] = {4};
  CountingSink a, b, c;
  a.Emit(s1, 1);
  b.Emit(s2, 2);
  c.Emit(s3, 3);

  // (a + b) + c
  CountingSink ab = a;
  ab.MergeFrom(b);
  ab.MergeFrom(c);
  // a + (b + c)
  CountingSink bc = b;
  bc.MergeFrom(c);
  CountingSink abc = a;
  abc.MergeFrom(bc);
  EXPECT_EQ(ab.count(), abc.count());
  EXPECT_EQ(ab.support_sum(), abc.support_sum());
  EXPECT_EQ(ab.checksum(), abc.checksum());
  EXPECT_EQ(ab.max_size(), abc.max_size());
}

TEST(CountingSinkTest, MergeFromEmptyIsIdentity) {
  const Item s[] = {7, 8};
  CountingSink a;
  a.Emit(s, 3);
  const uint64_t checksum = a.checksum();
  CountingSink empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.checksum(), checksum);
}

TEST(ShardedSinkTest, MergeReplaysInShardOrder) {
  ShardedSink sharded(3);
  const Item s0[] = {0};
  const Item s1[] = {1};
  const Item s2[] = {2};
  // Fill shards out of order — replay must still follow shard index.
  sharded.shard(2)->Emit(s2, 3);
  sharded.shard(0)->Emit(s0, 1);
  sharded.shard(1)->Emit(s1, 2);
  EXPECT_EQ(sharded.total_count(), 3u);

  CollectingSink merged;
  sharded.MergeInto(&merged);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.results()[0], (CollectingSink::Entry{{0}, 1}));
  EXPECT_EQ(merged.results()[1], (CollectingSink::Entry{{1}, 2}));
  EXPECT_EQ(merged.results()[2], (CollectingSink::Entry{{2}, 3}));
}

TEST(ShardedSinkTest, EmptyShardsMergeToNothing) {
  ShardedSink sharded(4);
  EXPECT_EQ(sharded.total_count(), 0u);
  CountingSink merged;
  sharded.MergeInto(&merged);
  EXPECT_EQ(merged.count(), 0u);
}

TEST(CollectingSinkTest, CanonicalizeSortsSetsAndItems) {
  CollectingSink sink;
  const Item s1[] = {3, 1};
  const Item s2[] = {0};
  sink.Emit(s1, 2);
  sink.Emit(s2, 7);
  sink.Canonicalize();
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.results()[0], (CollectingSink::Entry{{0}, 7}));
  EXPECT_EQ(sink.results()[1], (CollectingSink::Entry{{1, 3}, 2}));
}

TEST(SizeFilterSinkTest, DropsSmallItemsets) {
  CollectingSink inner;
  SizeFilterSink filter(&inner, 2);
  const Item s1[] = {1};
  const Item s2[] = {1, 2};
  const Item s3[] = {1, 2, 3};
  filter.Emit(s1, 5);
  filter.Emit(s2, 4);
  filter.Emit(s3, 3);
  EXPECT_EQ(inner.size(), 2u);
}

}  // namespace
}  // namespace fpm
