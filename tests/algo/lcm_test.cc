#include "fpm/algo/lcm/lcm_miner.h"

#include <gtest/gtest.h>

#include "fpm/dataset/quest_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::MineCanonical;

TEST(LcmOptionsTest, SuffixReflectsToggles) {
  EXPECT_EQ(LcmOptions{}.Suffix(), "");
  EXPECT_EQ(LcmOptions::All().Suffix(), "+lex+agg+cmp+tile+wave");
  LcmOptions o;
  o.tiling = true;
  EXPECT_EQ(o.Suffix(), "+tile");
}

TEST(LcmMinerTest, NameIncludesConfiguration) {
  EXPECT_EQ(LcmMiner{}.name(), "lcm");
  EXPECT_EQ(LcmMiner{LcmOptions::All()}.name(), "lcm+lex+agg+cmp+tile+wave");
}

TEST(LcmMinerTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  LcmMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 2}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{0, 2}, 2}));
  EXPECT_EQ(r[3], (CollectingSink::Entry{{1}, 3}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{2}, 2}));
}

TEST(LcmMinerTest, WeightedSupports) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 4);
  b.AddTransaction({0}, 3);
  Database db = b.Build();
  LcmMiner miner;
  const auto r = MineCanonical(miner, db, 4);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 7}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 4}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{1}, 4}));
}

TEST(LcmMinerTest, StatsTrackPhasesAndCount) {
  QuestParams p;
  p.num_transactions = 500;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 50;
  p.num_patterns = 30;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok());
  LcmOptions o;
  o.collect_phase_stats = true;
  LcmMiner miner(o);
  CountingSink sink;
  Result<MineStats> stats = miner.Mine(db.value(), 10, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_frequent, sink.count());
  EXPECT_GT(sink.count(), 0u);
  EXPECT_GT(stats->phase_seconds(PhaseId::kMine), 0.0);
  const LcmPhaseStats& phases = miner.phase_stats();
  EXPECT_GT(phases.calcfreq_seconds, 0.0);
  EXPECT_GT(phases.rmduptrans_seconds, 0.0);
  EXPECT_GT(phases.project_seconds, 0.0);
}

TEST(LcmMinerTest, DuplicateTransactionsMergedCorrectly) {
  // Many identical transactions exercise RmDupTrans hard.
  DatabaseBuilder b;
  for (int i = 0; i < 30; ++i) b.AddTransaction({1, 2, 3});
  for (int i = 0; i < 5; ++i) b.AddTransaction({1, 2});
  Database db = b.Build();
  LcmOptions o;
  o.bucket_aggregation = true;
  LcmMiner miner(o);
  const auto r = MineCanonical(miner, db, 30);
  // {1}:35 {2}:35 {1,2}:35 {3}:30 {1,3} {2,3} {1,2,3}:30
  EXPECT_EQ(r.size(), 7u);
}

TEST(LcmMinerTest, TilingHandlesManyItems) {
  // Force multiple tiles and batches with a wide item universe.
  QuestParams p;
  p.num_transactions = 2000;
  p.avg_transaction_len = 12;
  p.avg_pattern_len = 4;
  p.num_items = 300;
  p.num_patterns = 100;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok());
  LcmOptions tiled;
  tiled.tiling = true;
  tiled.tile_entries = 256;  // force many small tiles
  LcmMiner with_tiling(tiled);
  LcmMiner without_tiling;
  const auto a = MineCanonical(with_tiling, db.value(), 20);
  const auto b = MineCanonical(without_tiling, db.value(), 20);
  testutil::ExpectSameResults(b, a, "tiled-vs-plain");
  ASSERT_GT(a.size(), 0u);
}

TEST(LcmMinerTest, RejectsBadArguments) {
  Database db = MakeDb({{0}});
  LcmMiner miner;
  CollectingSink sink;
  EXPECT_FALSE(miner.Mine(db, 0, &sink).ok());
  EXPECT_FALSE(miner.Mine(db, 1, nullptr).ok());
}

}  // namespace
}  // namespace fpm
