#include "fpm/algo/candidate_trie.h"

#include <gtest/gtest.h>

#include "fpm/common/rng.h"

namespace fpm {
namespace {

TEST(CandidateTrieTest, CountsSubsetsOnly) {
  CandidateTrie trie;
  const Item c0[] = {1, 2};
  const Item c1[] = {2, 3};
  const Item c2[] = {1, 2, 3};
  trie.Insert(c0, 0);
  trie.Insert(c1, 1);
  trie.Insert(c2, 2);
  std::vector<Support> counts(3, 0);
  const Item tx[] = {1, 2, 3};
  trie.CountTransaction(tx, 2, &counts);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  const Item tx2[] = {1, 2};
  trie.CountTransaction(tx2, 1, &counts);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(CandidateTrieTest, MixedSizeCandidatesOnSharedPrefix) {
  // {1} and {1,5}: a candidate node that is also an interior node.
  CandidateTrie trie;
  const Item c0[] = {1};
  const Item c1[] = {1, 5};
  trie.Insert(c0, 0);
  trie.Insert(c1, 1);
  std::vector<Support> counts(2, 0);
  const Item tx[] = {1, 5, 9};
  trie.CountTransaction(tx, 1, &counts);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  const Item tx2[] = {1, 9};
  trie.CountTransaction(tx2, 1, &counts);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(CandidateTrieTest, NonSubsetsNotCounted) {
  CandidateTrie trie;
  const Item c0[] = {2, 4};
  trie.Insert(c0, 0);
  std::vector<Support> counts(1, 0);
  const Item tx[] = {2, 3};
  trie.CountTransaction(tx, 1, &counts);
  const Item tx2[] = {4};
  trie.CountTransaction(tx2, 1, &counts);
  EXPECT_EQ(counts[0], 0u);
}

TEST(CandidateTrieTest, RandomizedAgainstNaiveChecker) {
  Rng rng(314);
  // Random candidates of sizes 1..4 over 12 items.
  std::vector<Itemset> candidates;
  for (int i = 0; i < 40; ++i) {
    Itemset c;
    const size_t len = 1 + rng.NextBounded(4);
    while (c.size() < len) {
      const Item it = static_cast<Item>(rng.NextBounded(12));
      if (std::find(c.begin(), c.end(), it) == c.end()) c.push_back(it);
    }
    std::sort(c.begin(), c.end());
    if (std::find(candidates.begin(), candidates.end(), c) ==
        candidates.end()) {
      candidates.push_back(c);
    }
  }
  CandidateTrie trie;
  for (size_t i = 0; i < candidates.size(); ++i) {
    trie.Insert(candidates[i], static_cast<uint32_t>(i));
  }
  std::vector<Support> counts(candidates.size(), 0);
  std::vector<Support> naive(candidates.size(), 0);
  for (int t = 0; t < 200; ++t) {
    Itemset tx;
    for (Item i = 0; i < 12; ++i) {
      if (rng.NextBool(0.4)) tx.push_back(i);
    }
    trie.CountTransaction(tx, 1, &counts);
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (std::includes(tx.begin(), tx.end(), candidates[c].begin(),
                        candidates[c].end())) {
        ++naive[c];
      }
    }
  }
  EXPECT_EQ(counts, naive);
}

TEST(CandidateTrieDeathTest, RejectsEmptyAndDuplicateCandidates) {
  CandidateTrie trie;
  EXPECT_DEATH(trie.Insert({}, 0), "empty");
  const Item c[] = {1, 2};
  trie.Insert(c, 0);
  EXPECT_DEATH(trie.Insert(c, 1), "duplicate");
}

}  // namespace
}  // namespace fpm
