// Streaming byte-identity suite: a version database materialized by the
// append/expire chain must be indistinguishable from a database built
// from scratch over the same live window — for every kernel and every
// task verb, down to emission order. This is the contract that lets the
// service reuse version-digest cache keys across clients.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/fpgrowth/fpgrowth_miner.h"
#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/algo/rules.h"
#include "fpm/dataset/versioned.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;

Database BuildDb(const std::vector<Itemset>& txns) {
  DatabaseBuilder b;
  for (const Itemset& t : txns) b.AddTransaction(t);
  return b.Build();
}

std::vector<std::unique_ptr<Miner>> AllKernels() {
  std::vector<std::unique_ptr<Miner>> kernels;
  kernels.push_back(std::make_unique<LcmMiner>());
  kernels.push_back(std::make_unique<EclatMiner>());
  kernels.push_back(std::make_unique<FpGrowthMiner>());
  return kernels;
}

std::vector<CollectingSink::Entry> MineTask(Miner& miner, const Database& db,
                                            const MiningQuery& query) {
  CollectingSink sink;
  const Status s = miner.Mine(db, query, &sink).status();
  EXPECT_TRUE(s.ok()) << miner.name() << ": " << s;
  return sink.results();
}

/// Asserts the streamed and scratch databases are indistinguishable to
/// every kernel under every task verb, including emission order.
void ExpectMiningIdentical(const Database& streamed, const Database& scratch,
                           const std::string& label) {
  const std::vector<MiningQuery> queries = {
      MiningQuery::Frequent(2), MiningQuery::Closed(2),
      MiningQuery::Maximal(2), MiningQuery::TopK(/*k=*/5, /*floor=*/2)};
  for (const auto& kernel : AllKernels()) {
    for (const MiningQuery& query : queries) {
      const auto expected = MineTask(*kernel, scratch, query);
      const auto actual = MineTask(*kernel, streamed, query);
      ExpectSameResults(expected, actual,
                        label + " " + kernel->name() + " task " +
                            std::string(TaskName(query.task)));
    }
    // Rules carry confidence/lift metrics on top of the itemsets.
    std::vector<AssociationRule> want, got;
    ASSERT_TRUE(
        kernel->MineRules(scratch, MiningQuery::Rules(2, 0.5), &want).ok());
    ASSERT_TRUE(
        kernel->MineRules(streamed, MiningQuery::Rules(2, 0.5), &got).ok());
    ASSERT_EQ(want.size(), got.size()) << label << " " << kernel->name();
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].antecedent, got[i].antecedent) << label << " " << i;
      EXPECT_EQ(want[i].consequent, got[i].consequent) << label << " " << i;
      EXPECT_EQ(want[i].itemset_support, got[i].itemset_support)
          << label << " " << i;
      EXPECT_EQ(want[i].confidence, got[i].confidence) << label << " " << i;
    }
  }
}

TEST(StreamingIdentityTest, AppendOnlyChain) {
  std::vector<Itemset> live = {{1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {1, 2, 3}};
  VersionedDataset dataset(BuildDb(live), "s");
  const std::vector<std::vector<Itemset>> steps = {
      {{1, 2}, {3, 4}}, {{2, 3, 4}}, {{1, 4}, {1, 2, 4}, {4}}};
  for (size_t s = 0; s < steps.size(); ++s) {
    auto v = dataset.Append(steps[s]);
    ASSERT_TRUE(v.ok()) << v.status();
    for (const Itemset& t : steps[s]) live.push_back(t);
    ExpectMiningIdentical(*v.value()->database, BuildDb(live),
                          "append step " + std::to_string(s));
  }
}

TEST(StreamingIdentityTest, ExpireOnlyChain) {
  std::vector<Itemset> live = {{1, 2, 3}, {1, 2, 3}, {1, 2}, {2, 3},
                               {1, 3},    {1, 2, 3}, {2, 3}, {1, 2}};
  VersionedDataset dataset(BuildDb(live), "s");
  for (int step = 0; step < 3; ++step) {
    auto v = dataset.Expire(2);
    ASSERT_TRUE(v.ok()) << v.status();
    live.erase(live.begin(), live.begin() + 2);
    ExpectMiningIdentical(*v.value()->database, BuildDb(live),
                          "expire step " + std::to_string(step));
  }
}

TEST(StreamingIdentityTest, InterleavedChainWithWindow) {
  std::vector<Itemset> live = {{1, 2, 3}, {1, 2}, {2, 3}, {1, 3}};
  VersionedDataset dataset(BuildDb(live), "s");
  WindowPolicy policy;
  policy.last_n = 6;
  dataset.SetPolicy(policy);

  const std::vector<std::vector<Itemset>> steps = {
      {{1, 2, 4}, {2, 3, 4}, {1, 4}},  // overflows the window by one
      {{1, 2, 3}, {2, 4}},
      {{3, 4}, {1, 2, 3, 4}, {2, 3}}};
  for (size_t s = 0; s < steps.size(); ++s) {
    auto v = dataset.Append(steps[s]);
    ASSERT_TRUE(v.ok()) << v.status();
    for (const Itemset& t : steps[s]) live.push_back(t);
    while (live.size() > 6) live.erase(live.begin());
    ASSERT_EQ(dataset.live_transactions(), live.size());
    ExpectMiningIdentical(*v.value()->database, BuildDb(live),
                          "windowed step " + std::to_string(s));
  }
}

}  // namespace
}  // namespace fpm
