#include "fpm/algo/hmine.h"

#include <gtest/gtest.h>

#include "fpm/algo/bruteforce.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/dataset/standin_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::MineCanonical;
using testutil::RandomDb;
using testutil::RandomDbSpec;

TEST(HMineTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  HMineMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 2}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{0, 2}, 2}));
  EXPECT_EQ(r[3], (CollectingSink::Entry{{1}, 3}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{2}, 2}));
}

TEST(HMineTest, MatchesOracleOnRandomDbs) {
  HMineMiner miner;
  BruteForceMiner oracle;
  for (uint64_t seed = 501; seed <= 506; ++seed) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_transactions = 45;
    spec.num_items = 9;
    Database db = RandomDb(spec);
    for (Support support : {2u, 5u}) {
      const auto expected = MineCanonical(oracle, db, support);
      const auto actual = MineCanonical(miner, db, support);
      ExpectSameResults(expected, actual,
                        "hmine seed=" + std::to_string(seed) +
                            " support=" + std::to_string(support));
    }
  }
}

TEST(HMineTest, SparseDataItsDesignPoint) {
  ApLikeParams p;
  p.num_transactions = 4000;
  p.vocabulary = 3000;
  p.avg_length = 7;
  auto dbr = GenerateApLike(p);
  ASSERT_TRUE(dbr.ok());
  // The oracle is infeasible at this size; cross-check against LCM via
  // the order-insensitive checksum.
  HMineMiner hmine;
  LcmMiner lcm;
  CountingSink a, b;
  ASSERT_TRUE(hmine.Mine(dbr.value(), 40, &a).ok());
  ASSERT_TRUE(lcm.Mine(dbr.value(), 40, &b).ok());
  EXPECT_GT(a.count(), 0u);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(HMineTest, WeightedSupports) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 6);
  b.AddTransaction({1}, 4);
  Database db = b.Build();
  HMineMiner miner;
  const auto r = MineCanonical(miner, db, 4);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 6}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 6}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{1}, 10}));
}

TEST(HMineTest, DegenerateInputs) {
  HMineMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(Database(), 1, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_FALSE(miner.Mine(Database(), 0, &sink).ok());
  EXPECT_FALSE(miner.Mine(Database(), 1, nullptr).ok());
}

TEST(HMineTest, StatsPopulated) {
  Database db = MakeDb({{0, 1, 2}, {0, 1}});
  HMineMiner miner;
  CountingSink sink;
  Result<MineStats> stats = miner.Mine(db, 1, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_frequent, sink.count());
  EXPECT_GT(stats->peak_structure_bytes, 0u);
}

}  // namespace
}  // namespace fpm
