#include "fpm/algo/bruteforce.h"

#include <gtest/gtest.h>

#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;

TEST(BruteForceTest, TextbookExample) {
  // {a,b}, {a,c}, {a,b,c}, {b} with minsup 2:
  // a:3 b:3 c:2 ab:2 ac:2 bc:1 abc:1
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  BruteForceMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 2, &sink).ok());
  sink.Canonicalize();
  const auto& r = sink.results();
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 2}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{0, 2}, 2}));
  EXPECT_EQ(r[3], (CollectingSink::Entry{{1}, 3}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{2}, 2}));
}

TEST(BruteForceTest, MinSupportOneEnumeratesEverything) {
  Database db = MakeDb({{0, 1, 2}});
  BruteForceMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 1, &sink).ok());
  EXPECT_EQ(sink.size(), 7u);  // 2^3 - 1 subsets
}

TEST(BruteForceTest, ThresholdAboveTotalWeightYieldsNothing) {
  Database db = MakeDb({{0}, {0}});
  BruteForceMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 3, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
}

TEST(BruteForceTest, RespectsWeights) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 5);
  b.AddTransaction({1}, 2);
  Database db = b.Build();
  BruteForceMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 5, &sink).ok());
  sink.Canonicalize();
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.results()[0], (CollectingSink::Entry{{0}, 5}));
  EXPECT_EQ(sink.results()[1], (CollectingSink::Entry{{0, 1}, 5}));
  EXPECT_EQ(sink.results()[2], (CollectingSink::Entry{{1}, 7}));
}

TEST(BruteForceTest, RejectsZeroSupport) {
  Database db = MakeDb({{0}});
  BruteForceMiner miner;
  CollectingSink sink;
  EXPECT_FALSE(miner.Mine(db, 0, &sink).ok());
}

TEST(BruteForceTest, StatsPopulated) {
  Database db = MakeDb({{0, 1}, {0, 1}});
  BruteForceMiner miner;
  CountingSink sink;
  Result<MineStats> stats = miner.Mine(db, 2, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_frequent, 3u);
  EXPECT_EQ(sink.count(), 3u);
}

}  // namespace
}  // namespace fpm
