#include "fpm/algo/fpgrowth/incremental_fptree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fpm/algo/fpgrowth/fpgrowth_miner.h"
#include "fpm/algo/itemset_sink.h"
#include "fpm/dataset/versioned.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::RandomDb;
using testutil::RandomDbSpec;

/// Fresh sequential FP-Growth run on `db` — the byte-identity oracle
/// for the maintained tree (raw emission order, no canonicalization).
std::vector<CollectingSink::Entry> FreshFpGrowth(const Database& db,
                                                 Support min_support) {
  FpGrowthMiner miner;
  CollectingSink sink;
  const Status s = miner.Mine(db, min_support, &sink).status();
  EXPECT_TRUE(s.ok()) << s;
  return sink.results();
}

std::vector<CollectingSink::Entry> MineMaintained(
    const IncrementalFpTree& inc) {
  CollectingSink sink;
  MineIncrementalFpTree(inc, &sink, nullptr);
  return sink.results();
}

/// Exact comparison including order — the incremental contract is
/// byte-identity with a from-scratch run, not set equality.
void ExpectIdentical(const std::vector<CollectingSink::Entry>& expected,
                     const std::vector<CollectingSink::Entry>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << label << " entry " << i;
  }
}

TEST(StreamFpTreeTest, AddAndRemovePathsTrackSupportAndDeadNodes) {
  StreamFpTree tree(3, FpTreeConfig());
  const std::vector<Item> path01 = {0, 1};
  const std::vector<Item> path012 = {0, 1, 2};
  tree.AddPath(path01, 2);
  tree.AddPath(path012, 1);
  tree.Finalize();
  EXPECT_EQ(tree.ItemSupport(0), 3u);
  EXPECT_EQ(tree.ItemSupport(1), 3u);
  EXPECT_EQ(tree.ItemSupport(2), 1u);
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.num_dead_nodes(), 0u);

  tree.RemovePath(path012, 1);
  tree.Finalize();
  EXPECT_EQ(tree.ItemSupport(2), 0u);
  EXPECT_EQ(tree.num_dead_nodes(), 1u);

  // Read paths skip the dead fringe: item 2's only node is zeroed, and
  // item 1's surviving node still reports its {0} prefix.
  size_t dead_paths = 0;
  tree.ForEachPath(2, [&](std::span<const Item>, Support) { ++dead_paths; });
  EXPECT_EQ(dead_paths, 0u);
  size_t live_paths = 0;
  tree.ForEachPath(1, [&](std::span<const Item> prefix, Support count) {
    ++live_paths;
    ASSERT_EQ(prefix.size(), 1u);
    EXPECT_EQ(prefix[0], 0u);
    EXPECT_EQ(count, 2u);
  });
  EXPECT_EQ(live_paths, 1u);

  // Re-adding the path revives the dead node in place.
  tree.AddPath(path012, 4);
  tree.Finalize();
  EXPECT_EQ(tree.num_dead_nodes(), 0u);
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.ItemSupport(2), 4u);
}

TEST(StreamFpTreeTest, SinglePathDetectionSkipsDeadBranches) {
  StreamFpTree tree(3, FpTreeConfig());
  const std::vector<Item> a = {0, 1};
  const std::vector<Item> b = {0, 2};
  tree.AddPath(a, 2);
  tree.AddPath(b, 1);
  tree.Finalize();
  std::vector<std::pair<Item, Support>> path;
  EXPECT_FALSE(tree.SinglePath(&path));

  // Killing the {0,2} branch leaves one live path.
  tree.RemovePath(b, 1);
  tree.Finalize();
  path.clear();
  EXPECT_TRUE(tree.SinglePath(&path));
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], (std::pair<Item, Support>{0, 2}));
  EXPECT_EQ(path[1], (std::pair<Item, Support>{1, 2}));
}

TEST(IncrementalFpTreeTest, FreshBuildMatchesFromScratchMine) {
  const Database db = MakeDb({{1, 2, 3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3}});
  IncrementalFpTree inc(db, 2);
  ExpectIdentical(FreshFpGrowth(db, 2), MineMaintained(inc), "fresh");
  EXPECT_EQ(inc.rebuilds(), 0u);
}

// Drives a VersionedDataset and an IncrementalFpTree side by side,
// asserting byte-identity against a from-scratch mine at every version.
class TrackedStream {
 public:
  TrackedStream(Database base, Support min_support,
                const IncrementalFpTree::Options& options)
      : dataset_(std::move(base), "t"),
        inc_(*dataset_.latest().database, min_support, options),
        min_support_(min_support) {}

  void Append(const std::vector<Itemset>& txns, const std::string& label) {
    auto v = dataset_.Append(txns);
    ASSERT_TRUE(v.ok()) << v.status();
    Advance(*v.value(), label);
  }

  void Expire(uint64_t count, const std::string& label) {
    auto v = dataset_.Expire(count);
    ASSERT_TRUE(v.ok()) << v.status();
    Advance(*v.value(), label);
  }

  IncrementalFpTree& inc() { return inc_; }

 private:
  void Advance(const DatasetVersion& v, const std::string& label) {
    inc_.Advance(*v.database, *v.delta);
    ExpectIdentical(FreshFpGrowth(*v.database, min_support_),
                    MineMaintained(inc_), label);
  }

  VersionedDataset dataset_;
  IncrementalFpTree inc_;
  Support min_support_;
};

TEST(IncrementalFpTreeTest, AppendOnlyStreamStaysByteIdentical) {
  // High drift threshold: appends that preserve the frequency ranking
  // must ride the per-path maintenance path, not a rebuild.
  IncrementalFpTree::Options options;
  options.rebuild_drift_threshold = 1.0;
  TrackedStream stream(
      MakeDb({{1, 2, 3}, {1, 2, 3}, {1, 2}, {1, 2}, {1, 3}, {2, 3}, {1}}),
      2, options);
  stream.Append({{1, 2, 3}}, "append 1");
  stream.Append({{1, 2}, {1, 3}}, "append 2");
  EXPECT_EQ(stream.inc().rebuilds(), 0u);
  EXPECT_GE(stream.inc().maintained_paths(), 3u);
}

TEST(IncrementalFpTreeTest, ExpireOnlyStreamStaysByteIdentical) {
  IncrementalFpTree::Options options;
  options.rebuild_drift_threshold = 1.0;
  TrackedStream stream(
      MakeDb({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2}, {1, 2}, {1, 3},
              {2, 3}, {1, 2}}),
      2, options);
  stream.Expire(1, "expire 1");
  stream.Expire(2, "expire 2");
}

TEST(IncrementalFpTreeTest, InterleavedStreamStaysByteIdentical) {
  TrackedStream stream(
      MakeDb({{1, 2, 3}, {1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {1, 2, 3}}),
      2, IncrementalFpTree::Options());
  stream.Append({{1, 2}, {3, 4}}, "step 1");
  stream.Expire(2, "step 2");
  stream.Append({{4, 1}, {4, 2, 1}}, "step 3");
  stream.Expire(1, "step 4");
}

TEST(IncrementalFpTreeTest, RankingChangeForcesRebuild) {
  // Base ranking: 1 (4) > 2 (3) > 3 (2). Appending four {3} rows lifts
  // item 3 to the top: the frequent-prefix rank sequence changes, which
  // mandates a rebuild regardless of the drift threshold.
  IncrementalFpTree::Options options;
  options.rebuild_drift_threshold = 1.0;
  TrackedStream stream(MakeDb({{1, 2, 3}, {1, 2, 3}, {1, 2}, {1}}), 2,
                       options);
  stream.Append({{3}, {3}, {3}, {3}}, "rank flip");
  EXPECT_EQ(stream.inc().rebuilds(), 1u);
}

TEST(IncrementalFpTreeTest, ExpiryDroppingItemBelowSupportForcesRebuild) {
  // Expiring the two leading {4, ...} rows drops item 4 below
  // min_support: num_frequent changes, so the tree must rebuild.
  IncrementalFpTree::Options options;
  options.rebuild_drift_threshold = 1.0;
  TrackedStream stream(
      MakeDb({{4, 1}, {4, 2}, {1, 2, 3}, {1, 2, 3}, {1, 2}, {1, 3}, {2, 3}}),
      2, options);
  stream.Expire(2, "drop item 4");
  EXPECT_EQ(stream.inc().rebuilds(), 1u);
}

TEST(IncrementalFpTreeTest, ZeroDriftThresholdRebuildsEagerly) {
  // Threshold 0 with any measurable drift: every advance that moves a
  // rank rebuilds even though the frequent prefix is unchanged.
  IncrementalFpTree::Options options;
  options.rebuild_drift_threshold = 0.0;
  TrackedStream stream(
      MakeDb({{1, 2, 3}, {1, 2, 3}, {1, 2}, {1, 2}, {1, 3}, {2, 3}}), 2,
      options);
  stream.Append({{2, 3}, {2, 3}, {2}}, "drift");
  EXPECT_GE(stream.inc().rebuilds(), 1u);
}

TEST(IncrementalFpTreeTest, RandomStreamsMatchFromScratch) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_transactions = 40;
    spec.num_items = 9;
    VersionedDataset dataset(RandomDb(spec), "r");
    IncrementalFpTree inc(*dataset.latest().database, 3);
    Rng rng(seed * 977);
    for (int step = 0; step < 8; ++step) {
      if (rng.NextBounded(2) == 0 && dataset.live_transactions() > 6) {
        auto v = dataset.Expire(1 + rng.NextBounded(3));
        ASSERT_TRUE(v.ok());
        inc.Advance(*v.value()->database, *v.value()->delta);
      } else {
        std::vector<Itemset> txns;
        const size_t n = 1 + rng.NextBounded(4);
        for (size_t t = 0; t < n; ++t) {
          Itemset txn;
          const size_t len = 1 + rng.NextBounded(5);
          for (size_t i = 0; i < len; ++i) {
            txn.push_back(static_cast<Item>(rng.NextBounded(9)));
          }
          txns.push_back(std::move(txn));
        }
        auto v = dataset.Append(txns);
        ASSERT_TRUE(v.ok());
        inc.Advance(*v.value()->database, *v.value()->delta);
      }
      ExpectIdentical(FreshFpGrowth(*dataset.latest().database, 3),
                      MineMaintained(inc),
                      "seed " + std::to_string(seed) + " step " +
                          std::to_string(step));
    }
  }
}

}  // namespace
}  // namespace fpm
