// Top-k mining: the bounded-sink driver must return exactly the k
// highest-support itemsets in the canonical rank order (support
// descending, itemset ascending on ties), independent of the seed
// threshold it starts from — determinism is checked against an
// exhaustive mine-everything-and-sort reference.

#include "fpm/algo/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/algo/query.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::RandomDb;
using testutil::RandomDbSpec;
using Entry = CollectingSink::Entry;

/// The exhaustive reference: every itemset frequent at `floor`, ranked.
std::vector<Entry> Reference(const Database& db, uint64_t k,
                             Support floor) {
  LcmMiner miner;
  CollectingSink sink;
  EXPECT_TRUE(miner.Mine(db, floor, &sink).ok());
  sink.Canonicalize();
  std::vector<Entry> all = sink.results();
  std::stable_sort(all.begin(), all.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<Entry> TopK(Miner& miner, const Database& db,
                        const MiningQuery& query) {
  CollectingSink sink;
  auto stats = miner.Mine(db, query, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats.ok()) {
    EXPECT_EQ(stats->num_frequent, sink.results().size());
  }
  return sink.results();
}

TEST(TopKTest, MatchesTheExhaustiveReference) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Database db =
        RandomDb(RandomDbSpec{.num_transactions = 40, .seed = seed});
    for (uint64_t k : {1u, 5u, 20u}) {
      LcmMiner miner;
      ExpectSameResults(Reference(db, k, 2),
                        TopK(miner, db, MiningQuery::TopK(k, 2)),
                        "seed " + std::to_string(seed) + " k " +
                            std::to_string(k));
    }
  }
}

TEST(TopKTest, KLargerThanTheListingReturnsEverythingRanked) {
  const Database db = MakeDb({{0, 1}, {0, 1}, {0, 2}});
  LcmMiner miner;
  const auto got = TopK(miner, db, MiningQuery::TopK(1000, 1));
  ExpectSameResults(Reference(db, 1000, 1), got, "k > |listing|");
  EXPECT_LT(got.size(), 1000u);
}

TEST(TopKTest, TiesBreakLexicographically) {
  // Four singletons, all support 2: rank order is pure item order.
  const Database db = MakeDb({{0, 1, 2, 3}, {0, 1, 2, 3}});
  LcmMiner miner;
  const auto got = TopK(miner, db, MiningQuery::TopK(3, 2));
  ASSERT_EQ(got.size(), 3u);
  // Every itemset has support 2; the smallest three lexicographically
  // are {0}, {0,1}, {0,1,2}.
  const std::vector<Entry> expected = {
      {{0}, 2}, {{0, 1}, 2}, {{0, 1, 2}, 2}};
  EXPECT_EQ(got, expected);
}

TEST(TopKTest, SeedThresholdHintNeverChangesTheAnswer) {
  const Database db =
      RandomDb(RandomDbSpec{.num_transactions = 50, .seed = 7});
  const auto want = Reference(db, 8, 2);
  // A wildly wrong hint only costs extra passes, never correctness:
  // the driver halves toward the floor until k results accumulate.
  for (Support hint : {0u, 3u, 1000u}) {
    MiningQuery query = MiningQuery::TopK(8, 2);
    query.topk_seed_support = hint;
    LcmMiner miner;
    ExpectSameResults(want, TopK(miner, db, query),
                      "hint " + std::to_string(hint));
  }
}

TEST(TopKTest, AlgorithmChoiceDoesNotAffectTheRanking) {
  const Database db =
      RandomDb(RandomDbSpec{.num_transactions = 40, .seed = 13});
  LcmMiner lcm;
  EclatMiner eclat;
  const MiningQuery query = MiningQuery::TopK(10, 2);
  ExpectSameResults(TopK(lcm, db, query), TopK(eclat, db, query),
                    "lcm vs eclat");
}

TEST(TopKSinkTest, KeepsTheBestKUnderOverflow) {
  TopKSink sink(2);
  const Itemset a = {3};
  const Itemset b = {1};
  const Itemset c = {2};
  sink.Emit(a, 5);
  sink.Emit(b, 9);
  sink.Emit(c, 7);  // evicts {3}:5
  EXPECT_EQ(sink.total_emitted(), 3u);
  const std::vector<Entry> expected = {{{1}, 9}, {{2}, 7}};
  EXPECT_EQ(sink.TakeSorted(), expected);
}

}  // namespace
}  // namespace fpm
