// The central property suite: every miner, under every pattern
// configuration, must produce exactly the same frequent itemsets with
// exactly the same supports as the brute-force oracle, on a sweep of
// random and structured databases.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "fpm/algo/apriori.h"
#include "fpm/algo/bruteforce.h"
#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/fpgrowth/fpgrowth_miner.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/dataset/quest_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MineCanonical;
using testutil::RandomDb;
using testutil::RandomDbSpec;

// ---------------------------------------------------------------------
// All LCM pattern combinations (2^5 = 32) against the oracle.

class LcmConfigTest : public ::testing::TestWithParam<int> {};

LcmOptions LcmFromMask(int mask) {
  LcmOptions o;
  o.lexicographic_order = mask & 1;
  o.bucket_aggregation = mask & 2;
  o.counter_compaction = mask & 4;
  o.tiling = mask & 8;
  o.wavefront_prefetch = mask & 16;
  return o;
}

TEST_P(LcmConfigTest, MatchesOracleOnRandomDbs) {
  LcmMiner miner(LcmFromMask(GetParam()));
  BruteForceMiner oracle;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_transactions = 40;
    spec.num_items = 9;
    Database db = RandomDb(spec);
    const auto expected = MineCanonical(oracle, db, 3);
    const auto actual = MineCanonical(miner, db, 3);
    ExpectSameResults(expected, actual,
                      miner.name() + " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatternMasks, LcmConfigTest,
                         ::testing::Range(0, 32));

// ---------------------------------------------------------------------
// All Eclat configurations: {lex} x {escape} x {popcount strategies}.

class EclatConfigTest
    : public ::testing::TestWithParam<
          std::tuple<bool, bool, PopcountStrategy, EclatRepresentation>> {};

TEST_P(EclatConfigTest, MatchesOracleOnRandomDbs) {
  EclatOptions o;
  o.lexicographic_order = std::get<0>(GetParam());
  o.zero_escaping = std::get<1>(GetParam());
  o.popcount = std::get<2>(GetParam());
  o.representation = std::get<3>(GetParam());
  if (!PopcountStrategyAvailable(o.popcount)) {
    GTEST_SKIP() << "strategy unavailable";
  }
  EclatMiner miner(o);
  BruteForceMiner oracle;
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_transactions = 50;
    spec.num_items = 8;
    Database db = RandomDb(spec);
    const auto expected = MineCanonical(oracle, db, 4);
    const auto actual = MineCanonical(miner, db, 4);
    ExpectSameResults(expected, actual,
                      miner.name() + " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EclatConfigTest,
    ::testing::Combine(
        ::testing::Bool(), ::testing::Bool(),
        ::testing::Values(PopcountStrategy::kLut16, PopcountStrategy::kSwar,
                          PopcountStrategy::kHardware,
                          PopcountStrategy::kAuto),
        ::testing::Values(EclatRepresentation::kBitVector,
                          EclatRepresentation::kTidList,
                          EclatRepresentation::kDiffset,
                          EclatRepresentation::kAuto)));

// ---------------------------------------------------------------------
// All FP-Growth configurations (2^4 = 16; dfs_relayout implies compact).

class FpGrowthConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(FpGrowthConfigTest, MatchesOracleOnRandomDbs) {
  const int mask = GetParam();
  FpGrowthOptions o;
  o.lexicographic_order = mask & 1;
  o.node_compaction = mask & 2;
  o.dfs_relayout = mask & 4;
  o.software_prefetch = mask & 8;
  FpGrowthMiner miner(o);
  BruteForceMiner oracle;
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_transactions = 45;
    spec.num_items = 9;
    Database db = RandomDb(spec);
    const auto expected = MineCanonical(oracle, db, 3);
    const auto actual = MineCanonical(miner, db, 3);
    ExpectSameResults(expected, actual,
                      miner.name() + " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatternMasks, FpGrowthConfigTest,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Apriori against the oracle.

TEST(AprioriEquivalenceTest, MatchesOracleOnRandomDbs) {
  AprioriMiner miner;
  BruteForceMiner oracle;
  for (uint64_t seed = 31; seed <= 35; ++seed) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_transactions = 40;
    spec.num_items = 10;
    Database db = RandomDb(spec);
    const auto expected = MineCanonical(oracle, db, 3);
    const auto actual = MineCanonical(miner, db, 3);
    ExpectSameResults(expected, actual,
                      "apriori seed=" + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------
// Cross-check the three paper kernels against each other on a larger,
// structured (Quest) database where brute force is infeasible, over a
// sweep of support thresholds.

class CrossMinerQuestTest : public ::testing::TestWithParam<Support> {};

TEST_P(CrossMinerQuestTest, AllMinersAgreeOnQuestData) {
  const Support min_support = GetParam();
  QuestParams p;
  p.num_transactions = 800;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 60;
  p.num_patterns = 40;
  auto dbr = GenerateQuest(p);
  ASSERT_TRUE(dbr.ok());
  const Database& db = dbr.value();

  LcmMiner lcm_base{LcmOptions{}}, lcm_all{LcmOptions::All()};
  EclatMiner eclat_base{EclatOptions{}}, eclat_all{EclatOptions::All()};
  FpGrowthMiner fpg_base{FpGrowthOptions{}}, fpg_all{FpGrowthOptions::All()};
  AprioriMiner apriori;

  const auto reference = MineCanonical(lcm_base, db, min_support);
  ASSERT_GT(reference.size(), 0u);
  ExpectSameResults(reference, MineCanonical(lcm_all, db, min_support),
                    "lcm-all");
  ExpectSameResults(reference, MineCanonical(eclat_base, db, min_support),
                    "eclat-base");
  ExpectSameResults(reference, MineCanonical(eclat_all, db, min_support),
                    "eclat-all");
  ExpectSameResults(reference, MineCanonical(fpg_base, db, min_support),
                    "fpgrowth-base");
  ExpectSameResults(reference, MineCanonical(fpg_all, db, min_support),
                    "fpgrowth-all");
  ExpectSameResults(reference, MineCanonical(apriori, db, min_support),
                    "apriori");
}

INSTANTIATE_TEST_SUITE_P(SupportSweep, CrossMinerQuestTest,
                         ::testing::Values(8, 20, 60, 200),
                         [](const auto& info) {
                           return "support" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Degenerate inputs every miner must survive.

template <typename M>
std::unique_ptr<Miner> Make() {
  return std::make_unique<M>();
}

class DegenerateInputTest
    : public ::testing::TestWithParam<std::unique_ptr<Miner> (*)()> {};

TEST_P(DegenerateInputTest, EmptyDatabase) {
  auto miner = GetParam()();
  CollectingSink sink;
  ASSERT_TRUE(miner->Mine(Database(), 1, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
}

TEST_P(DegenerateInputTest, SingleTransaction) {
  auto miner = GetParam()();
  DatabaseBuilder b;
  b.AddTransaction({2, 5, 7});
  CollectingSink sink;
  ASSERT_TRUE(miner->Mine(b.Build(), 1, &sink).ok());
  EXPECT_EQ(sink.size(), 7u);
}

TEST_P(DegenerateInputTest, SingleItemManyTimes) {
  auto miner = GetParam()();
  DatabaseBuilder b;
  for (int i = 0; i < 20; ++i) b.AddTransaction({3});
  CollectingSink sink;
  ASSERT_TRUE(miner->Mine(b.Build(), 20, &sink).ok());
  ASSERT_EQ(sink.size(), 1u);
  sink.Canonicalize();
  EXPECT_EQ(sink.results()[0], (CollectingSink::Entry{{3}, 20}));
}

TEST_P(DegenerateInputTest, AllTransactionsIdentical) {
  auto miner = GetParam()();
  DatabaseBuilder b;
  for (int i = 0; i < 10; ++i) b.AddTransaction({1, 2, 3});
  CollectingSink sink;
  ASSERT_TRUE(miner->Mine(b.Build(), 10, &sink).ok());
  EXPECT_EQ(sink.size(), 7u);
}

TEST_P(DegenerateInputTest, NullSinkRejected) {
  auto miner = GetParam()();
  DatabaseBuilder b;
  b.AddTransaction({0});
  EXPECT_FALSE(miner->Mine(b.Build(), 1, nullptr).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllMiners, DegenerateInputTest,
    ::testing::Values(&Make<LcmMiner>, &Make<EclatMiner>,
                      &Make<FpGrowthMiner>, &Make<AprioriMiner>,
                      &Make<BruteForceMiner>),
    [](const auto& info) {
      return info.param()->name();
    });

}  // namespace
}  // namespace fpm
