#include "fpm/algo/fpgrowth/fpgrowth_miner.h"

#include <gtest/gtest.h>

#include "fpm/algo/fpgrowth/fptree.h"
#include "fpm/dataset/quest_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::MineCanonical;

TEST(FpGrowthOptionsTest, SuffixReflectsToggles) {
  EXPECT_EQ(FpGrowthOptions{}.Suffix(), "");
  EXPECT_EQ(FpGrowthOptions::All().Suffix(), "+lex+cmp+dfs+pref");
}

TEST(FpGrowthMinerTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  FpGrowthMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 2}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{0, 2}, 2}));
}

TEST(FpGrowthMinerTest, SinglePathTreeEnumeratesSubsets) {
  // All transactions nest: the FP-tree is one path a>b>c.
  DatabaseBuilder b;
  for (int i = 0; i < 8; ++i) b.AddTransaction({0});
  for (int i = 0; i < 4; ++i) b.AddTransaction({0, 1});
  for (int i = 0; i < 2; ++i) b.AddTransaction({0, 1, 2});
  Database db = b.Build();
  FpGrowthMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  // {0}:14 {1}:6 {2}:2 {0,1}:6 {0,2}:2 {1,2}:2 {0,1,2}:2
  ASSERT_EQ(r.size(), 7u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 14}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 6}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{1}, 6}));
  EXPECT_EQ(r[6], (CollectingSink::Entry{{2}, 2}));
}

TEST(FpGrowthMinerTest, DfsRelayoutImpliesCompactNodes) {
  FpGrowthOptions o;
  o.dfs_relayout = true;
  FpGrowthMiner miner(o);
  EXPECT_EQ(miner.options().node_compaction, true);
  Database db = MakeDb({{0, 1}, {0, 1}});
  const auto r = MineCanonical(miner, db, 2);
  EXPECT_EQ(r.size(), 3u);
}

TEST(FpGrowthMinerTest, CompactTreeUsesLessMemoryThanPointerTree) {
  QuestParams p;
  p.num_transactions = 2000;
  p.avg_transaction_len = 10;
  p.avg_pattern_len = 4;
  p.num_items = 120;
  p.num_patterns = 60;
  auto db = GenerateQuest(p);
  ASSERT_TRUE(db.ok());
  FpGrowthMiner pointer_miner;
  FpGrowthOptions compact;
  compact.node_compaction = true;
  FpGrowthMiner compact_miner(compact);
  CountingSink s1, s2;
  Result<MineStats> pointer_stats = pointer_miner.Mine(db.value(), 20, &s1);
  Result<MineStats> compact_stats = compact_miner.Mine(db.value(), 20, &s2);
  ASSERT_TRUE(pointer_stats.ok());
  ASSERT_TRUE(compact_stats.ok());
  EXPECT_EQ(s1.checksum(), s2.checksum());
  // §4.3: differential encoding "reduces the node size and memory
  // requirements dramatically".
  EXPECT_LT(compact_stats->peak_structure_bytes,
            pointer_stats->peak_structure_bytes / 2);
}

TEST(FpGrowthMinerTest, WeightedSupports) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 6);
  b.AddTransaction({1, 2}, 4);
  Database db = b.Build();
  FpGrowthMiner miner;
  const auto r = MineCanonical(miner, db, 4);
  // {0}:6 {1}:10 {2}:4 {0,1}:6 {1,2}:4
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[2], (CollectingSink::Entry{{1}, 10}));
}

TEST(FpGrowthMinerTest, RejectsBadArguments) {
  Database db = MakeDb({{0}});
  FpGrowthMiner miner;
  CollectingSink sink;
  EXPECT_FALSE(miner.Mine(db, 0, &sink).ok());
  EXPECT_FALSE(miner.Mine(db, 1, nullptr).ok());
}

// ----------------------------- tree units -----------------------------

TEST(PointerFpTreeTest, SharedPrefixesShareNodes) {
  FpTreeConfig config;
  PointerFpTree tree(5, config);
  const Item p1[] = {0, 1, 2};
  const Item p2[] = {0, 1, 3};
  const Item p3[] = {0, 4};
  tree.AddPath(p1, 1);
  tree.AddPath(p2, 2);
  tree.AddPath(p3, 1);
  tree.Finalize();
  // Nodes: 0,1,2,3,4 -> 5 nodes (prefix 0,1 shared).
  EXPECT_EQ(tree.num_nodes(), 5u);
  EXPECT_EQ(tree.ItemSupport(0), 4u);
  EXPECT_EQ(tree.ItemSupport(1), 3u);
  EXPECT_EQ(tree.ItemSupport(3), 2u);
}

TEST(PointerFpTreeTest, ForEachPathYieldsAncestors) {
  FpTreeConfig config;
  PointerFpTree tree(4, config);
  const Item p1[] = {0, 1, 3};
  const Item p2[] = {2, 3};
  tree.AddPath(p1, 5);
  tree.AddPath(p2, 7);
  tree.Finalize();
  std::vector<std::pair<std::vector<Item>, Support>> paths;
  tree.ForEachPath(3, [&](std::span<const Item> base, Support count) {
    paths.emplace_back(std::vector<Item>(base.begin(), base.end()), count);
  });
  ASSERT_EQ(paths.size(), 2u);
  // Order depends on link insertion; sort for determinism.
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths[0].first, (std::vector<Item>{0, 1}));
  EXPECT_EQ(paths[0].second, 5u);
  EXPECT_EQ(paths[1].first, (std::vector<Item>{2}));
  EXPECT_EQ(paths[1].second, 7u);
}

TEST(PointerFpTreeTest, SinglePathDetection) {
  FpTreeConfig config;
  PointerFpTree tree(4, config);
  const Item p1[] = {0, 1, 2};
  const Item p2[] = {0, 1};
  tree.AddPath(p1, 1);
  tree.AddPath(p2, 1);
  tree.Finalize();
  std::vector<std::pair<Item, Support>> path;
  ASSERT_TRUE(tree.SinglePath(&path));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], (std::pair<Item, Support>{0, 2}));
  EXPECT_EQ(path[2], (std::pair<Item, Support>{2, 1}));

  const Item p3[] = {3};
  tree.AddPath(p3, 1);
  tree.Finalize();
  EXPECT_FALSE(tree.SinglePath(&path));
}

TEST(CompactFpTreeTest, MirrorsPointerTreeBehaviour) {
  FpTreeConfig config;
  CompactFpTree tree(5, config);
  const Item p1[] = {0, 1, 2};
  const Item p2[] = {0, 1, 3};
  const Item p3[] = {0, 4};
  tree.AddPath(p1, 1);
  tree.AddPath(p2, 2);
  tree.AddPath(p3, 1);
  tree.Finalize();
  EXPECT_EQ(tree.num_nodes(), 6u);  // root + 5
  EXPECT_EQ(tree.ItemSupport(0), 4u);
  EXPECT_EQ(tree.ItemSupport(1), 3u);
  EXPECT_EQ(tree.ItemSupport(3), 2u);
  EXPECT_EQ(tree.items(), (std::vector<Item>{0, 1, 2, 3, 4}));
}

TEST(CompactFpTreeTest, DiffEncodingSurvivesEscapes) {
  // Item jumps larger than 254 force the escape path.
  FpTreeConfig config;
  CompactFpTree tree(2000, config);
  const Item p1[] = {0, 1000, 1999};
  const Item p2[] = {0, 1000};
  tree.AddPath(p1, 3);
  tree.AddPath(p2, 1);
  tree.Finalize();
  EXPECT_EQ(tree.ItemSupport(1000), 4u);
  EXPECT_EQ(tree.ItemSupport(1999), 3u);
  std::vector<std::pair<std::vector<Item>, Support>> paths;
  tree.ForEachPath(1999, [&](std::span<const Item> base, Support count) {
    paths.emplace_back(std::vector<Item>(base.begin(), base.end()), count);
  });
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].first, (std::vector<Item>{0, 1000}));
  EXPECT_EQ(paths[0].second, 3u);
}

TEST(CompactFpTreeTest, RelayoutPreservesSemantics) {
  FpTreeConfig plain_config;
  FpTreeConfig relayout_config;
  relayout_config.dfs_relayout = true;
  CompactFpTree plain(10, plain_config);
  CompactFpTree relaid(10, relayout_config);
  const std::vector<std::vector<Item>> paths = {
      {0, 2, 5}, {0, 2, 7}, {1, 3}, {0, 9}, {1, 3, 8}, {4}};
  for (const auto& p : paths) {
    plain.AddPath(p, 2);
    relaid.AddPath(p, 2);
  }
  plain.Finalize();
  relaid.Finalize();
  EXPECT_EQ(plain.items(), relaid.items());
  for (Item i : plain.items()) {
    EXPECT_EQ(plain.ItemSupport(i), relaid.ItemSupport(i)) << "item " << i;
    std::vector<std::pair<std::vector<Item>, Support>> a, b;
    plain.ForEachPath(i, [&](std::span<const Item> base, Support c) {
      a.emplace_back(std::vector<Item>(base.begin(), base.end()), c);
    });
    relaid.ForEachPath(i, [&](std::span<const Item> base, Support c) {
      b.emplace_back(std::vector<Item>(base.begin(), base.end()), c);
    });
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "item " << i;
  }
}

TEST(CompactFpTreeTest, SinglePathDetection) {
  FpTreeConfig config;
  CompactFpTree tree(300, config);
  const Item p1[] = {0, 255, 299};  // includes an escape edge
  tree.AddPath(p1, 4);
  tree.Finalize();
  std::vector<std::pair<Item, Support>> path;
  ASSERT_TRUE(tree.SinglePath(&path));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], (std::pair<Item, Support>{255, 4}));
}

TEST(CompactFpTreeTest, JumpPointersBuiltWhenPrefetching) {
  FpTreeConfig config;
  config.software_prefetch = true;
  config.jump_distance = 2;
  CompactFpTree tree(3, config);
  // Several leaves of item 2 to get a node-link chain.
  const Item pa[] = {0, 2};
  const Item pb[] = {1, 2};
  const Item pc[] = {2};
  tree.AddPath(pa, 1);
  tree.AddPath(pb, 1);
  tree.AddPath(pc, 1);
  tree.Finalize();
  EXPECT_EQ(tree.ItemSupport(2), 3u);
  // Behaviour (not just construction) must be unchanged by prefetch.
  size_t paths = 0;
  tree.ForEachPath(2, [&](std::span<const Item>, Support) { ++paths; });
  EXPECT_EQ(paths, 3u);
}

}  // namespace
}  // namespace fpm
