#include "fpm/algo/apriori.h"

#include <gtest/gtest.h>

#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using testutil::MineCanonical;

TEST(AprioriTest, TextbookExample) {
  Database db = MakeDb({{0, 1}, {0, 2}, {0, 1, 2}, {1}});
  AprioriMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 2}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{0, 2}, 2}));
  EXPECT_EQ(r[3], (CollectingSink::Entry{{1}, 3}));
  EXPECT_EQ(r[4], (CollectingSink::Entry{{2}, 2}));
}

TEST(AprioriTest, DeepLevels) {
  // 5 transactions of {0..4}: every subset of a 5-set is frequent at 5.
  DatabaseBuilder b;
  for (int i = 0; i < 5; ++i) b.AddTransaction({0, 1, 2, 3, 4});
  AprioriMiner miner;
  const auto r = MineCanonical(miner, b.Build(), 5);
  EXPECT_EQ(r.size(), 31u);  // 2^5 - 1
  for (const auto& [set, support] : r) EXPECT_EQ(support, 5u);
}

TEST(AprioriTest, PruningStillExact) {
  // {0,1} and {1,2} frequent but {0,2} not: {0,1,2} must be pruned and
  // absent.
  Database db = MakeDb({{0, 1}, {0, 1}, {1, 2}, {1, 2}, {0, 3}, {2, 4}});
  AprioriMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  for (const auto& [set, support] : r) {
    EXPECT_LT(set.size(), 3u) << "no 3-itemset is frequent here";
  }
}

TEST(AprioriTest, NonContiguousItemIds) {
  Database db = MakeDb({{100, 5000}, {100, 5000}, {100}});
  AprioriMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{100}, 3}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{100, 5000}, 2}));
  EXPECT_EQ(r[2], (CollectingSink::Entry{{5000}, 2}));
}

TEST(AprioriTest, WeightedSupports) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 9);
  b.AddTransaction({1}, 1);
  AprioriMiner miner;
  const auto r = MineCanonical(miner, b.Build(), 9);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[2], (CollectingSink::Entry{{1}, 10}));
}

TEST(AprioriTest, RejectsBadArguments) {
  Database db = MakeDb({{0}});
  AprioriMiner miner;
  CollectingSink sink;
  EXPECT_FALSE(miner.Mine(db, 0, &sink).ok());
  EXPECT_FALSE(miner.Mine(db, 1, nullptr).ok());
}

}  // namespace
}  // namespace fpm
