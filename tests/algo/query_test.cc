// The MiningQuery task surface: parse/validate, the Miner::Mine(query)
// dispatch (closed/maximal answers must equal the postprocess
// reference, the LCM native closed path must equal the generic one),
// and MineRules / GenerateRulesFromClosed (the non-redundant closed
// rule basis must agree with full-listing rule generation).

#include "fpm/algo/query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/algo/postprocess.h"
#include "fpm/algo/rules.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::RandomDb;
using testutil::RandomDbSpec;
using Entry = CollectingSink::Entry;

std::vector<Entry> MineQuery(Miner& miner, const Database& db,
                             const MiningQuery& query) {
  CollectingSink sink;
  auto stats = miner.Mine(db, query, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status();
  if (stats.ok()) {
    EXPECT_EQ(stats->num_frequent, sink.results().size())
        << TaskName(query.task);
  }
  return sink.results();
}

TEST(MiningQueryTest, TaskNamesRoundTripThroughParseTask) {
  for (int t = 0; t < kNumMiningTasks; ++t) {
    const MiningTask task = static_cast<MiningTask>(t);
    auto parsed = ParseTask(TaskName(task));
    ASSERT_TRUE(parsed.ok()) << TaskName(task);
    EXPECT_EQ(parsed.value(), task);
  }
  // Accepted spellings: case-insensitive, '-' for '_', bare "topk".
  EXPECT_EQ(ParseTask("TOP-K").value(), MiningTask::kTopK);
  EXPECT_EQ(ParseTask("topk").value(), MiningTask::kTopK);
  EXPECT_EQ(ParseTask("Closed").value(), MiningTask::kClosed);
  EXPECT_EQ(ParseTask("bogus").status().message(),
            "unknown task 'bogus' (want frequent|closed|maximal|top_k|"
            "rules)");
}

TEST(MiningQueryTest, ValidateEnforcesPerTaskParameters) {
  EXPECT_FALSE(MiningQuery::Frequent(0).Validate().ok());
  EXPECT_TRUE(MiningQuery::Frequent(1).Validate().ok());

  MiningQuery topk = MiningQuery::TopK(/*k=*/1, 2);
  EXPECT_TRUE(topk.Validate().ok());
  topk.k = 0;
  EXPECT_FALSE(topk.Validate().ok());

  MiningQuery rules = MiningQuery::Rules(2, 0.5);
  EXPECT_TRUE(rules.Validate().ok());
  rules.min_confidence = 1.5;
  EXPECT_FALSE(rules.Validate().ok());
  rules.min_confidence = 0.5;
  rules.min_lift = -1.0;
  EXPECT_FALSE(rules.Validate().ok());
  rules.min_lift = 0.0;
  rules.max_consequent = 0;
  EXPECT_FALSE(rules.Validate().ok());

  // k/confidence only constrain the tasks that read them.
  MiningQuery frequent = MiningQuery::Frequent(2);
  frequent.k = 0;
  frequent.min_confidence = 7.0;
  EXPECT_TRUE(frequent.Validate().ok());
}

TEST(MinerDispatchTest, LegacySupportOverloadIsTheFrequentQuery) {
  const Database db = RandomDb(RandomDbSpec{.seed = 11});
  LcmMiner a, b;
  CollectingSink legacy, query;
  ASSERT_TRUE(a.Mine(db, 2, &legacy).ok());
  ASSERT_TRUE(b.Mine(db, MiningQuery::Frequent(2), &query).ok());
  EXPECT_EQ(legacy.results(), query.results());
}

TEST(MinerDispatchTest, ClosedAndMaximalMatchThePostprocessReference) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Database db =
        RandomDb(RandomDbSpec{.num_transactions = 40, .seed = seed});
    for (Support minsup : {2u, 4u}) {
      EclatMiner miner;  // no native closed path: exercises the generic one
      const auto closed =
          MineQuery(miner, db, MiningQuery::Closed(minsup));
      const auto maximal =
          MineQuery(miner, db, MiningQuery::Maximal(minsup));

      EclatMiner reference;
      auto want_closed = MineClosed(reference, db, minsup);
      auto want_maximal = MineMaximal(reference, db, minsup);
      ASSERT_TRUE(want_closed.ok() && want_maximal.ok());
      ExpectSameResults(*want_closed, closed, "closed");
      ExpectSameResults(*want_maximal, maximal, "maximal");
    }
  }
}

TEST(MinerDispatchTest, LcmNativeClosedPathMatchesTheGenericOne) {
  for (uint64_t seed : {5u, 6u}) {
    const Database db =
        RandomDb(RandomDbSpec{.num_transactions = 50, .seed = seed});
    LcmMiner lcm;      // has NativeClosedMiner(): ppc-extension kernel
    EclatMiner eclat;  // generic: full mine + FilterClosed
    ExpectSameResults(MineQuery(eclat, db, MiningQuery::Closed(2)),
                      MineQuery(lcm, db, MiningQuery::Closed(2)),
                      "native vs generic closed");
    ExpectSameResults(MineQuery(eclat, db, MiningQuery::Maximal(2)),
                      MineQuery(lcm, db, MiningQuery::Maximal(2)),
                      "native vs generic maximal");
  }
}

TEST(MinerDispatchTest, TaskAndSinkMisuseAreInvalidArgument) {
  const Database db = MakeDb({{0, 1}, {0, 1}, {2}});
  LcmMiner miner;
  CollectingSink sink;
  // Rules produce AssociationRule values, not itemsets.
  EXPECT_EQ(miner.Mine(db, MiningQuery::Rules(1, 0.5), &sink)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<AssociationRule> rules;
  // And vice versa: MineRules only accepts rules queries.
  EXPECT_EQ(miner.MineRules(db, MiningQuery::Closed(1), &rules)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(miner.Mine(db, MiningQuery::Frequent(1), nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      miner.MineRules(db, MiningQuery::Rules(1, 0.5), nullptr)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

// ---- rules ---------------------------------------------------------------

bool IsClosedIn(const Entry& e, const std::vector<Entry>& all) {
  for (const auto& other : all) {
    if (other.second == e.second && other.first.size() > e.first.size() &&
        std::includes(other.first.begin(), other.first.end(),
                      e.first.begin(), e.first.end())) {
      return false;
    }
  }
  return true;
}

TEST(RulesFromClosedTest, BasisAgreesWithFullListingGeneration) {
  const Database db =
      RandomDb(RandomDbSpec{.num_transactions = 40, .seed = 9});
  const Support minsup = 2;

  LcmMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, minsup, &sink).ok());
  sink.Canonicalize();
  const std::vector<Entry> all = sink.results();
  const std::vector<Entry> closed = FilterClosed(all);

  RuleOptions options;
  options.min_confidence = 0.3;
  auto full = GenerateRules(all, db.total_weight(), options);
  auto basis = GenerateRulesFromClosed(closed, db.total_weight(), options);
  ASSERT_TRUE(full.ok() && basis.ok())
      << full.status() << " " << basis.status();
  ASSERT_FALSE(basis->empty());

  // The basis is exactly the full rules whose combined itemset is
  // closed, with identical metrics (subset supports are recovered from
  // closed supersets, not re-counted).
  std::vector<AssociationRule> expected;
  for (const AssociationRule& rule : *full) {
    Itemset combined = rule.antecedent;
    combined.insert(combined.end(), rule.consequent.begin(),
                    rule.consequent.end());
    std::sort(combined.begin(), combined.end());
    if (IsClosedIn({combined, rule.itemset_support}, all)) {
      expected.push_back(rule);
    }
  }
  std::sort(expected.begin(), expected.end(), RuleOutranks);
  std::sort(basis->begin(), basis->end(), RuleOutranks);
  EXPECT_EQ(*basis, expected);
}

TEST(RulesFromClosedTest, MineRulesHonorsLiftAndConfidence) {
  // 6x{a,b}, 2x{a}, 2x{b,c}: a=>b has conf 0.75, lift 0.9375 (< 1).
  DatabaseBuilder b;
  for (int i = 0; i < 6; ++i) b.AddTransaction({0, 1});
  for (int i = 0; i < 2; ++i) b.AddTransaction({0});
  for (int i = 0; i < 2; ++i) b.AddTransaction({1, 2});
  const Database db = b.Build();

  LcmMiner miner;
  std::vector<AssociationRule> rules;
  auto stats =
      miner.MineRules(db, MiningQuery::Rules(1, /*confidence=*/0.5), &rules);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_frequent, rules.size());
  bool found = false;
  for (const AssociationRule& rule : rules) {
    if (rule.antecedent == Itemset{0} && rule.consequent == Itemset{1}) {
      found = true;
      EXPECT_EQ(rule.itemset_support, 6u);
      EXPECT_DOUBLE_EQ(rule.confidence, 6.0 / 8.0);
      EXPECT_DOUBLE_EQ(rule.lift, (6.0 / 8.0) * 10.0 / 8.0);
    }
  }
  EXPECT_TRUE(found);

  // Ordered by RuleOutranks: lift descending first.
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_FALSE(RuleOutranks(rules[i], rules[i - 1])) << "entry " << i;
  }

  // min_lift > 1 kills the negatively correlated a=>b.
  MiningQuery lifted = MiningQuery::Rules(1, 0.5, /*lift=*/1.0001);
  std::vector<AssociationRule> strong;
  ASSERT_TRUE(miner.MineRules(db, lifted, &strong).ok());
  for (const AssociationRule& rule : strong) {
    EXPECT_GE(rule.lift, 1.0001);
  }
  EXPECT_LT(strong.size(), rules.size());
}

}  // namespace
}  // namespace fpm
