#include "fpm/algo/rules.h"

#include <gtest/gtest.h>

#include "fpm/algo/lcm/lcm_miner.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MakeDb;
using Entry = CollectingSink::Entry;

std::vector<Entry> MineAll(const Database& db, Support min_support) {
  LcmMiner miner;
  CollectingSink sink;
  EXPECT_TRUE(miner.Mine(db, min_support, &sink).ok());
  sink.Canonicalize();
  return sink.results();
}

TEST(RulesTest, TextbookNumbers) {
  // 10 transactions: 6x{a,b}, 2x{a}, 2x{b,c}.
  DatabaseBuilder b;
  for (int i = 0; i < 6; ++i) b.AddTransaction({0, 1});
  for (int i = 0; i < 2; ++i) b.AddTransaction({0});
  for (int i = 0; i < 2; ++i) b.AddTransaction({1, 2});
  Database db = b.Build();
  const auto frequent = MineAll(db, 1);

  RuleOptions options;
  options.min_confidence = 0.5;
  auto rules = GenerateRules(frequent, db.total_weight(), options);
  ASSERT_TRUE(rules.ok()) << rules.status();

  // Expect the rule {a} => {b}: supp(ab)=6, supp(a)=8, supp(b)=8.
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{0} && rule.consequent == Itemset{1}) {
      found = true;
      EXPECT_EQ(rule.itemset_support, 6u);
      EXPECT_DOUBLE_EQ(rule.support, 0.6);
      EXPECT_DOUBLE_EQ(rule.confidence, 6.0 / 8.0);
      EXPECT_DOUBLE_EQ(rule.lift, (6.0 / 8.0) * 10.0 / 8.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, ConfidenceThresholdFilters) {
  DatabaseBuilder b;
  for (int i = 0; i < 9; ++i) b.AddTransaction({0});
  b.AddTransaction({0, 1});
  Database db = b.Build();
  const auto frequent = MineAll(db, 1);
  // {0} => {1} has confidence 0.1.
  RuleOptions strict;
  strict.min_confidence = 0.5;
  auto rules = GenerateRules(frequent, db.total_weight(), strict);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.5);
    EXPECT_FALSE(rule.antecedent == Itemset{0} &&
                 rule.consequent == Itemset{1});
  }
  // {1} => {0} has confidence 1.0 and must survive.
  bool reverse_found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{1}) reverse_found = true;
  }
  EXPECT_TRUE(reverse_found);
}

TEST(RulesTest, MultiItemConsequents) {
  DatabaseBuilder b;
  for (int i = 0; i < 5; ++i) b.AddTransaction({0, 1, 2});
  Database db = b.Build();
  const auto frequent = MineAll(db, 1);
  RuleOptions options;
  options.min_confidence = 0.9;
  options.max_consequent = 2;
  auto rules = GenerateRules(frequent, db.total_weight(), options);
  ASSERT_TRUE(rules.ok());
  // {0} => {1,2} must be present with confidence 1.
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{0} &&
        rule.consequent == (Itemset{1, 2})) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
    }
    EXPECT_LE(rule.consequent.size(), 2u);
    EXPECT_GE(rule.antecedent.size(), 1u);
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, SortedByLiftDescending) {
  Database db = MakeDb({{0, 1}, {0, 1}, {0, 2}, {1}, {2, 3}, {2, 3}});
  const auto frequent = MineAll(db, 1);
  RuleOptions options;
  options.min_confidence = 0.0;
  auto rules = GenerateRules(frequent, db.total_weight(), options);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].lift, (*rules)[i].lift);
  }
}

TEST(RulesTest, AntecedentAndConsequentDisjointAndSorted) {
  Database db = MakeDb({{3, 1, 2}, {1, 2}, {3, 2}, {1, 3}});
  const auto frequent = MineAll(db, 1);
  RuleOptions options;
  options.min_confidence = 0.0;
  options.max_consequent = 2;
  auto rules = GenerateRules(frequent, db.total_weight(), options);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const auto& rule : *rules) {
    EXPECT_TRUE(std::is_sorted(rule.antecedent.begin(),
                               rule.antecedent.end()));
    EXPECT_TRUE(std::is_sorted(rule.consequent.begin(),
                               rule.consequent.end()));
    for (Item a : rule.antecedent) {
      for (Item c : rule.consequent) EXPECT_NE(a, c);
    }
  }
}

TEST(RulesTest, RejectsBadOptions) {
  EXPECT_FALSE(GenerateRules({}, 1, {.min_confidence = -0.1}).ok());
  EXPECT_FALSE(GenerateRules({}, 1, {.min_confidence = 1.5}).ok());
  EXPECT_FALSE(
      GenerateRules({}, 1, {.min_confidence = 0.5, .max_consequent = 0})
          .ok());
}

TEST(RulesTest, RejectsIncompleteListing) {
  // {0,1} present but singleton {0} missing.
  const std::vector<Entry> partial = {{{0, 1}, 2}, {{1}, 3}};
  auto rules = GenerateRules(partial, 5, {.min_confidence = 0.0});
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(RulesTest, EmptyListingYieldsNoRules) {
  auto rules = GenerateRules({}, 0, {});
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(RulesTest, SingletonsOnlyYieldNoRules) {
  Database db = MakeDb({{0}, {1}});
  const auto frequent = MineAll(db, 1);
  auto rules = GenerateRules(frequent, db.total_weight(), {});
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

}  // namespace
}  // namespace fpm
