// Cross-cutting output invariants every miner must satisfy, checked on
// random databases (property-style sweeps):
//   - downward closure: every subset of a frequent itemset is emitted,
//     with support >= the superset's;
//   - no duplicates; supports within [min_support, total_weight];
//   - singleton supports equal the database's item frequencies;
//   - determinism: repeated runs produce identical output.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "fpm/algo/apriori.h"
#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/fpgrowth/fpgrowth_miner.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::MineCanonical;
using testutil::RandomDb;
using testutil::RandomDbSpec;

std::unique_ptr<Miner> MakeMiner(int which) {
  switch (which) {
    case 0:
      return std::make_unique<LcmMiner>();
    case 1:
      return std::make_unique<LcmMiner>(LcmOptions::All());
    case 2:
      return std::make_unique<EclatMiner>();
    case 3:
      return std::make_unique<EclatMiner>(EclatOptions::All());
    case 4:
      return std::make_unique<FpGrowthMiner>();
    case 5:
      return std::make_unique<FpGrowthMiner>(FpGrowthOptions::All());
    default:
      return std::make_unique<AprioriMiner>();
  }
}

class MinerInvariantsTest : public ::testing::TestWithParam<int> {
 protected:
  Database TestDb(uint64_t seed) const {
    RandomDbSpec spec;
    spec.num_transactions = 60;
    spec.num_items = 10;
    spec.avg_len = 5;
    spec.seed = seed;
    return RandomDb(spec);
  }
};

TEST_P(MinerInvariantsTest, DownwardClosure) {
  auto miner = MakeMiner(GetParam());
  for (uint64_t seed : {101ull, 102ull}) {
    Database db = TestDb(seed);
    constexpr Support kMinSupport = 4;
    const auto results = MineCanonical(*miner, db, kMinSupport);
    std::map<Itemset, Support> index(results.begin(), results.end());
    for (const auto& [set, support] : results) {
      EXPECT_GE(support, kMinSupport);
      EXPECT_LE(support, db.total_weight());
      if (set.size() < 2) continue;
      Itemset subset(set.size() - 1);
      for (size_t drop = 0; drop < set.size(); ++drop) {
        size_t out = 0;
        for (size_t i = 0; i < set.size(); ++i) {
          if (i != drop) subset[out++] = set[i];
        }
        const auto it = index.find(subset);
        ASSERT_NE(it, index.end())
            << miner->name() << ": missing subset of a frequent itemset";
        EXPECT_GE(it->second, support)
            << miner->name() << ": support must be anti-monotone";
      }
    }
  }
}

TEST_P(MinerInvariantsTest, NoDuplicateItemsets) {
  auto miner = MakeMiner(GetParam());
  Database db = TestDb(103);
  const auto results = MineCanonical(*miner, db, 3);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_NE(results[i - 1].first, results[i].first)
        << miner->name() << ": duplicate emission";
  }
}

TEST_P(MinerInvariantsTest, SingletonSupportsMatchFrequencies) {
  auto miner = MakeMiner(GetParam());
  Database db = TestDb(104);
  const auto results = MineCanonical(*miner, db, 1);
  const auto& freq = db.item_frequencies();
  size_t singletons = 0;
  for (const auto& [set, support] : results) {
    if (set.size() == 1) {
      EXPECT_EQ(support, freq[set[0]]) << miner->name();
      ++singletons;
    }
  }
  size_t used = 0;
  for (Support f : freq) used += (f > 0);
  EXPECT_EQ(singletons, used) << miner->name();
}

TEST_P(MinerInvariantsTest, DeterministicAcrossRuns) {
  auto miner = MakeMiner(GetParam());
  Database db = TestDb(105);
  const auto a = MineCanonical(*miner, db, 2);
  const auto b = MineCanonical(*miner, db, 2);
  EXPECT_EQ(a, b) << miner->name();
}

TEST_P(MinerInvariantsTest, HigherSupportYieldsSubset) {
  auto miner = MakeMiner(GetParam());
  Database db = TestDb(106);
  const auto loose = MineCanonical(*miner, db, 2);
  const auto strict = MineCanonical(*miner, db, 6);
  std::map<Itemset, Support> loose_index(loose.begin(), loose.end());
  EXPECT_LE(strict.size(), loose.size());
  for (const auto& [set, support] : strict) {
    const auto it = loose_index.find(set);
    ASSERT_NE(it, loose_index.end()) << miner->name();
    EXPECT_EQ(it->second, support) << miner->name();
  }
}

std::string MinerParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"lcm_base",  "lcm_all",  "eclat_base",
                                 "eclat_all", "fpg_base", "fpg_all",
                                 "apriori"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerInvariantsTest,
                         ::testing::Range(0, 7), MinerParamName);

}  // namespace
}  // namespace fpm
