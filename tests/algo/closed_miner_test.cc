#include "fpm/algo/lcm/closed_miner.h"

#include <gtest/gtest.h>

#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/algo/postprocess.h"
#include "fpm/dataset/quest_gen.h"
#include "testing/db_testutil.h"

namespace fpm {
namespace {

using testutil::ExpectSameResults;
using testutil::MakeDb;
using testutil::MineCanonical;
using testutil::RandomDb;
using testutil::RandomDbSpec;

TEST(ClosedMinerTest, TextbookExample) {
  // 3x{a,b}, 1x{a}: closed = {a}:4, {a,b}:3.
  Database db = MakeDb({{0, 1}, {0, 1}, {0, 1}, {0}});
  LcmClosedMiner miner;
  const auto r = MineCanonical(miner, db, 1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 4}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 3}));
}

TEST(ClosedMinerTest, FullUniverseClosureEmittedOnce) {
  // Every transaction identical: the only closed set is the whole
  // transaction (clo(∅)).
  DatabaseBuilder b;
  for (int i = 0; i < 7; ++i) b.AddTransaction({2, 4, 6});
  Database db = b.Build();
  LcmClosedMiner miner;
  const auto r = MineCanonical(miner, db, 3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{2, 4, 6}, 7}));
}

TEST(ClosedMinerTest, MatchesPostFilterOnRandomDbs) {
  LcmMiner all_miner;
  LcmClosedMiner closed_miner;
  for (uint64_t seed = 301; seed <= 308; ++seed) {
    RandomDbSpec spec;
    spec.num_transactions = 50;
    spec.num_items = 9;
    spec.avg_len = 4;
    spec.seed = seed;
    Database db = RandomDb(spec);
    for (Support support : {2u, 4u, 8u}) {
      auto expected = MineClosed(all_miner, db, support);
      ASSERT_TRUE(expected.ok());
      const auto actual = MineCanonical(closed_miner, db, support);
      ExpectSameResults(*expected, actual,
                        "seed=" + std::to_string(seed) +
                            " support=" + std::to_string(support));
    }
  }
}

TEST(ClosedMinerTest, MatchesPostFilterOnQuestData) {
  QuestParams p;
  p.num_transactions = 1200;
  p.avg_transaction_len = 8;
  p.avg_pattern_len = 3;
  p.num_items = 80;
  p.num_patterns = 40;
  auto dbr = GenerateQuest(p);
  ASSERT_TRUE(dbr.ok());
  LcmMiner all_miner;
  LcmClosedMiner closed_miner;
  auto expected = MineClosed(all_miner, dbr.value(), 15);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->size(), 0u);
  const auto actual = MineCanonical(closed_miner, dbr.value(), 15);
  ExpectSameResults(*expected, actual, "quest");
}

TEST(ClosedMinerTest, WeightedSupports) {
  DatabaseBuilder b;
  b.AddTransaction({0, 1}, 5);
  b.AddTransaction({0}, 2);
  Database db = b.Build();
  LcmClosedMiner miner;
  const auto r = MineCanonical(miner, db, 2);
  // closed: {0}:7 and {0,1}:5.
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (CollectingSink::Entry{{0}, 7}));
  EXPECT_EQ(r[1], (CollectingSink::Entry{{0, 1}, 5}));
}

TEST(ClosedMinerTest, OutputIsSubsetOfFrequent) {
  RandomDbSpec spec;
  spec.num_transactions = 70;
  spec.num_items = 10;
  spec.seed = 99;
  Database db = RandomDb(spec);
  LcmMiner all_miner;
  LcmClosedMiner closed_miner;
  const auto all = MineCanonical(all_miner, db, 3);
  const auto closed = MineCanonical(closed_miner, db, 3);
  EXPECT_LE(closed.size(), all.size());
  for (const auto& entry : closed) {
    EXPECT_NE(std::find(all.begin(), all.end(), entry), all.end());
  }
}

TEST(ClosedMinerTest, EmptyAndDegenerateInputs) {
  LcmClosedMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(Database(), 1, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_FALSE(miner.Mine(Database(), 0, &sink).ok());
  EXPECT_FALSE(miner.Mine(Database(), 1, nullptr).ok());
}

TEST(ClosedMinerTest, ThresholdAboveEverythingYieldsNothing) {
  Database db = MakeDb({{0, 1}, {1}});
  LcmClosedMiner miner;
  CollectingSink sink;
  ASSERT_TRUE(miner.Mine(db, 10, &sink).ok());
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace fpm
